//! Scoped threads with crossbeam 0.8's API shape.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The error payload of a panicked scope or child thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// thread's closure (crossbeam's signature: `spawn(|scope| ...)`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload if it panicked.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself, so
    /// workers can spawn further siblings (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope for spawning borrowing threads. All spawned threads are
/// joined before `scope` returns. Returns `Err` with the panic payload if
/// the closure (or an unjoined child) panicked, matching crossbeam's
/// `thread::Result`.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn child_panic_surfaces_through_join() {
        let caught = scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("child died") });
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }

    #[test]
    fn closure_panic_becomes_err() {
        let r: Result<(), _> = scope(|_| panic!("scope body died"));
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_from_worker() {
        let total = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 42);
    }
}
