//! MPMC channels with crossbeam 0.8's API shape, built on
//! `Mutex` + `Condvar`.
//!
//! Both [`Sender`] and [`Receiver`] are cloneable; the channel disconnects
//! when either side's last handle drops. `send` on a bounded channel
//! blocks while full; `recv` blocks while empty.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC): concurrent
/// receivers compete for messages, which is what gives the worker pool
/// its work-distribution behavior.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel with capacity `cap`.
///
/// # Panics
///
/// Panics if `cap == 0` (rendezvous channels are not supported by this
/// stand-in; the workspace does not use them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity channels are not supported");
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self
                .shared
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty. Fails
    /// only when the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if let Some(value) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            Ok(value)
        } else if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator over received messages; ends when the channel
    /// disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        assert!(handle.join().unwrap().is_ok());
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn cloned_receivers_compete() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx.iter().collect();
        let b: Vec<i32> = rx2.iter().collect();
        assert_eq!(a.len() + b.len(), 100);
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
