//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset of crossbeam 0.8's API this workspace uses —
//! [`thread::scope`] with crossbeam's closure-takes-scope signature, and
//! [`channel`]'s MPMC bounded/unbounded channels — on top of the standard
//! library (`std::thread::scope`, `Mutex` + `Condvar`). Semantics match
//! crossbeam where the workspace relies on them: cloneable senders *and*
//! receivers, blocking send/recv with disconnect detection, and scope
//! results that surface child panics as `Err` rather than aborting.

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;
