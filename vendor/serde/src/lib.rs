//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides just enough of serde's public surface for the
//! workspace to compile: the `Serialize` / `Deserialize` marker traits and
//! re-exports of the no-op derive macros. Nothing in the workspace
//! actually serializes data (there is no `serde_json` dependency), so the
//! derives intentionally generate no code.
//!
//! Swapping this for the real `serde` is a one-line change in the root
//! `Cargo.toml` once a registry is reachable.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The no-op derive does not implement it; it exists so `use
/// serde::Serialize` resolves for both the trait and the derive macro.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of serde's `de` module namespace.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of serde's `ser` module namespace.
pub mod ser {
    pub use crate::Serialize;
}
