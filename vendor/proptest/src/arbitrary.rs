//! `any::<T>()` support for the proptest stand-in.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_case("arb", 0);
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
    }
}
