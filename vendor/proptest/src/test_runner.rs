//! Deterministic case generation for the proptest stand-in.

/// The outcome of one generated case, as seen by the `proptest!` macro.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// How many cases each property runs (default 256, overridable with the
/// `PROPTEST_CASES` environment variable, like real proptest).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A small deterministic generator (SplitMix64) seeded from the test name
/// and case index, so every run generates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: splitmix(h ^ splitmix(u64::from(case))),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Rejection sampling keeps small moduli unbiased.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let raw = self.next_u64();
            if raw < zone || zone == 0 {
                return raw % n;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
