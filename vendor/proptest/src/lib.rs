//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, range and `any::<T>()` strategies, and the
//! `prop::collection` / `prop::sample` helpers. Case generation is
//! deterministic (seeded from the test's module path and case index), so
//! failures are reproducible run to run; shrinking is not implemented —
//! the failure report prints the generated inputs instead.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::Strategy;

/// The items a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let case_desc = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&::std::format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest case {case} failed: {msg}\n  inputs: {case_desc}"
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
