//! Collection strategies (`prop::collection::{vec, btree_set}`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bound the attempts so narrow
        // element domains cannot loop forever (mirrors proptest's retry
        // budget).
        let mut attempts = 0;
        while set.len() < target && attempts < target * 16 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A set of up to `size` distinct elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::for_case("coll", 0);
        for _ in 0..200 {
            let v = vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_respects_cap_and_distinctness() {
        let mut rng = TestRng::for_case("coll", 1);
        for _ in 0..200 {
            let s = btree_set(0u32..4, 0..=3).generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }
}
