//! Value-generation strategies for the proptest stand-in.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Something that can generate values of a type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("strategy", 0);
        for _ in 0..1000 {
            let x = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (0u64..=3).generate(&mut rng);
            assert!(y <= 3);
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
            let i = (-10i32..-2).generate(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::for_case("strategy", 1);
        assert_eq!(Just(42).generate(&mut rng), 42);
    }
}
