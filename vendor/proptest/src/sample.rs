//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Picks one of the given options uniformly.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over no options");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_options() {
        let mut rng = TestRng::for_case("sample", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match select(vec![1u32, 2, 4]).generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                4 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
