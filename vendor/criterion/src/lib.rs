//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros
//! — backed by a simple wall-clock timer. Statistics are a mean over a
//! fixed number of samples with a time cap; there is no outlier analysis
//! or HTML report. Good enough to rank implementations and spot
//! regressions by eye.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark function, so `cargo bench` stays
/// bounded even for expensive bodies.
const TIME_CAP: Duration = Duration::from_secs(3);

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmarked closure; [`iter`](Bencher::iter) times the
/// body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per call, until
    /// the sample budget or the time cap is exhausted.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warmup to populate caches/lazy state.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_CAP {
                break;
            }
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let lo = bencher.samples.iter().min().expect("nonempty");
    let hi = bencher.samples.iter().max().expect("nonempty");
    let mut line = format!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(*lo),
        fmt_duration(mean),
        fmt_duration(*hi),
        bencher.samples.len()
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let per_sec = n as f64 * bencher.samples.len() as f64 / total.as_secs_f64();
        line.push_str(&format!("  thrpt: {per_sec:.0} elem/s"));
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 3, "warmup + samples should run the body");
    }
}
