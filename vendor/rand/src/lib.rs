//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of `rand` 0.8's API that this workspace uses:
//! [`RngCore`], [`SeedableRng`], the extension trait [`Rng`] with
//! `gen`/`gen_range`, and [`rngs::SmallRng`] implemented as
//! xoshiro256++ seeded via SplitMix64 — the same algorithm family the
//! real `SmallRng` uses on 64-bit platforms.
//!
//! The workspace's determinism contract is defined by *this* generator:
//! golden outputs checked in under `tests/golden/` were produced with it.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Core generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](RngCore::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values samplable uniformly from a generator (`rand`'s `Standard`
/// distribution, flattened into a trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1), matching rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone || zone == 0 {
                        return self.start + (raw % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64, used for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; displace it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 1, 2];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
