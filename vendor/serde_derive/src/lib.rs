//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` must parse and expand for the
//! workspace to compile, but no code in the workspace serializes anything,
//! so the expansion is intentionally empty.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]` syntactically.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]` syntactically.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
