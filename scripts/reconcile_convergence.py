#!/usr/bin/env python3
"""Independent reconciliation of the convergence plane against the journal.

The monitoring CI job runs a journaled campaign with the live server
attached, scrapes the final `/convergence` snapshot and the Prometheus
exposition, and keeps the run journal. This script re-derives every
per-(operating point, voltage domain, array) cell from `journal.jsonl`
with a second implementation (Python, not the Rust tracker) and demands
agreement:

  * per-cell masked/DUE/SDC counts      == snapshot counts, integer-exact
  * per-point trials and live seconds   == snapshot, exact
  * rates and Garwood CI bounds         == snapshot, to 1e-9 relative
                                           (own Wilson-Hilferty here)
  * `convergence_events` gauges in the Prometheus text == snapshot counts
  * `convergence_cells_total` / `convergence_resolved_cells` == snapshot

The count checks are exact because both sides stream the same integer
events; the interval checks carry a tolerance only because this script
deliberately re-implements the chi-square quantile instead of calling
the Rust one.

Usage: reconcile_convergence.py JOURNAL_DIR CONVERGENCE_JSON METRICS_PROM
"""

import json
import math
import re
import sys
from pathlib import Path

SERIES_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$'
)
LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')

CI_LEVEL = 0.95
TARGET_REL_HALFWIDTH = 0.10
REL_TOL = 1e-9

# ArrayKind display names and their powering voltage domain (L3 rides
# the SoC rail; everything else is PMD-powered).
ARRAYS = {
    "L1I": "PMD",
    "L1D": "PMD",
    "DTLB": "PMD",
    "ITLB": "PMD",
    "L2TLB": "PMD",
    "L2": "PMD",
    "L3": "SoC",
}


def inverse_normal_cdf(p):
    """Acklam's rational approximation, mirroring serscale-stats."""
    assert 0.0 < p < 1.0
    a = [-3.969683028665376e1, 2.209460984245205e2, -2.759285104469687e2,
         1.38357751867269e2, -3.066479806614716e1, 2.506628277459239]
    b = [-5.447609879822406e1, 1.615858368580409e2, -1.556989798598866e2,
         6.680131188771972e1, -1.328068155288572e1]
    c = [-7.784894002430293e-3, -3.223964580411365e-1, -2.400758277161838,
         -2.549732539343734, 4.374664141464968, 2.938163982698783]
    d = [7.784695709041462e-3, 3.224671290700398e-1, 2.445134137142996,
         3.754408661907416]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def chi_square_quantile(p, k):
    """Wilson-Hilferty cube, clamped at zero like the Rust original."""
    kf = float(k)
    z = inverse_normal_cdf(p)
    term = 1.0 - 2.0 / (9.0 * kf) + z * math.sqrt(2.0 / (9.0 * kf))
    return kf * max(term ** 3, 0.0)


def poisson_ci(count, level):
    alpha = 1.0 - level
    lower = 0.0 if count == 0 else 0.5 * chi_square_quantile(alpha / 2.0, 2 * count)
    upper = 0.5 * chi_square_quantile(1.0 - alpha / 2.0, 2 * count + 2)
    return lower, upper


def relative_uncertainty(count):
    if count == 0:
        return math.inf
    lo, hi = poisson_ci(count, 0.95)
    return (hi - lo) / (2.0 * count)


def point_label(pmd_mv, freq_mhz):
    """OperatingPoint::label(): '980mV@2.4 GHz' / '790mV@900 MHz'."""
    if freq_mhz >= 1000:
        ghz = freq_mhz / 1000.0
        text = str(int(ghz)) if ghz == int(ghz) else repr(ghz)
        return f"{pmd_mv}mV@{text} GHz"
    return f"{pmd_mv}mV@{freq_mhz} MHz"


def replay_journal(path):
    """Replays journal.jsonl with the tracker's exact arithmetic: the
    session clock advances by every trial's wall_s (quarantined trials
    included); only non-quarantined trials contribute runs and events."""
    points = {}  # (pmd, soc, freq) -> {"label", "trials", "live", "cells"}
    current = None
    clock = 0.0
    for raw in path.read_text().splitlines():
        rec = json.loads(raw)
        kind = rec["rec"]
        if kind == "campaign":
            continue
        if kind == "session":
            setting = (rec["pmd_mv"], rec["soc_mv"], rec["freq_mhz"])
            current = points.setdefault(
                setting,
                {"label": point_label(rec["pmd_mv"], rec["freq_mhz"]),
                 "trials": 0, "live": 0.0,
                 "cells": {(dom, arr): [0, 0, 0] for arr, dom in ARRAYS.items()}},
            )
            clock = 0.0
        elif kind == "trial":
            clock += rec["wall_s"]
            if rec["quarantined"]:
                continue
            current["trials"] += 1
            sdc_trial = rec["verdict"] == "sdc"
            for _t, array, severity in rec["edac"]:
                cell = current["cells"][(ARRAYS[array], array)]
                if severity == "CE":
                    cell[0] += 1
                elif sdc_trial:
                    cell[2] += 1
                else:
                    cell[1] += 1
        elif kind == "session_end":
            current["live"] += clock
            clock = 0.0
            current = None
        else:
            sys.exit(f"unknown journal record {kind!r}")
    return points


def close(a, b):
    if math.isinf(a) and math.isinf(b):
        return True
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1e-300)


def parse_prom(text):
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = SERIES_RE.match(line)
        if not m:
            sys.exit(f"unparseable metrics line: {line!r}")
        labels = dict(
            (lm.group("key"), lm.group("value"))
            for lm in LABEL_RE.finditer(m.group("labels") or "")
        )
        yield m.group("name"), labels, float(m.group("value"))


def main():
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    journal = Path(sys.argv[1]) / "journal.jsonl"
    snapshot = json.loads(Path(sys.argv[2]).read_text())
    prom_text = Path(sys.argv[3]).read_text()

    replayed = replay_journal(journal)
    failures = []

    def fail(msg):
        failures.append(msg)
        print(f"MISMATCH {msg}")

    snap_points = {
        (p["pmd_mv"], p["soc_mv"], p["freq_mhz"]): p for p in snapshot["points"]
    }
    if set(snap_points) != set(replayed):
        fail(f"operating points: snapshot {sorted(snap_points)} journal {sorted(replayed)}")

    cells_checked = 0
    resolved = 0
    for setting, mine in replayed.items():
        label = mine["label"]
        point = snap_points.get(setting)
        if point is None:
            continue
        if point["voltage"] != label:
            fail(f"{setting}: label snapshot {point['voltage']!r} != {label!r}")
        if point["trials"] != mine["trials"]:
            fail(f"{label}: trials snapshot {point['trials']} journal {mine['trials']}")
        if point["live_seconds"] != mine["live"]:
            fail(f"{label}: live_seconds snapshot {point['live_seconds']!r} "
                 f"journal {mine['live']!r}")
        hours = mine["live"] / 3600.0
        for cell in point["cells"]:
            cells_checked += 1
            key = (cell["domain"], cell["array"])
            masked, due, sdc = mine["cells"][key]
            if (cell["masked"], cell["due"], cell["sdc"]) != (masked, due, sdc):
                fail(f"{label} {key}: snapshot ({cell['masked']},{cell['due']},"
                     f"{cell['sdc']}) journal ({masked},{due},{sdc})")
                continue
            events = masked + due + sdc
            if cell["events"] != events:
                fail(f"{label} {key}: events {cell['events']} != {events}")
            if mine["live"] > 0.0:
                lo, hi = poisson_ci(events, CI_LEVEL)
                want_rate, want_lo, want_hi = events / hours, lo / hours, hi / hours
            else:
                want_rate = want_lo = want_hi = 0.0
            for field, want in (("rate_per_hour", want_rate),
                                ("ci_lower_per_hour", want_lo),
                                ("ci_upper_per_hour", want_hi)):
                if not close(cell[field], want):
                    fail(f"{label} {key}: {field} snapshot {cell[field]!r} "
                         f"recomputed {want!r}")
            rel = relative_uncertainty(events)
            snap_rel = cell["rel_halfwidth"]
            if snap_rel is None:
                if not math.isinf(rel):
                    fail(f"{label} {key}: rel_halfwidth null but recomputed {rel!r}")
            elif not close(snap_rel, rel):
                fail(f"{label} {key}: rel_halfwidth snapshot {snap_rel!r} "
                     f"recomputed {rel!r}")
            want_resolved = math.isfinite(rel) and rel <= TARGET_REL_HALFWIDTH
            if cell["resolved"] != want_resolved:
                fail(f"{label} {key}: resolved {cell['resolved']} != {want_resolved}")
            if cell["resolved"]:
                resolved += 1

    if snapshot["cells_total"] != cells_checked:
        fail(f"cells_total {snapshot['cells_total']} != {cells_checked} checked")
    if snapshot["cells_resolved"] != resolved:
        fail(f"cells_resolved {snapshot['cells_resolved']} != {resolved} recomputed")

    # The Prometheus gauges carry the same cells.
    prom_events = {}
    prom_headline = {}
    for name, labels, value in parse_prom(prom_text):
        if name == "convergence_events":
            key = (labels["voltage"], labels["domain"], labels["array"], labels["class"])
            prom_events[key] = value
        elif name in ("convergence_cells_total", "convergence_resolved_cells"):
            prom_headline[name] = value
    if not prom_events:
        fail("no convergence_events gauges in the Prometheus exposition")
    for mine in replayed.values():
        label = mine["label"]
        for (domain, array), (masked, due, sdc) in mine["cells"].items():
            for cls, want in (("masked", masked), ("due", due), ("sdc", sdc)):
                got = prom_events.get((label, domain, array, cls))
                if got != float(want):
                    fail(f"convergence_events{{{label},{domain},{array},{cls}}} "
                         f"prom {got} journal {want}")
    if prom_headline.get("convergence_cells_total") != float(cells_checked):
        fail(f"prom convergence_cells_total {prom_headline.get('convergence_cells_total')} "
             f"!= {cells_checked}")
    if prom_headline.get("convergence_resolved_cells") != float(resolved):
        fail(f"prom convergence_resolved_cells "
             f"{prom_headline.get('convergence_resolved_cells')} != {resolved}")

    if failures:
        sys.exit(f"reconciliation failed: {len(failures)} mismatch(es)")
    print(
        f"reconciled {cells_checked} cells across {len(replayed)} operating points: "
        f"counts integer-exact, live time exact, intervals within {REL_TOL:g}, "
        f"{resolved} resolved at +-{TARGET_REL_HALFWIDTH:.0%}"
    )


if __name__ == "__main__":
    main()
