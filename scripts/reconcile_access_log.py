#!/usr/bin/env python3
"""Independent reconciliation of the service access log against metrics.

The control-plane CI job drives `repro serve` over HTTP; on shutdown the
service flushes its structured access log (`access.jsonl`) and a
Prometheus snapshot of the server-level registry (`service.prom`). This
script re-derives the request accounting from the raw log with a second
implementation (Python, not the Rust registry) and demands exact
agreement:

  * per-(method, path, status-class) log counts == `http_requests_total`
  * per-path summed response bytes          == `http_response_bytes_total`
  * per-(method, path) log counts           == latency histogram
                                               `_bucket{le="+Inf"}` counts

Any disagreement — a dropped log line, a double-counted request, a
missed byte — exits non-zero and prints both sides.

Usage: reconcile_access_log.py STATE_DIR
"""

import json
import re
import sys
from collections import Counter
from pathlib import Path

# Label values may themselves contain braces (path templates like
# "/campaigns/{id}"), so the label block is matched greedily to the
# last "}" before the sample value rather than to the first "}".
SERIES_RE = re.compile(r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$')
LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')

REQUIRED_FIELDS = ("t_unix_s", "tenant", "method", "path", "status", "bytes", "micros", "campaign")


def parse_prom(text):
    """Yields (name, {label: value}, float_value) for every sample line."""
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = SERIES_RE.match(line)
        if not m:
            sys.exit(f"unparseable metrics line: {line!r}")
        labels = dict(
            (lm.group("key"), lm.group("value"))
            for lm in LABEL_RE.finditer(m.group("labels") or "")
        )
        yield m.group("name"), labels, float(m.group("value"))


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    state = Path(sys.argv[1])
    log_path = state / "access.jsonl"
    prom_path = state / "service.prom"

    requests = Counter()   # (method, path, class) -> n
    latencies = Counter()  # (method, path) -> n
    bytes_out = Counter()  # path -> bytes
    lines = 0
    for raw in log_path.read_text().splitlines():
        event = json.loads(raw)
        missing = [f for f in REQUIRED_FIELDS if f not in event]
        if missing:
            sys.exit(f"access event missing {missing}: {raw}")
        lines += 1
        cls = f"{event['status'] // 100}xx"
        requests[(event["method"], event["path"], cls)] += 1
        latencies[(event["method"], event["path"])] += 1
        bytes_out[event["path"]] += event["bytes"]
    if lines == 0:
        sys.exit("access log is empty — the service served nothing?")

    counters = Counter()   # (method, path, class) -> n
    hist_inf = Counter()   # (method, path) -> n
    prom_bytes = Counter() # path -> bytes
    for name, labels, value in parse_prom(prom_path.read_text()):
        if name == "http_requests_total":
            counters[(labels["method"], labels["path"], labels["class"])] += int(value)
        elif name == "http_response_bytes_total":
            prom_bytes[labels["path"]] += int(value)
        elif name == "http_request_duration_seconds_bucket" and labels.get("le") == "+Inf":
            hist_inf[(labels["method"], labels["path"])] += int(value)

    failures = []
    for what, log_side, prom_side in (
        ("http_requests_total", requests, counters),
        ("http_request_duration_seconds count", latencies, hist_inf),
        ("http_response_bytes_total", bytes_out, prom_bytes),
    ):
        if log_side != prom_side:
            failures.append(what)
            only_log = {k: v for k, v in log_side.items() if prom_side.get(k) != v}
            only_prom = {k: v for k, v in prom_side.items() if log_side.get(k) != v}
            print(f"MISMATCH {what}:")
            print(f"  from access.jsonl : {dict(sorted(only_log.items()))}")
            print(f"  from service.prom : {dict(sorted(only_prom.items()))}")

    if failures:
        sys.exit(f"reconciliation failed: {', '.join(failures)}")
    print(
        f"reconciled {lines} requests across {len(latencies)} endpoints: "
        "log counts == counters == histogram counts, bytes exact"
    )


if __name__ == "__main__":
    main()
