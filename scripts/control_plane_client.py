#!/usr/bin/env python3
"""Drive a live `repro serve` control plane the way CI does.

Stdlib only. Against a base URL this client:

1. submits three campaign specs from two tenants (two short jobs whose
   reports CI diffs against one-shot `repro --summary-out` goldens, plus
   one deliberately long job),
2. streams one job's chunked JSONL event feed while it runs,
3. cancels the long job mid-run (wave-boundary cancel, resumable
   journal),
4. waits for the surviving jobs, fetches their reports, and
5. asks the service to drain via `POST /shutdown`.

Every response is checked against the control plane's documented
contract; any violation exits nonzero with a readable message.

Usage: control_plane_client.py BASE_URL --out DIR
"""

import argparse
import json
import pathlib
import sys
import threading
import time
import urllib.error
import urllib.request

POLL_SECS = 0.05
DEADLINE_SECS = 240.0

# The two short specs: must mirror the `repro --summary-out` invocations
# in .github/workflows/ci.yml byte for byte (same seed, scale, jobs).
SHORT_SPECS = [
    {"name": "ci-a", "tenant": "ci", "seed": 301, "scale": 0.002, "jobs": 1},
    {"name": "ci-b", "tenant": "ci", "seed": 302, "scale": 0.002, "jobs": 8},
]

# The cancel target: an explicit schedule several times the paper's beam
# time, single-threaded so it stays running while the client takes aim.
CANCEL_SPEC = {
    "name": "ci-cancel",
    "tenant": "ci-2",
    "seed": 303,
    "jobs": 1,
    "sessions": [
        {"pmd_mv": mv, "soc_mv": 950, "freq_mhz": 2400, "minutes": 10000}
        for mv in range(980, 940, -5)
    ],
}


def request(base, method, path, body=None):
    """One HTTP exchange; returns (status, text)."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:  # 4xx/5xx still carry a body
        return err.code, err.read().decode()


def submit(base, spec):
    status, body = request(base, "POST", "/campaigns", spec)
    assert status == 202, f"submit {spec['name']}: HTTP {status}: {body}"
    doc = json.loads(body)
    print(f"submitted {spec['name']} as job {doc['id']}")
    return doc["id"]


def job_doc(base, job):
    status, body = request(base, "GET", f"/campaigns/{job}")
    assert status == 200, f"status {job}: HTTP {status}: {body}"
    return json.loads(body)


def wait_until(base, job, pred, what):
    deadline = time.monotonic() + DEADLINE_SECS
    while True:
        doc = job_doc(base, job)
        if pred(doc):
            return doc
        assert time.monotonic() < deadline, f"job {job}: timeout waiting for {what}: {doc}"
        time.sleep(POLL_SECS)


def stream_events(base, job, out_path, errors):
    """Follows the chunked JSONL feed until the server closes it."""
    try:
        req = urllib.request.Request(base + f"/campaigns/{job}/events")
        lines = 0
        with urllib.request.urlopen(req, timeout=DEADLINE_SECS) as resp, open(
            out_path, "wb"
        ) as out:
            for raw in resp:  # http.client undoes the chunking
                out.write(raw)
                json.loads(raw)  # every line must be a standalone event
                lines += 1
        assert lines > 0, "event stream closed without a single event"
        print(f"streamed {lines} events from job {job}")
    except Exception as err:  # surfaced by the main thread
        errors.append(f"event stream of job {job}: {err!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base", help="service base URL, e.g. http://127.0.0.1:8080")
    parser.add_argument("--out", required=True, help="directory for reports and feeds")
    args = parser.parse_args()
    base = args.base.rstrip("/")
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    short_ids = [submit(base, spec) for spec in SHORT_SPECS]
    cancel_id = submit(base, CANCEL_SPEC)

    # Stream the first short job's events while everything runs.
    stream_errors = []
    streamer = threading.Thread(
        target=stream_events,
        args=(base, short_ids[0], out / f"events-{SHORT_SPECS[0]['seed']}.jsonl", stream_errors),
    )
    streamer.start()

    # Cancel the long job once it is demonstrably mid-run.
    doc = wait_until(
        base,
        cancel_id,
        lambda d: d["done"] or (d["status"] == "running" and d["trials_done"] > 0),
        "progress",
    )
    if not doc["done"]:
        status, body = request(base, "DELETE", f"/campaigns/{cancel_id}")
        assert status == 200, f"cancel: HTTP {status}: {body}"
    doc = wait_until(base, cancel_id, lambda d: d["done"], "terminal state")
    print(f"cancel target finished as {doc['status']!r}")
    assert doc["status"] in ("cancelled", "done"), doc
    if doc["status"] == "cancelled":
        # A cancelled job has no report (409) but keeps a resumable journal.
        status, body = request(base, "GET", f"/campaigns/{cancel_id}/report")
        assert status == 409, f"cancelled job served a report: HTTP {status}: {body}"
        assert doc["journal"], f"cancelled job lost its journal: {doc}"

    # The surviving jobs run to completion; their reports go to disk for
    # the byte-for-byte diff against the one-shot goldens.
    for spec, job in zip(SHORT_SPECS, short_ids):
        doc = wait_until(base, job, lambda d: d["done"], "completion")
        assert doc["status"] == "done", f"job {job} ended {doc['status']!r}: {doc}"
        status, report = request(base, "GET", f"/campaigns/{job}/report")
        assert status == 200, f"report {job}: HTTP {status}"
        path = out / f"report-{spec['seed']}.txt"
        path.write_text(report)
        print(f"job {job} report -> {path}")

    streamer.join(DEADLINE_SECS)
    assert not streamer.is_alive(), "event stream never terminated"
    assert not stream_errors, stream_errors

    # The listing agrees with everything above.
    status, body = request(base, "GET", "/campaigns")
    assert status == 200
    listing = {doc["id"]: doc for doc in json.loads(body)}
    assert set(listing) == set(short_ids) | {cancel_id}, listing

    status, body = request(base, "POST", "/shutdown")
    assert status == 200, f"shutdown: HTTP {status}: {body}"
    print("service draining; client done")


if __name__ == "__main__":
    try:
        main()
    except AssertionError as err:
        print(f"control-plane contract violation: {err}", file=sys.stderr)
        sys.exit(1)
