#!/usr/bin/env python3
"""Throughput regression gate over BENCH_campaign_throughput.json.

Compares a freshly measured bench artifact against the committed baseline
and exits non-zero when any row lost more than the tolerance (default
20%) of its trials/sec. Both artifacts must carry the same campaign
config fingerprint — a fingerprint change means the bench is measuring a
different workload and the baseline must be regenerated, not compared.

Usage:
    scripts/check_bench_regression.py BASELINE CANDIDATE [--tolerance 0.20]

Re-baselining (intentional perf changes, toolchain bumps, CI runner
changes): regenerate with `repro bench --out BENCH_campaign_throughput.json`,
commit the new file, and apply the `rebaseline-bench` label to the PR so
the CI gate skips the stale comparison for that run. TESTING.md has the
full procedure.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            artifact = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench-gate: cannot read {path}: {e}")
    for field in ("bench", "config_fingerprint", "rows"):
        if field not in artifact:
            sys.exit(f"bench-gate: {path} has no '{field}' field")
    return artifact


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="maximum tolerated fractional regression per row (default 0.20)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    if baseline["bench"] != candidate["bench"]:
        sys.exit(
            f"bench-gate: bench mismatch: baseline is {baseline['bench']!r}, "
            f"candidate is {candidate['bench']!r}"
        )
    if baseline["config_fingerprint"] != candidate["config_fingerprint"]:
        sys.exit(
            "bench-gate: campaign config fingerprint changed "
            f"({baseline['config_fingerprint']} -> {candidate['config_fingerprint']}); "
            "the bench measures a different workload now. Regenerate the "
            "baseline (see TESTING.md) instead of comparing."
        )

    base_rows = {row["id"]: row for row in baseline["rows"]}
    cand_rows = {row["id"]: row for row in candidate["rows"]}
    missing = sorted(set(base_rows) - set(cand_rows))
    if missing:
        sys.exit(f"bench-gate: candidate is missing rows {missing}")

    failed = []
    print(f"bench-gate: tolerance {args.tolerance:.0%} per row")
    for row_id, base in sorted(base_rows.items()):
        cand = cand_rows[row_id]
        old = base["trials_per_sec"]
        new = cand["trials_per_sec"]
        change = new / old - 1.0
        status = "ok"
        if new < old * (1.0 - args.tolerance):
            status = "REGRESSION"
            failed.append(row_id)
        print(
            f"  {row_id:<10} {old:>12.1f} -> {new:>12.1f} trials/sec "
            f"({change:+.1%})  {status}"
        )

    if failed:
        sys.exit(
            f"bench-gate: rows {failed} regressed more than "
            f"{args.tolerance:.0%}. If intentional, regenerate the baseline "
            "and apply the 'rebaseline-bench' label (TESTING.md)."
        )
    print("bench-gate: within tolerance")


if __name__ == "__main__":
    main()
