//! Integration: physics invariants that span crates — the mechanisms the
//! paper identifies, checked through the assembled stack rather than in
//! isolation.

use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_soc::edac::EdacSeverity;
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::{CacheLevel, Flux, Megahertz, Millivolts, SimDuration};

const WORKING_FLUX: f64 = 1.5e6;

fn run_session(
    point: OperatingPoint,
    minutes: f64,
    seed: u64,
) -> serscale_core::session::SessionReport {
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    let mut session = TestSession::new(
        dut,
        Flux::per_cm2_s(WORKING_FLUX),
        SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
    );
    session.run(&mut SimRng::seed_from(seed))
}

#[test]
fn observation2_larger_arrays_upset_more() {
    // Fig. 6: rate(L3) > rate(L2) > rate(L1); TLBs smallest structures.
    let report = run_session(OperatingPoint::nominal(), 400.0, 1);
    let rate = |level| report.level_rate_per_minute(level, EdacSeverity::Corrected);
    assert!(rate(CacheLevel::L3) > rate(CacheLevel::L2));
    assert!(rate(CacheLevel::L2) > rate(CacheLevel::L1));
    assert!(rate(CacheLevel::L2) > rate(CacheLevel::Tlb));
}

#[test]
fn uncorrectable_errors_appear_only_in_the_uninterleaved_l3() {
    // Fig. 6/7: UEs are exclusive to the L3 because it alone lacks bit
    // interleaving — multi-cell clusters land in one SECDED word there.
    let report = run_session(OperatingPoint::vmin_2400(), 600.0, 2);
    let ue = |level| {
        report
            .edac_per_level
            .get(&(level, EdacSeverity::Uncorrected))
            .copied()
            .unwrap_or(0)
    };
    assert!(
        ue(CacheLevel::L3) > 0,
        "expected L3 UEs in a 10-hour Vmin session"
    );
    assert_eq!(ue(CacheLevel::L2), 0, "interleaved L2 must not see UEs");
    assert_eq!(ue(CacheLevel::L1), 0);
    assert_eq!(ue(CacheLevel::Tlb), 0);
}

#[test]
fn observation6_frequency_alone_leaves_sram_ser_unchanged() {
    // Same voltages, different frequency: the SRAM cross-section is
    // identical by construction, and the measured rates agree within
    // Poisson noise.
    let at_2400 = OperatingPoint::nominal();
    let at_1200 = OperatingPoint {
        pmd: Millivolts::new(980),
        soc: Millivolts::new(950),
        frequency: Megahertz::new(1200),
    };
    let dut_a = DeviceUnderTest::xgene2(at_2400, DeviceUnderTest::paper_vmin(at_2400.frequency));
    let dut_b = DeviceUnderTest::xgene2(at_1200, DeviceUnderTest::paper_vmin(at_1200.frequency));
    let sigma_a = dut_a.total_observable_sram_sigma(1.0).as_cm2();
    let sigma_b = dut_b.total_observable_sram_sigma(1.0).as_cm2();
    assert!(
        (sigma_a - sigma_b).abs() < 1e-20,
        "SRAM σ must be frequency-free"
    );

    let ra = run_session(at_2400, 300.0, 3).upset_rate().per_minute();
    let rb = run_session(at_1200, 300.0, 3).upset_rate().per_minute();
    assert!((ra - rb).abs() / ra < 0.25, "measured rates {ra} vs {rb}");
}

#[test]
fn l3_rate_immune_to_pmd_only_undervolting() {
    // Fig. 7's asymmetry: at 790 mV only the PMD domain drops; the L3
    // (SoC domain) keeps its nominal-voltage rate while L1/L2 rise.
    let nominal = run_session(OperatingPoint::nominal(), 500.0, 4);
    let v790 = run_session(OperatingPoint::vmin_900(), 500.0, 4);
    let ce = |r: &serscale_core::session::SessionReport, level| {
        r.level_rate_per_minute(level, EdacSeverity::Corrected)
    };
    // L2 (PMD domain) rises markedly (paper: 0.157 → 0.29, ×1.85).
    let l2_ratio = ce(&v790, CacheLevel::L2) / ce(&nominal, CacheLevel::L2);
    assert!(l2_ratio > 1.3, "L2 ratio = {l2_ratio}");
    // L3 (SoC domain, unchanged voltage) stays put within noise.
    let l3_ratio = ce(&v790, CacheLevel::L3) / ce(&nominal, CacheLevel::L3);
    assert!((0.8..1.2).contains(&l3_ratio), "L3 ratio = {l3_ratio}");
}

#[test]
fn edac_severity_accounting_is_consistent() {
    // Total EDAC records = Σ per-level counts; UEs are a small minority
    // (Fig. 6: ~4% of L3 events at nominal).
    let report = run_session(OperatingPoint::nominal(), 400.0, 5);
    let per_level_total: u64 = report.edac_per_level.values().sum();
    assert_eq!(per_level_total, report.memory_upsets);
    let ue: u64 = report
        .edac_per_level
        .iter()
        .filter(|((_, sev), _)| *sev == EdacSeverity::Uncorrected)
        .map(|(_, c)| *c)
        .sum();
    let share = ue as f64 / report.memory_upsets as f64;
    assert!(share < 0.10, "UE share = {share}");
    assert!(ue > 0, "a 6.7-hour session should see some L3 MBUs");
}

#[test]
fn crash_recovery_consumes_wall_clock() {
    // Sessions with crashes must book more wall time than pure benchmark
    // execution — the dead time the Control-PC model charges.
    let report = run_session(OperatingPoint::nominal(), 300.0, 6);
    let execution: SimDuration = report
        .per_benchmark
        .values()
        .map(|s| s.execution_time)
        .sum();
    let crashes = report.failure_count(serscale_core::classify::FailureClass::AppCrash)
        + report.failure_count(serscale_core::classify::FailureClass::SysCrash);
    if crashes > 0 {
        assert!(
            report.duration > execution,
            "wall {} must exceed execution {}",
            report.duration,
            execution
        );
    }
}

#[test]
fn per_benchmark_detection_ordering_survives_the_full_stack() {
    // Fig. 5 @ 980 mV: LU observes the most upsets per minute, CG the
    // fewest. A long session separates the calibrated factors cleanly.
    let report = run_session(OperatingPoint::nominal(), 1600.0, 7);
    let rate = |b: serscale_workload::Benchmark| report.per_benchmark[&b].upsets_per_minute();
    use serscale_workload::Benchmark::*;
    assert!(rate(Lu) > rate(Cg), "LU {} !> CG {}", rate(Lu), rate(Cg));
    assert!(rate(Ft) > rate(Cg));
}
