//! Service-observability battery: the control plane must account for
//! every request it serves, and the numbers must reconcile.
//!
//! Contracts, over real sockets:
//!
//! 1. **The access log is complete and honest** — every request this
//!    test issues appears in the structured access log exactly once, the
//!    log parses with the in-repo RFC-8259 parser, and every line
//!    carries the wide-event fields (tenant, method, path template,
//!    status, bytes, micros, campaign id).
//! 2. **Log ↔ metrics reconciliation** — per-(method, path) access-log
//!    counts equal the `http_requests_total` counters, response bytes
//!    equal `http_response_bytes_total`, and the latency histogram
//!    counts match — the same cross-check CI runs offline against
//!    `access.jsonl` and `service.prom`.
//! 3. **Scheduler observability** — per-tenant queued/started/completed
//!    counters, the queue-depth gauge, completed-share gauges and the
//!    queue-wait/run-duration histograms reflect what actually happened.
//! 4. **Service surfaces** — `/healthz` reports queue depth, per-tenant
//!    running counts and last-accept; `/tenants` aggregates per-tenant
//!    usage; the event stream terminates with a `stream_end` record.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serscale_telemetry::json::{self, JsonValue};
use serscale_telemetry::metrics::MetricsSnapshot;
use serscale_telemetry::serve::{http_get, http_request, MonitorServer};
use serscale_telemetry::{ControlPlane, ControlPlaneOptions, TelemetryOptions, TelemetrySink};

fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "serscale-service-obs-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("case dir creatable");
    dir
}

fn service(state_dir: Option<PathBuf>) -> (Arc<TelemetrySink>, Arc<ControlPlane>, MonitorServer) {
    let sink = Arc::new(TelemetrySink::in_memory(TelemetryOptions::default()));
    let control = ControlPlane::start(ControlPlaneOptions {
        max_concurrent: 1,
        state_dir,
        ..Default::default()
    });
    let server = sink
        .serve_control("127.0.0.1:0", Arc::clone(&control))
        .expect("service binds");
    (sink, control, server)
}

/// A bookkeeping client: issues requests and records what the access log
/// must therefore contain.
struct Ledger {
    addr: std::net::SocketAddr,
    /// (method, path template) → expected request count.
    expected: BTreeMap<(String, String), u64>,
}

impl Ledger {
    fn get(&mut self, path: &str, template: &str) -> (u16, String) {
        let reply = http_get(self.addr, path).expect("request");
        *self
            .expected
            .entry(("GET".to_string(), template.to_string()))
            .or_default() += 1;
        reply
    }

    fn post(&mut self, path: &str, template: &str, body: &str) -> (u16, String) {
        let reply = http_request(self.addr, "POST", path, body).expect("request");
        *self
            .expected
            .entry(("POST".to_string(), template.to_string()))
            .or_default() += 1;
        reply
    }

    fn total(&self) -> u64 {
        self.expected.values().sum()
    }
}

/// Counts access-log lines per (method, path) and validates the wide
///-event schema of every line.
fn log_counts(log: &str) -> BTreeMap<(String, String), u64> {
    let lines = json::parse_lines(log).expect("access log parses with the in-repo parser");
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    for line in &lines {
        for field in ["t_unix_s", "status", "bytes", "micros"] {
            assert!(
                line.get(field).and_then(JsonValue::as_f64).is_some(),
                "access event lacks numeric {field}: {line:?}"
            );
        }
        for field in ["tenant", "campaign"] {
            assert!(
                line.get(field).is_some(),
                "access event lacks {field}: {line:?}"
            );
        }
        let method = line
            .get("method")
            .and_then(JsonValue::as_str)
            .expect("method")
            .to_string();
        let path = line
            .get("path")
            .and_then(JsonValue::as_str)
            .expect("path")
            .to_string();
        *counts.entry((method, path)).or_default() += 1;
    }
    counts
}

fn counter(snapshot: &MetricsSnapshot, name: &str, matches: &[(&str, &str)]) -> u64 {
    snapshot.counter_total(name, matches)
}

/// Contracts 1–4 in one deterministic session: a fixed request script
/// against a one-runner service, then the post-shutdown books.
#[test]
fn access_log_counters_and_scheduler_series_reconcile() {
    let state = case_dir("reconcile");
    let (_sink, control, mut server) = service(Some(state.clone()));
    let mut ledger = Ledger {
        addr: server.addr(),
        expected: BTreeMap::new(),
    };

    // A fixed tour of the read-only plane.
    assert_eq!(ledger.get("/", "/").0, 200);
    assert_eq!(ledger.get("/metrics", "/metrics").0, 200);
    let (status, healthz) = ledger.get("/healthz", "/healthz");
    assert_eq!(status, 200);
    assert_eq!(ledger.get("/progress", "/progress").0, 200);
    assert_eq!(ledger.get("/campaigns", "/campaigns").0, 200);
    assert_eq!(ledger.get("/tenants", "/tenants").0, 200);
    assert_eq!(ledger.get("/nope", "(other)").0, 404);

    // Idle healthz: control plane attached, nothing queued or running.
    let doc = json::parse(&healthz).expect("healthz parses");
    assert_eq!(
        doc.get("queue_depth").and_then(JsonValue::as_f64),
        Some(0.0),
        "{healthz}"
    );
    assert!(doc.get("running").is_some(), "{healthz}");
    assert!(doc.get("last_accept_unix_s").is_some(), "{healthz}");

    // Two tenants, two campaigns, one runner: alpha's second… no — one
    // each, so completed-share splits evenly and nothing stays queued.
    let submit = |ledger: &mut Ledger, tenant: &str, seed: u64| -> u64 {
        let (status, body) = ledger.post(
            "/campaigns",
            "/campaigns",
            &format!("{{\"tenant\":\"{tenant}\",\"seed\":{seed},\"scale\":0.001,\"jobs\":1}}"),
        );
        assert_eq!(status, 202, "{body}");
        json::parse(&body)
            .expect("acceptance parses")
            .get("id")
            .and_then(JsonValue::as_f64)
            .expect("id") as u64
    };
    let id_a = submit(&mut ledger, "acct-alpha", 411);
    let id_b = submit(&mut ledger, "acct-beta", 412);

    let wait_done = |ledger: &mut Ledger, id: u64| {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = ledger.get(&format!("/campaigns/{id}"), "/campaigns/{id}");
            assert_eq!(status, 200, "{body}");
            let doc = json::parse(&body).expect("status parses");
            if doc.get("done") == Some(&JsonValue::Bool(true)) {
                break doc;
            }
            assert!(Instant::now() < deadline, "job {id} stuck: {body}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let doc_a = wait_done(&mut ledger, id_a);
    wait_done(&mut ledger, id_b);

    // Per-campaign attribution on the status document.
    for field in [
        "worker_busy_seconds",
        "queue_wait_seconds",
        "wall_seconds",
        "journal_bytes",
    ] {
        assert!(
            doc_a.get(field).and_then(JsonValue::as_f64).is_some(),
            "status lacks attribution field {field}: {doc_a:?}"
        );
    }

    // The event stream ends with a terminal stream_end record.
    let (status, events) = ledger.get(
        &format!("/campaigns/{id_a}/events"),
        "/campaigns/{id}/events",
    );
    assert_eq!(status, 200);
    let lines = json::parse_lines(&events).expect("event stream is valid JSONL");
    let last = lines.last().expect("stream non-empty");
    assert_eq!(
        last.get("event").and_then(JsonValue::as_str),
        Some("stream_end"),
        "{events}"
    );
    assert_eq!(
        last.get("reason").and_then(JsonValue::as_str),
        Some("done"),
        "{events}"
    );

    // A campaign-scoped request is attributed to its tenant and id.
    let (status, report_body) = ledger.get(
        &format!("/campaigns/{id_a}/report"),
        "/campaigns/{id}/report",
    );
    assert_eq!(status, 200);

    // `/tenants` aggregates per-tenant usage.
    let (status, tenants) = ledger.get("/tenants", "/tenants");
    assert_eq!(status, 200);
    let tenants = json::parse(&tenants).expect("tenants parses");
    let rows = match &tenants {
        JsonValue::Array(rows) => rows,
        other => panic!("tenants must be an array: {other:?}"),
    };
    assert_eq!(rows.len(), 2, "{tenants:?}");
    for row in rows {
        assert_eq!(row.get("done").and_then(JsonValue::as_f64), Some(1.0));
        assert!(
            row.get("trials").and_then(JsonValue::as_f64).unwrap_or(0.0) > 0.0,
            "{row:?}"
        );
        assert!(row.get("worker_busy_seconds").is_some(), "{row:?}");
        assert!(row.get("journal_bytes").is_some(), "{row:?}");
    }

    // Busy healthz: per-tenant running map exists (post-run: empty).
    let (_, healthz) = ledger.get("/healthz", "/healthz");
    let doc = json::parse(&healthz).expect("healthz parses");
    assert!(
        doc.get("last_accept_unix_s")
            .and_then(JsonValue::as_f64)
            .is_some(),
        "after traffic last_accept is stamped: {healthz}"
    );

    control.drain();
    server.shutdown();

    // ---- The books, post-shutdown (all handler threads joined). ----
    let log = server.access_log_jsonl().expect("service log exists");
    let counts = log_counts(&log);
    let logged_total: u64 = counts.values().sum();
    assert_eq!(
        logged_total,
        ledger.total(),
        "every request logged exactly once\nlog:\n{log}"
    );
    assert_eq!(
        counts, ledger.expected,
        "per-(method, path) log counts match the requests issued"
    );

    let snapshot = server.metrics_snapshot();
    for ((method, path), n) in &counts {
        let total = counter(
            &snapshot,
            "http_requests_total",
            &[("method", method), ("path", path)],
        );
        assert_eq!(total, *n, "http_requests_total for {method} {path}");
        let hist_count: u64 = snapshot
            .histograms
            .iter()
            .filter(|(key, _)| {
                key.name == "http_request_duration_seconds"
                    && key.labels.iter().any(|(k, v)| k == "method" && v == method)
                    && key.labels.iter().any(|(k, v)| k == "path" && v == path)
            })
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(
            hist_count, *n,
            "latency histogram count for {method} {path}"
        );
    }
    assert_eq!(
        counter(&snapshot, "http_requests_total", &[]),
        ledger.total(),
        "grand total reconciles"
    );
    // Spot-check the byte accounting on a deterministic body.
    let report_bytes = counter(
        &snapshot,
        "http_response_bytes_total",
        &[("path", "/campaigns/{id}/report")],
    );
    assert_eq!(report_bytes, report_body.len() as u64);

    // Scheduler series: one queued/started/completed per tenant, empty
    // queue at rest, an even completed share, and latency histograms
    // with one observation per job.
    for tenant in ["acct-alpha", "acct-beta"] {
        for phase in ["queued", "started", "completed"] {
            assert_eq!(
                counter(
                    &snapshot,
                    "tenant_jobs_total",
                    &[("tenant", tenant), ("phase", phase)]
                ),
                1,
                "tenant_jobs_total {tenant} {phase}"
            );
        }
        assert_eq!(
            snapshot.gauge_value("tenant_completed_share", &[("tenant", tenant)]),
            Some(0.5),
            "completed share for {tenant}"
        );
        for hist in ["queue_wait_seconds", "job_run_seconds"] {
            let count: u64 = snapshot
                .histograms
                .iter()
                .filter(|(key, _)| {
                    key.name == hist && key.labels.iter().any(|(k, v)| k == "tenant" && v == tenant)
                })
                .map(|(_, h)| h.count)
                .sum();
            assert_eq!(count, 1, "{hist} observations for {tenant}");
        }
    }
    assert_eq!(snapshot.gauge_value("queue_depth", &[]), Some(0.0));
    assert_eq!(counter(&snapshot, "campaigns_submitted_total", &[]), 2);
    assert_eq!(
        counter(
            &snapshot,
            "campaigns_completed_total",
            &[("outcome", "done")]
        ),
        2
    );

    std::fs::remove_dir_all(&state).expect("cleanup");
}

/// The plain monitoring plane (no control plane attached) must record no
/// service series at all — the CI monitoring job byte-compares a live
/// scrape against the exported `metrics.prom`, so request accounting
/// must not exist in that mode.
#[test]
fn plain_monitoring_plane_records_no_request_series() {
    let sink = TelemetrySink::in_memory(TelemetryOptions::default());
    let mut server = sink.serve("127.0.0.1:0").expect("monitor binds");
    let addr = server.addr();
    let (status, _) = http_get(addr, "/metrics").expect("scrape");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/healthz").expect("healthz");
    assert_eq!(status, 200);
    server.shutdown();
    assert!(
        server.access_log_jsonl().is_none(),
        "plain --listen mode keeps no access log"
    );
    let snapshot = server.metrics_snapshot();
    assert_eq!(
        snapshot.counter_total("http_requests_total", &[]),
        0,
        "plain mode must not mint request series"
    );
}
