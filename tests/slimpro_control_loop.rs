//! Integration: the campaign driven through the management-processor
//! control path, the way the real experiment's tooling drove the board.
//!
//! The paper's undervolting stack talks to the SLIMpro to set rail
//! voltages and to harvest health reports (§3.1, [57]). This test walks
//! the full loop: characterize → command the transitions through the
//! mailbox → run sessions at the SLIMpro-reported operating point →
//! push the session's EDAC records through the health log → verify the
//! mailbox-collected counts equal the session report's.

use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_core::trace::{LogEvent, Logbook};
use serscale_soc::platform::OperatingPoint;
use serscale_soc::slimpro::{Command, Response, SlimPro};
use serscale_stats::SimRng;
use serscale_types::{Flux, Millivolts, SimDuration, VoltageDomain};

#[test]
fn full_mailbox_driven_session() {
    let mut slimpro = SlimPro::new();

    // --- 1. Command the 920 mV transition, knob by knob. ---------------
    let target = OperatingPoint::vmin_2400();
    slimpro
        .apply_point(target)
        .expect("campaign transition must be accepted");
    let sensed = match slimpro.execute(Command::ReadSensors) {
        Response::Sensors(s) => s,
        other => panic!("expected sensors, got {other:?}"),
    };
    assert_eq!(sensed.pmd, target.pmd);
    assert_eq!(sensed.soc, target.soc);
    assert_eq!(sensed.frequency, target.frequency);

    // --- 2. Run a session at the SLIMpro-reported point. ----------------
    let point = slimpro.operating_point();
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    let mut session = TestSession::new(
        dut,
        Flux::per_cm2_s(1.5e6),
        SessionLimits::time_boxed(SimDuration::from_minutes(90.0)),
    );
    let mut logbook = Logbook::new();
    let report = session.run_observed(&mut SimRng::seed_from(55), &mut logbook);
    assert!(
        report.memory_upsets > 0,
        "a 90-minute Vmin session must log upsets"
    );

    // --- 3. Push every EDAC event through the health path and drain. ----
    for event in logbook.events() {
        if let LogEvent::Edac(record) = event {
            slimpro.report_health(*record);
        }
    }
    let harvested = match slimpro.execute(Command::ReadHealthLog) {
        Response::HealthLog(records) => records,
        other => panic!("expected health log, got {other:?}"),
    };
    assert_eq!(harvested.len() as u64, report.memory_upsets);

    // Aggregated per level, the mailbox data equals the report's.
    let mut log = serscale_soc::edac::EdacLog::new();
    for r in harvested {
        log.push(r);
    }
    assert_eq!(log.counts_per_level(), report.edac_per_level);
}

#[test]
fn mailbox_enforces_the_same_safety_envelope_as_the_platform() {
    let mut slimpro = SlimPro::new();

    // Undervolting below the plausibility floor is refused…
    let r = slimpro.execute(Command::SetVoltage {
        domain: VoltageDomain::Pmd,
        level: Millivolts::new(450),
    });
    assert!(matches!(r, Response::Rejected { .. }));

    // …and the operating point is untouched, so a session started from the
    // SLIMpro state still runs at a validated point.
    let point = slimpro.operating_point();
    assert_eq!(point, OperatingPoint::nominal());
    serscale_soc::platform::XGene2::new()
        .validate(point)
        .expect("SLIMpro can never hold an invalid point");
}

#[test]
fn half_applied_transition_is_observable_via_sensors() {
    // A rejected knob mid-sequence leaves prior knobs applied — the
    // documented hardware behaviour. The Control-PC's recourse is to read
    // the sensors back, which must reflect the partial state.
    let mut slimpro = SlimPro::new();
    let bogus = OperatingPoint {
        pmd: Millivolts::new(930),
        soc: Millivolts::new(931), // off-grid: rejected
        frequency: serscale_types::Megahertz::new(2400),
    };
    let err = slimpro
        .apply_point(bogus)
        .expect_err("off-grid SoC must be refused");
    assert!(err.contains("5 mV"), "unexpected reason: {err}");
    match slimpro.execute(Command::ReadSensors) {
        Response::Sensors(s) => {
            assert_eq!(
                s.pmd,
                Millivolts::new(930),
                "PMD knob applied before the refusal"
            );
            assert_eq!(s.soc, Millivolts::new(950), "SoC knob kept its prior value");
        }
        other => panic!("{other:?}"),
    }
}
