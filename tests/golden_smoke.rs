//! The golden smoke contract: a scaled campaign at the pinned (scale,
//! seed) pair must reproduce `tests/golden/campaign_smoke.txt` byte for
//! byte — CI additionally re-derives the same text through the `repro
//! --golden` binary and diffs it against the checked-in file.
//!
//! If a deliberate physics or engine change moves the numbers, regenerate
//! the artifact with:
//!
//! ```text
//! cargo run --release -p serscale-bench --bin repro -- --golden \
//!     > tests/golden/campaign_smoke.txt
//! ```

use serscale_bench::{golden_summary, run_campaign_jobs, GOLDEN_SCALE, REPRO_SEED};

const GOLDEN: &str = include_str!("golden/campaign_smoke.txt");

#[test]
fn scaled_campaign_matches_the_golden_artifact() {
    let fresh = golden_summary(&run_campaign_jobs(GOLDEN_SCALE, REPRO_SEED, 2));
    assert_eq!(
        fresh, GOLDEN,
        "campaign drifted from the golden artifact; if intentional, regenerate it \
         (see this file's module docs)"
    );
}

#[test]
fn golden_summary_is_jobs_invariant() {
    let sequential = golden_summary(&run_campaign_jobs(GOLDEN_SCALE, REPRO_SEED, 1));
    for jobs in [3, 8] {
        let parallel = golden_summary(&run_campaign_jobs(GOLDEN_SCALE, REPRO_SEED, jobs));
        assert_eq!(parallel, sequential, "jobs = {jobs}");
    }
}
