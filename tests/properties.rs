//! Property-based tests over cross-crate invariants.
//!
//! Unit-level properties (SECDED algebra, interleaver bijectivity) live in
//! their crates; this file checks properties of the *assembled* system over
//! randomized inputs: arbitrary voltages, cluster shapes, seeds and
//! exposure windows.

use proptest::prelude::*;

use serscale_core::dut::DeviceUnderTest;
use serscale_ecc::{ProtectionScheme, UpsetOutcome};
use serscale_soc::platform::OperatingPoint;
use serscale_sram::{MbuModel, SoftErrorModel, SramArray};
use serscale_stats::ci::{poisson_ci, wilson_ci};
use serscale_stats::SimRng;
use serscale_types::{
    ArrayKind, Bytes, CrossSection, Fluence, Flux, Megahertz, Millivolts, SimDuration,
    NYC_SEA_LEVEL_FLUX,
};

proptest! {
    /// σ_bit(V) is monotonically non-increasing in V, for any anchoring.
    #[test]
    fn sigma_monotone_in_voltage(
        nominal_mv in 700u32..1100,
        lo_mv in 500u32..1100,
        sensitivity in 0.0f64..8.0,
    ) {
        let hi_mv = lo_mv + 50;
        let model = SoftErrorModel::new(
            CrossSection::cm2(1e-15),
            Millivolts::new(nominal_mv),
            sensitivity,
        );
        let lo = model.sigma_bit(Millivolts::new(lo_mv)).as_cm2();
        let hi = model.sigma_bit(Millivolts::new(hi_mv)).as_cm2();
        prop_assert!(lo >= hi);
    }

    /// Every strike on a SECDED array yields only legal outcome
    /// combinations: cluster of 1 ⇒ corrected; UEs require ≥2 flips in a
    /// word; no word ever reports clean-but-corrupt for small clusters.
    #[test]
    fn secded_array_strike_outcomes_are_legal(
        seed in 0u64..1000,
        cluster in 1u32..6,
        interleave in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        let array = SramArray::new(
            ArrayKind::L3Shared,
            Bytes::kib(64),
            ProtectionScheme::Secded,
            interleave,
        );
        let mut rng = SimRng::seed_from(seed);
        let effect = array.strike(&mut rng, cluster);
        let flipped: u32 = effect.words.iter().map(|w| w.flipped_bits).sum();
        prop_assert_eq!(flipped, cluster.min(array.protection().entry_bits() * interleave));
        for word in &effect.words {
            match word.outcome {
                UpsetOutcome::Corrected => prop_assert!(word.flipped_bits >= 1),
                UpsetOutcome::DetectedUncorrectable =>
                    prop_assert!(word.flipped_bits >= 2),
                UpsetOutcome::MiscorrectedReported =>
                    prop_assert!(word.flipped_bits >= 3),
                UpsetOutcome::SilentCorruption =>
                    // Requires a flip pattern equal to a codeword: weight ≥ 4.
                    prop_assert!(word.flipped_bits >= 4),
            }
        }
    }

    /// MBU cluster lengths always respect the model cap and grow (in
    /// expectation) as voltage falls.
    #[test]
    fn mbu_cluster_bounds(seed in 0u64..500, mv in 600u32..1000) {
        let model = MbuModel::tech_28nm();
        let mut rng = SimRng::seed_from(seed);
        let len = model.sample_cluster_len(&mut rng, Millivolts::new(mv));
        prop_assert!((1..=model.max_cluster()).contains(&len));
        let low_mean = model.mean_cluster_len(Millivolts::new(mv));
        let high_mean = model.mean_cluster_len(Millivolts::new(mv + 100));
        prop_assert!(low_mean >= high_mean);
    }

    /// FIT arithmetic: FIT(σ) is linear in σ and events/fluence roundtrip
    /// through Eq. 1.
    #[test]
    fn fit_linear_in_cross_section(sigma in 1e-12f64..1e-6, k in 1.0f64..100.0) {
        let a = CrossSection::cm2(sigma).fit_at(NYC_SEA_LEVEL_FLUX).get();
        let b = CrossSection::cm2(sigma * k).fit_at(NYC_SEA_LEVEL_FLUX).get();
        prop_assert!((b / a - k).abs() / k < 1e-9);
    }

    /// Fluence accounting is additive regardless of how a window is split.
    #[test]
    fn fluence_additive_under_splitting(
        total_secs in 1.0f64..100_000.0,
        split in 0.01f64..0.99,
    ) {
        let flux = Flux::per_cm2_s(1.5e6);
        let whole: Fluence = flux * SimDuration::from_secs(total_secs);
        let a = flux * SimDuration::from_secs(total_secs * split);
        let b = flux * SimDuration::from_secs(total_secs * (1.0 - split));
        let sum = a + b;
        prop_assert!((whole.as_per_cm2() - sum.as_per_cm2()).abs()
            / whole.as_per_cm2() < 1e-12);
    }

    /// Poisson and Wilson intervals always bracket their point estimates.
    #[test]
    fn intervals_bracket_estimates(count in 1u64..5000, trials in 1u64..5000) {
        let (lo, hi) = poisson_ci(count, 0.95);
        prop_assert!(lo < count as f64 && (count as f64) < hi);
        let successes = count.min(trials);
        let (wlo, whi) = wilson_ci(successes, trials, 0.95);
        let p = successes as f64 / trials as f64;
        prop_assert!(wlo <= p + 1e-12 && p <= whi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&wlo) && (0.0..=1.0).contains(&whi));
    }

    /// The DUT's observable cross-section scales exactly linearly with the
    /// benchmark detection factor and is monotone under PMD undervolting.
    #[test]
    fn dut_sigma_properties(factor in 0.2f64..3.0, pmd_mv in 700u32..980) {
        let vmin = DeviceUnderTest::paper_vmin(Megahertz::new(2400));
        let nominal = DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin);
        let base = nominal.total_observable_sram_sigma(1.0).as_cm2();
        let scaled = nominal.total_observable_sram_sigma(factor).as_cm2();
        prop_assert!((scaled / base - factor).abs() < 1e-9);

        let mut point = OperatingPoint::nominal();
        point.pmd = Millivolts::new(pmd_mv - pmd_mv % 5);
        let under = DeviceUnderTest::xgene2(point, vmin);
        prop_assert!(under.total_observable_sram_sigma(1.0).as_cm2() >= base);
    }

    /// Logic datapath susceptibility is monotone: lower voltage (at fixed
    /// frequency and Vmin) never decreases σ_data.
    #[test]
    fn datapath_sigma_monotone(mv in 920u32..980) {
        let mv = mv - mv % 5;
        let vmin = Millivolts::new(920);
        let f = Megahertz::new(2400);
        let logic = serscale_soc::LogicSusceptibility::xgene2();
        let here = logic.sigma_data(Millivolts::new(mv), f, vmin).as_cm2();
        let lower = logic.sigma_data(Millivolts::new(mv - 5), f, vmin).as_cm2();
        prop_assert!(lower >= here);
    }
}

/// Campaign determinism over arbitrary seeds (plain test with a few seeds
/// rather than proptest: each campaign run is relatively expensive).
#[test]
fn campaign_determinism_over_seeds() {
    for seed in [1u64, 999, 0xDEAD_BEEF] {
        let mut config = serscale_core::campaign::CampaignConfig::paper_scaled(0.004);
        config.seed = seed;
        let a = serscale_core::campaign::Campaign::new(config.clone()).run();
        let b = serscale_core::campaign::Campaign::new(config).run();
        assert_eq!(a, b, "seed {seed}");
    }
}
