//! Integration: the paper's §3.6 test flow, end to end.
//!
//! "Prior to the radiation tests, we extensively characterized the
//! processor … The identified safe Vmin for each frequency allowed a
//! fault-free execution of all benchmarks. Therefore, any detected errors
//! during the radiation experiments are attributed to neutrons and not to
//! the reduced supply voltage."
//!
//! This file walks that exact chain: characterize → validate the operating
//! points → verify fault-free execution without beam → campaign with beam.

use serscale_core::campaign::{Campaign, CampaignConfig, VminSource};
use serscale_core::classify::RunVerdict;
use serscale_core::dut::DeviceUnderTest;
use serscale_core::runner::BenchmarkRunner;
use serscale_soc::platform::{OperatingPoint, XGene2};
use serscale_stats::SimRng;
use serscale_types::{Flux, Megahertz, Millivolts, SimInstant};
use serscale_undervolt::{characterize::Characterizer, timing::TimingFailureModel};
use serscale_workload::Benchmark;

#[test]
fn step1_characterization_finds_the_paper_vmins() {
    let harness = Characterizer::new(TimingFailureModel::xgene2(), 100);
    let mut rng = SimRng::seed_from(7);
    let c24 = harness.sweep(&mut rng, Megahertz::new(2400));
    let mut rng = SimRng::seed_from(7);
    let c09 = harness.sweep(&mut rng, Megahertz::new(900));
    assert_eq!(c24.safe_vmin(), Some(Millivolts::new(920)));
    assert_eq!(c09.safe_vmin(), Some(Millivolts::new(790)));
    // And the safe Vmin really was failure-free across all benchmarks.
    let at_vmin = c24
        .points
        .iter()
        .find(|p| Some(p.voltage) == c24.safe_vmin())
        .unwrap();
    assert_eq!(at_vmin.failures, 0);
    assert_eq!(at_vmin.trials, 600); // 6 benchmarks × 100 trials
}

#[test]
fn step2_campaign_points_validate_against_the_regulator() {
    let soc = XGene2::new();
    for point in OperatingPoint::CAMPAIGN {
        soc.validate(point)
            .expect("campaign points are regulator-legal");
    }
}

#[test]
fn step3_no_beam_no_errors_at_every_campaign_point() {
    // The keystone: at safe voltages with the beam off, every benchmark
    // runs correctly — so beam-time errors are radiation, full stop.
    for point in OperatingPoint::CAMPAIGN {
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut runner = BenchmarkRunner::new(dut, Flux::per_cm2_s(0.0));
        let mut rng = SimRng::seed_from(11);
        for benchmark in Benchmark::ALL {
            let out = runner.run_once(&mut rng, benchmark, SimInstant::EPOCH);
            assert_eq!(
                out.verdict,
                RunVerdict::Correct,
                "{benchmark} at {} without beam",
                point.label()
            );
            assert!(out.edac.is_empty());
        }
    }
}

#[test]
fn step4_campaign_driven_by_characterized_vmins() {
    // The campaign can take its Vmin anchors from the characterization
    // harness instead of the paper's constants, closing the loop.
    let mut config = CampaignConfig::paper_scaled(0.01);
    config.seed = 23;
    config.vmin_source = VminSource::Characterized { trials: 80 };
    let report = Campaign::new(config).run();
    assert_eq!(report.sessions.len(), 4);
    for (f, v) in &report.vmins {
        let paper = DeviceUnderTest::paper_vmin(*f);
        assert!(
            v.get().abs_diff(paper.get()) <= 5,
            "characterized {v} strays from paper {paper} at {f}"
        );
    }
}

#[test]
fn beam_on_produces_radiation_attributable_errors_only_at_safe_points() {
    // With the beam on at a SAFE voltage, failures occur — and since step 3
    // proved the voltage alone is harmless, they are neutron-attributable.
    let point = OperatingPoint::vmin_2400();
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    let mut runner = BenchmarkRunner::new(dut, Flux::per_cm2_s(1.5e6));
    let mut rng = SimRng::seed_from(13);
    let mut failures = 0;
    for i in 0..4000 {
        let out = runner.run_once(&mut rng, Benchmark::ALL[i % 6], SimInstant::EPOCH);
        if out.verdict != RunVerdict::Correct {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "a ~3.5-hour Vmin exposure must produce failures"
    );
}
