//! Kill/resume equivalence for the crash-safe campaign engine: a journaled
//! campaign interrupted at *any* record boundary — or mid-record, through a
//! torn tail — and then resumed must reproduce the uninterrupted run's
//! report and `Logbook` trace byte for byte, at any worker count.
//!
//! The golden run, its trace and its complete journal are computed once
//! and shared across cases; each case then truncates a private copy of the
//! journal and resumes from it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport, CampaignRunOptions};
use serscale_core::journal::{journal_path, start_or_resume};
use serscale_core::trace::Logbook;

const SEED: u64 = 0x0010_57ED;
const SCALE: f64 = 0.005;

fn campaign() -> Campaign {
    let mut config = CampaignConfig::paper_scaled(SCALE);
    config.seed = SEED;
    Campaign::new(config)
}

/// (uninterrupted report, uninterrupted trace, complete journal text).
fn golden() -> &'static (CampaignReport, Logbook, String) {
    static GOLDEN: OnceLock<(CampaignReport, Logbook, String)> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let campaign = campaign();
        let mut golden_log = Logbook::new();
        let golden = campaign.run_observed(2, &mut golden_log);

        let dir = case_dir("golden");
        let (mut writer, recovered) =
            start_or_resume(&dir, campaign.config()).expect("journal opens");
        assert!(recovered.is_none(), "fresh directory must not recover");
        let mut log = Logbook::new();
        let journaled = campaign.run_recoverable(
            CampaignRunOptions {
                journal: Some(&mut writer),
                ..CampaignRunOptions::with_jobs(2)
            },
            &mut log,
        );
        drop(writer);
        assert_eq!(journaled, golden, "journaling must not perturb the run");
        assert_eq!(log, golden_log, "journaling must not perturb the trace");
        let text = std::fs::read_to_string(journal_path(&dir)).expect("journal readable");
        let _ = std::fs::remove_dir_all(&dir);
        (golden, golden_log, text)
    })
}

fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "serscale-journal-resume-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `text` as the (truncated) journal of a fresh directory, resumes
/// from it at `jobs`, and asserts bit-identity with the uninterrupted run.
fn resume_and_check(tag: &str, text: &str, jobs: usize) {
    let (golden_report, golden_log, _) = golden();
    let campaign = campaign();
    let dir = case_dir(tag);
    std::fs::create_dir_all(&dir).expect("dir creatable");
    std::fs::write(journal_path(&dir), text).expect("journal writable");

    let (mut writer, recovered) =
        start_or_resume(&dir, campaign.config()).expect("truncated journal reopens");
    let mut resumed_log = Logbook::new();
    let resumed = campaign.run_recoverable(
        CampaignRunOptions {
            journal: Some(&mut writer),
            recovered: recovered.as_ref(),
            ..CampaignRunOptions::with_jobs(jobs)
        },
        &mut resumed_log,
    );
    drop(writer);
    assert_eq!(
        &resumed, golden_report,
        "{tag}: report diverged (jobs={jobs})"
    );
    assert_eq!(
        &resumed_log, golden_log,
        "{tag}: trace diverged (jobs={jobs})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// A crash between fsync'd waves lands on a record boundary: keeping
    /// any prefix of complete records must resume to the golden bits at
    /// jobs 1 and 8.
    #[test]
    fn resume_from_any_record_boundary(
        fraction in 0.02f64..0.98,
        pick in 0usize..2,
    ) {
        let (_, _, text) = golden();
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() as f64 * fraction) as usize).clamp(1, lines.len());
        let mut cut = lines[..keep].join("\n");
        cut.push('\n');
        resume_and_check("boundary", &cut, [1, 8][pick]);
    }
}

#[test]
fn resume_from_a_torn_record_tail() {
    // A crash mid-write tears the final record; the per-line digest (or
    // the missing newline) exposes it and recovery drops exactly that
    // fragment.
    let (_, _, text) = golden();
    let cut_at = (text.len() * 7 / 10).max(1);
    let torn = &text[..cut_at];
    assert!(
        !torn.ends_with('\n'),
        "test setup: the cut must land mid-record"
    );
    for jobs in [1, 8] {
        resume_and_check("torn", torn, jobs);
    }
}

#[test]
fn resume_of_a_complete_journal_is_a_pure_replay() {
    // The race the CI recovery job must tolerate: the SIGKILL lands after
    // the campaign already finished. Resuming then re-simulates nothing
    // and still reproduces every bit.
    let (_, _, text) = golden();
    for jobs in [1, 8] {
        resume_and_check("complete", text, jobs);
    }
}
