//! Offline forensics battery: `repro inspect` must tell the truth.
//!
//! Three contracts over real artifacts on disk:
//!
//! 1. **Exact reconstruction** — inspecting a finished run's directory
//!    reproduces the live registry's `worker_busy_seconds` gauges and the
//!    `wave_critical_path{voltage=…}` histogram count/sum **bit for
//!    bit**, at `--jobs 1` and `--jobs 8`. The live numbers come from
//!    integer nanosecond ledgers divided once (gauges) and a sequential
//!    f64 accumulation in observation order (histogram sums); the wave
//!    spans carry the same integers, so the replay has no rounding slack
//!    to hide in.
//! 2. **Observe-only, on disk too** — a journaled run produces the same
//!    report and byte-identical journal whether the telemetry layer is
//!    attached or not, at both jobs counts.
//! 3. **Folded stacks everywhere** — `--folded` output is non-empty and
//!    well-formed for a CLI campaign's telemetry directory and for an
//!    HTTP-submitted campaign's service job directory, whose busy-time
//!    attribution must also match `GET /campaigns/{id}`.
//!
//! Plus a property check: the nearest-rank quantile engine agrees with a
//! naive counting reference on arbitrary populations.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use serscale_bench::run_campaign_recovering_monitored;
use serscale_core::session::RetryPolicy;
use serscale_core::trace::SessionObserver;
use serscale_telemetry::inspect::{exact_quantile, inspect_dir};
use serscale_telemetry::json::{self, JsonValue};
use serscale_telemetry::metrics::SeriesKey;
use serscale_telemetry::serve::{http_get, http_request};
use serscale_telemetry::{ControlPlane, ControlPlaneOptions, TelemetryOptions, TelemetrySink};

const SCALE: f64 = 0.002;
const SEED: u64 = 977;

fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "serscale-inspect-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("case dir creatable");
    dir
}

/// Runs a journaled, telemetry-observed campaign whose journal and
/// telemetry artifacts land in the same directory, returning the sink
/// for live-registry comparison.
fn observed_run(dir: &Path, jobs: usize) -> TelemetrySink {
    let sink = TelemetrySink::new(dir, TelemetryOptions::default()).expect("sink dir");
    let mut observer = sink.observer();
    run_campaign_recovering_monitored(
        SCALE,
        SEED,
        jobs,
        RetryPolicy::standard(),
        dir,
        None,
        &mut observer,
    )
    .expect("campaign runs");
    drop(observer);
    sink.write().expect("artifacts written");
    sink
}

/// Contract 1: the offline replay reproduces the live busy-time gauges
/// and critical-path histogram totals exactly — no epsilon.
#[test]
fn inspect_reproduces_live_worker_and_critical_path_totals_exactly() {
    for jobs in [1usize, 8] {
        let dir = case_dir(&format!("exact-j{jobs}"));
        let sink = observed_run(&dir, jobs);
        let snapshot = sink.registry().snapshot();
        let report = inspect_dir(&dir).expect("inspectable");

        assert!(!report.workers.is_empty(), "jobs {jobs}: workers observed");
        for worker in &report.workers {
            let label = worker.index.to_string();
            let live = snapshot
                .gauge_value("worker_busy_seconds", &[("worker", &label)])
                .unwrap_or_else(|| panic!("live gauge for worker {label}"));
            assert_eq!(
                worker.busy_seconds(),
                live,
                "jobs {jobs}: worker {label} busy seconds must match bit-exactly"
            );
        }

        assert!(
            !report.critical_path_series.is_empty(),
            "jobs {jobs}: critical-path series reconstructed"
        );
        for series in &report.critical_path_series {
            let key = SeriesKey::new("wave_critical_path", &[("voltage", &series.voltage)]);
            let live = snapshot
                .histograms
                .get(&key)
                .unwrap_or_else(|| panic!("live histogram for {}", series.voltage));
            assert_eq!(series.count, live.count, "count @ {}", series.voltage);
            assert_eq!(
                series.sum_seconds, live.sum,
                "jobs {jobs}: histogram sum @ {} must match bit-exactly",
                series.voltage
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Contract 2: attaching the telemetry layer changes neither the report
/// nor a single journal byte, at both jobs counts.
#[test]
fn telemetry_layer_leaves_report_and_journal_bytes_unchanged() {
    struct Discard;
    impl SessionObserver for Discard {}

    for jobs in [1usize, 8] {
        let bare_dir = case_dir(&format!("bare-j{jobs}"));
        let (bare_report, _) = run_campaign_recovering_monitored(
            SCALE,
            SEED,
            jobs,
            RetryPolicy::standard(),
            &bare_dir,
            None,
            &mut Discard,
        )
        .expect("bare run");
        let observed_dir = case_dir(&format!("observed-j{jobs}"));
        let sink = TelemetrySink::new(&observed_dir, TelemetryOptions::default()).expect("sink");
        let mut observer = sink.observer();
        let (observed_report, _) = run_campaign_recovering_monitored(
            SCALE,
            SEED,
            jobs,
            RetryPolicy::standard(),
            &observed_dir,
            None,
            &mut observer,
        )
        .expect("observed run");
        assert_eq!(
            bare_report, observed_report,
            "jobs {jobs}: telemetry must not touch the report"
        );
        let bare_journal = std::fs::read(bare_dir.join("journal.jsonl")).expect("bare journal");
        let observed_journal =
            std::fs::read(observed_dir.join("journal.jsonl")).expect("observed journal");
        assert_eq!(
            bare_journal, observed_journal,
            "jobs {jobs}: journal bytes must be identical with the layer attached"
        );
        std::fs::remove_dir_all(&bare_dir).expect("cleanup");
        std::fs::remove_dir_all(&observed_dir).expect("cleanup");
    }
}

fn assert_folded_well_formed(folded: &str, what: &str) {
    assert!(!folded.trim().is_empty(), "{what}: folded output non-empty");
    let mut saw_wave = false;
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("{what}: folded line lacks a weight: {line:?}");
        });
        assert!(!stack.is_empty(), "{what}: empty stack in {line:?}");
        weight
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{what}: non-integer weight in {line:?}"));
        if stack.contains("wave@") {
            saw_wave = true;
            assert!(
                stack.contains(';'),
                "{what}: wave frames must be rooted: {line:?}"
            );
        }
    }
    assert!(saw_wave, "{what}: folded output carries wave frames");
}

/// Contract 3a: folded stacks from a CLI run's telemetry directory, and
/// a sane diff between two runs.
#[test]
fn folded_stacks_and_diff_work_for_cli_runs() {
    let dir_a = case_dir("folded-a");
    let dir_b = case_dir("folded-b");
    observed_run(&dir_a, 1);
    observed_run(&dir_b, 8);
    let a = inspect_dir(&dir_a).expect("a");
    let b = inspect_dir(&dir_b).expect("b");
    assert_folded_well_formed(&a.folded(), "cli jobs 1");
    assert_folded_well_formed(&b.folded(), "cli jobs 8");
    // Same campaign either way: the diff's trial counts must cancel.
    let diff = serscale_telemetry::inspect::render_diff(&a, &b);
    assert!(
        diff.contains("absorbed trials")
            && diff
                .lines()
                .any(|l| { l.starts_with("absorbed trials") && l.contains("(delta 0)") }),
        "diff reports no absorbed-trial delta between jobs counts:\n{diff}"
    );
    let rendered = a.render();
    assert!(rendered.contains("worker_busy_seconds"), "{rendered}");
    assert!(rendered.contains("wave_critical_path_sum"), "{rendered}");
    std::fs::remove_dir_all(&dir_a).expect("cleanup");
    std::fs::remove_dir_all(&dir_b).expect("cleanup");
}

/// Contract 3b: an HTTP-submitted campaign leaves an inspectable job
/// directory behind, and the offline busy-time attribution matches the
/// service's own `/campaigns/{id}` accounting.
#[test]
fn service_job_directories_are_inspectable_and_match_live_attribution() {
    let state = case_dir("service-state");
    let sink = Arc::new(TelemetrySink::in_memory(TelemetryOptions::default()));
    let control = ControlPlane::start(ControlPlaneOptions {
        max_concurrent: 1,
        state_dir: Some(state.clone()),
        ..Default::default()
    });
    let server = sink
        .serve_control("127.0.0.1:0", Arc::clone(&control))
        .expect("service binds");
    let addr = server.addr();
    let (status, body) = http_request(
        addr,
        "POST",
        "/campaigns",
        &format!("{{\"tenant\":\"forensics\",\"seed\":{SEED},\"scale\":{SCALE},\"jobs\":2}}"),
    )
    .expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = json::parse(&body)
        .expect("acceptance parses")
        .get("id")
        .and_then(JsonValue::as_f64)
        .expect("id") as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    let final_doc = loop {
        let (status, body) = http_get(addr, &format!("/campaigns/{id}")).expect("status");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status parses");
        if doc.get("done") == Some(&JsonValue::Bool(true)) {
            break doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(10));
    };
    control.drain();

    let job_dir = state.join(format!("job-{id}"));
    let report = inspect_dir(&job_dir).expect("job dir inspectable");
    assert_folded_well_formed(&report.folded(), "service job");
    assert!(
        report.journal.as_ref().is_some_and(|j| j.trials > 0),
        "service journal carries trials"
    );
    let live_busy = final_doc
        .get("worker_busy_seconds")
        .and_then(JsonValue::as_f64)
        .expect("status attribution present");
    let offline_busy: f64 = report.workers.iter().map(|w| w.busy_seconds()).sum();
    assert_eq!(
        offline_busy, live_busy,
        "offline replay must reproduce the service's busy-second attribution"
    );
    std::fs::remove_dir_all(&state).expect("cleanup");
}

/// A counting-based nearest-rank reference: the smallest sample `v` with
/// `#{x ≤ v} ≥ ⌈q·n⌉` — formulated independently of the index arithmetic
/// the engine uses.
fn naive_nearest_rank(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    for v in &sorted {
        if sorted.iter().filter(|x| x.total_cmp(v).is_le()).count() >= target {
            return *v;
        }
    }
    sorted[n - 1]
}

proptest! {
    /// The exact-quantile engine agrees with the counting reference on
    /// arbitrary populations (duplicates included) and quantiles.
    #[test]
    fn exact_quantiles_match_a_naive_counting_reference(
        values in prop::collection::vec(0.0f64..1e6, 40),
        len in 1usize..40,
        q in 0.0f64..1.0,
    ) {
        let population = &values[..len];
        let mut sorted = population.to_vec();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(
            exact_quantile(&sorted, q),
            naive_nearest_rank(population, q),
            "q={} over {:?}", q, population
        );
    }

    /// Duplicate-heavy populations (small integer grid) exercise the
    /// tie-breaking: both formulations must still agree.
    #[test]
    fn exact_quantiles_agree_on_duplicate_heavy_populations(
        raw in prop::collection::vec(0u32..4, 24),
        len in 1usize..24,
        q in 0.0f64..1.0,
    ) {
        let population: Vec<f64> = raw[..len].iter().map(|&v| f64::from(v)).collect();
        let mut sorted = population.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(
            exact_quantile(&sorted, q),
            naive_nearest_rank(&population, q),
            "q={} over {:?}", q, population
        );
    }
}
