//! Integration: the "full software stack" seams — dmesg scraping, the
//! multithreaded workload shape, and fleet-scale characterization.

use serscale_core::dut::DeviceUnderTest;
use serscale_core::runner::BenchmarkRunner;
use serscale_soc::edac::{EdacLog, EdacRecord};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::{Flux, Megahertz, SimInstant};
use serscale_undervolt::{ChipPopulation, FleetCharacterization};
use serscale_workload::kernel::Kernel;
use serscale_workload::{run_suite_parallel, Benchmark, EpParallel};

#[test]
fn dmesg_scrape_roundtrip_through_a_beam_run() {
    // Produce real EDAC records under beam, render them to a dmesg text
    // with interleaved non-EDAC noise, scrape it back, and verify the
    // harvested counts match — the paper's §4.2 collection path.
    let point = OperatingPoint::vmin_2400();
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    let mut runner = BenchmarkRunner::new(dut, Flux::per_cm2_s(1.5e6));
    let mut rng = SimRng::seed_from(42);

    let mut log = EdacLog::new();
    for i in 0..2000 {
        let out = runner.run_once(&mut rng, Benchmark::ALL[i % 6], SimInstant::EPOCH);
        for r in out.edac {
            log.push(r);
        }
    }
    assert!(
        !log.is_empty(),
        "a 1.7-hour Vmin exposure must log EDAC events"
    );

    // Interleave boot noise like a real kernel log.
    let mut dmesg = String::from("[    0.000000] Booting Linux on physical CPU 0x0\n");
    for (i, line) in log.to_dmesg().lines().enumerate() {
        if i % 5 == 0 {
            dmesg.push_str("[    1.234567] systemd[1]: Started irrelevant unit.\n");
        }
        dmesg.push_str(line);
        dmesg.push('\n');
    }

    let scraped: Vec<EdacRecord> = dmesg
        .lines()
        .filter_map(EdacRecord::from_dmesg_line)
        .collect();
    assert_eq!(scraped.len(), log.len());
    let mut rebuilt = EdacLog::new();
    for r in scraped {
        rebuilt.push(r);
    }
    assert_eq!(rebuilt.corrected_count(), log.corrected_count());
    assert_eq!(rebuilt.uncorrected_count(), log.uncorrected_count());
    assert_eq!(rebuilt.counts_per_level(), log.counts_per_level());
}

#[test]
fn parallel_suite_outputs_equal_campaign_goldens() {
    // The campaign's golden outputs and a concurrent 6-thread execution of
    // the whole suite agree bit-for-bit.
    let kernels: Vec<Box<dyn Kernel + Sync>> = vec![
        Box::new(serscale_workload::cg::Cg::class_a()),
        Box::new(serscale_workload::ep::Ep::class_a()),
        Box::new(serscale_workload::ft::Ft::class_a()),
        Box::new(serscale_workload::is::Is::class_a()),
        Box::new(serscale_workload::lu::Lu::class_a()),
        Box::new(serscale_workload::mg::Mg::class_a()),
    ];
    let outputs = run_suite_parallel(&kernels);
    for (benchmark, output) in Benchmark::ALL.iter().zip(&outputs) {
        assert_eq!(output, &benchmark.kernel().golden(), "{benchmark}");
    }
}

#[test]
fn intra_kernel_parallel_ep_is_corruptible_and_deterministic() {
    // The 8-thread EP supports the same corruption hook the fault
    // injector uses, scheduling-independently.
    let ep = EpParallel::class_a();
    let golden = ep.golden();
    let corrupted = ep.run_corrupted(serscale_workload::Corruption::new(0.25, 5, 61));
    assert_ne!(corrupted, golden);
    for _ in 0..3 {
        assert_eq!(
            ep.run_corrupted(serscale_workload::Corruption::new(0.25, 5, 61)),
            corrupted
        );
    }
}

#[test]
fn fleet_characterization_brackets_the_papers_specimen() {
    let mut rng = SimRng::seed_from(99);
    let fleet = FleetCharacterization::run(
        &mut rng,
        &ChipPopulation::xgene2_fleet(),
        Megahertz::new(2400),
        30,
        40,
    );
    // The paper's chip (920 mV) lies within the fleet's range.
    assert!(fleet.best_chip_vmin().get() <= 920);
    assert!(fleet.uniform_safe_vmin().get() >= 920);
    // And the uniform fleet policy is strictly more conservative than the
    // average chip needs.
    assert!(fleet.per_chip_dividend_mv() >= 0.0);
}
