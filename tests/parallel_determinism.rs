//! The determinism contract of the parallel campaign engine: the same
//! seed yields the same bits at any worker count, and the per-trial RNG
//! stream derivation that guarantees it never collides.

use proptest::prelude::*;

use serscale_core::campaign::{Campaign, CampaignConfig};
use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_core::trace::Logbook;
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::{Flux, SimDuration};

fn scaled_campaign(seed: u64) -> CampaignConfig {
    let mut config = CampaignConfig::paper_scaled(0.01);
    config.seed = seed;
    config
}

#[test]
fn campaign_is_bit_identical_across_worker_counts() {
    let reference = Campaign::new(scaled_campaign(0xD00D)).run();
    for jobs in [1, 2, 8] {
        let parallel = Campaign::new(scaled_campaign(0xD00D)).run_parallel(jobs);
        assert_eq!(parallel, reference, "jobs = {jobs}");
    }
}

#[test]
fn session_parallel_matches_sequential_for_every_stop_rule() {
    let session = |limits: SessionLimits, jobs: usize| {
        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut s = TestSession::new(dut, Flux::per_cm2_s(1.5e6), limits);
        s.run_parallel(&mut SimRng::seed_from(0xF00), jobs)
    };
    let rules = [
        SessionLimits::time_boxed(SimDuration::from_minutes(30.0)),
        SessionLimits {
            max_error_events: 25,
            max_fluence: serscale_types::Fluence::per_cm2(1e30),
            max_duration: None,
        },
        SessionLimits {
            max_error_events: u64::MAX,
            max_fluence: serscale_types::Fluence::per_cm2(2.0e9),
            max_duration: None,
        },
    ];
    for limits in rules {
        let reference = session(limits, 1);
        for jobs in [2, 3, 8] {
            let got = session(limits, jobs);
            assert_eq!(got, reference, "jobs = {jobs}, limits = {limits:?}");
            assert_eq!(got.stop_reason, reference.stop_reason);
        }
    }
}

#[test]
fn observer_trace_is_identical_across_worker_counts() {
    let trace = |jobs: usize| {
        let point = OperatingPoint::safe();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut s = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(25.0)),
        );
        let mut logbook = Logbook::new();
        let report = s.run_observed_with(&mut SimRng::seed_from(0xCAFE), jobs, &mut logbook);
        (report, logbook)
    };
    let (ref_report, ref_logbook) = trace(1);
    for jobs in [2, 8] {
        let (report, logbook) = trace(jobs);
        assert_eq!(report, ref_report, "jobs = {jobs}");
        assert_eq!(
            logbook, ref_logbook,
            "jobs = {jobs}: traces must match event-for-event"
        );
    }
}

#[test]
fn worker_count_does_not_leak_into_successive_sessions() {
    // Two sessions run off one generator must stay distinct AND be
    // reproducible: the engine draws exactly one seed from the caller's
    // rng regardless of jobs.
    let pair = |jobs: usize| {
        let point = OperatingPoint::nominal();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let limits = SessionLimits::time_boxed(SimDuration::from_minutes(10.0));
        let mut rng = SimRng::seed_from(42);
        let mut first = TestSession::new(dut.clone(), Flux::per_cm2_s(1.5e6), limits);
        let mut second = TestSession::new(dut, Flux::per_cm2_s(1.5e6), limits);
        (
            first.run_parallel(&mut rng, jobs),
            second.run_parallel(&mut rng, jobs),
        )
    };
    let (a1, a2) = pair(1);
    assert_ne!(a1, a2, "sessions sharing a generator must differ");
    let (b1, b2) = pair(4);
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
}

proptest! {
    /// Counter-based stream derivation never collides across (shard,
    /// trial) pairs: any two distinct coordinates in a campaign-sized grid
    /// get generators whose leading draws differ.
    #[test]
    fn trial_streams_never_collide(
        seed in any::<u64>(),
        shards in 1u64..16,
        trials in 1u64..512,
    ) {
        let root = SimRng::seed_from(seed);
        let mut seen = std::collections::HashMap::new();
        for shard in 0..shards {
            for trial in 0..trials {
                let fingerprint = root.stream("trial", &[shard, trial]).take_u64s(2);
                if let Some(previous) = seen.insert(fingerprint, (shard, trial)) {
                    prop_assert!(
                        false,
                        "stream collision: {previous:?} vs ({shard}, {trial})"
                    );
                }
            }
        }
    }

    /// Derivation is position-independent: draining the parent any number
    /// of draws never changes a trial's stream.
    #[test]
    fn trial_streams_ignore_parent_position(
        seed in any::<u64>(),
        drains in 0usize..64,
        trial in 0u64..10_000,
    ) {
        let fresh = SimRng::seed_from(seed).stream("trial", &[trial]).take_u64s(2);
        let mut drained = SimRng::seed_from(seed);
        for _ in 0..drains {
            drained.uniform();
        }
        prop_assert_eq!(fresh, drained.stream("trial", &[trial]).take_u64s(2));
    }
}
