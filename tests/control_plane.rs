//! Control-plane concurrency battery: campaign-as-a-service must be
//! *indistinguishable*, byte for byte, from the one-shot CLI.
//!
//! Three contracts, end to end over real sockets:
//!
//! 1. **Isolation under concurrency** — N campaigns submitted by M
//!    concurrent HTTP clients, interleaved on a shared worker pool, each
//!    produce a report byte-identical to the same spec run solo through
//!    the CLI path ([`run_campaign_jobs`]), at `jobs: 1` and `jobs: 8`.
//! 2. **The resume oracle** — `DELETE` mid-run cancels at a wave
//!    boundary with the journal resumable; resubmitting the spec with
//!    `"resume": <id>` replays the absorbed prefix and finishes to the
//!    *uninterrupted* report (PR 4's crash-recovery oracle, driven over
//!    HTTP).
//! 3. **Service hygiene** — the legacy `/campaign` alias tracks the
//!    current job, and the event stream is valid JSONL that terminates.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serscale_bench::{golden_summary, run_campaign_jobs};
use serscale_core::campaign::Campaign;
use serscale_core::spec::{CampaignSpec, RawCampaignSpec, RawSessionSpec};
use serscale_telemetry::json::{self, JsonValue};
use serscale_telemetry::serve::{http_get, http_request, MonitorServer};
use serscale_telemetry::{ControlPlane, ControlPlaneOptions, TelemetryOptions, TelemetrySink};

fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "serscale-control-plane-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir creatable");
    dir
}

/// Starts a full service: control plane + HTTP plane on an ephemeral
/// port. The sink handle keeps service metrics alive; the server handle
/// keeps the port open.
fn service(
    max_concurrent: usize,
    state_dir: Option<PathBuf>,
) -> (Arc<TelemetrySink>, Arc<ControlPlane>, MonitorServer) {
    let sink = Arc::new(TelemetrySink::in_memory(TelemetryOptions::default()));
    let control = ControlPlane::start(ControlPlaneOptions {
        max_concurrent,
        state_dir,
        ..Default::default()
    });
    let server = sink
        .serve_control("127.0.0.1:0", Arc::clone(&control))
        .expect("service binds");
    (sink, control, server)
}

/// Polls `/campaigns/{id}` until the job reaches a terminal state;
/// returns the final status document.
fn wait_terminal(addr: std::net::SocketAddr, id: u64, timeout: Duration) -> JsonValue {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = http_get(addr, &format!("/campaigns/{id}")).expect("status fetch");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).expect("status document parses");
        if doc.get("done") == Some(&JsonValue::Bool(true)) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} not terminal within {timeout:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn job_status(doc: &JsonValue) -> &str {
    doc.get("status")
        .and_then(JsonValue::as_str)
        .expect("status field")
}

/// Contract 1: concurrent multi-client submissions are bit-identical to
/// solo CLI runs — the acceptance bar of the issue, at both jobs counts.
#[test]
fn concurrent_http_submissions_match_solo_cli_runs_bit_for_bit() {
    const SCALE: f64 = 0.002;
    // (seed, jobs): two campaigns per jobs count, all in flight at once
    // on a 2-runner pool, submitted from 4 concurrent clients.
    let matrix: [(u64, u32); 4] = [(101, 1), (102, 8), (103, 1), (104, 8)];
    let (_sink, control, server) = service(2, None);
    let addr = server.addr();

    let clients: Vec<_> = matrix
        .iter()
        .map(|&(seed, jobs)| {
            std::thread::spawn(move || {
                let spec = format!(
                    "{{\"tenant\":\"client-{seed}\",\"seed\":{seed},\
                     \"scale\":{SCALE},\"jobs\":{jobs}}}"
                );
                let (status, body) =
                    http_request(addr, "POST", "/campaigns", &spec).expect("submit");
                assert_eq!(status, 202, "{body}");
                let id = json::parse(&body)
                    .expect("acceptance parses")
                    .get("id")
                    .and_then(JsonValue::as_f64)
                    .expect("id field") as u64;
                let doc = wait_terminal(addr, id, Duration::from_secs(120));
                assert_eq!(job_status(&doc), "done", "{doc:?}");
                let (status, report) =
                    http_get(addr, &format!("/campaigns/{id}/report")).expect("report");
                assert_eq!(status, 200);
                (seed, jobs, report)
            })
        })
        .collect();

    for client in clients {
        let (seed, jobs, service_report) = client.join().expect("client thread");
        let solo = golden_summary(&run_campaign_jobs(SCALE, seed, jobs as usize));
        assert_eq!(
            service_report, solo,
            "seed {seed} jobs {jobs}: service report differs from the solo CLI run"
        );
    }

    // The listing agrees: four jobs, all done.
    let (_, listing) = http_get(addr, "/campaigns").expect("list");
    let docs = json::parse(&listing).expect("listing parses");
    let JsonValue::Array(docs) = docs else {
        panic!("listing is not an array: {listing}");
    };
    assert_eq!(docs.len(), 4);
    assert!(docs.iter().all(|d| job_status(d) == "done"), "{listing}");
    control.drain();
}

/// A spec big enough to still be running when a cancel lands: explicit
/// sessions several times the paper's beam time, run single-threaded.
fn long_spec(seed: u64) -> CampaignSpec {
    let session = |pmd_mv: f64, soc_mv: f64| RawSessionSpec {
        pmd_mv,
        soc_mv,
        freq_mhz: 2400.0,
        minutes: 2400.0,
    };
    CampaignSpec::try_from(RawCampaignSpec {
        tenant: Some("resume-oracle".to_string()),
        seed: Some(seed as f64),
        jobs: Some(1.0),
        sessions: Some(vec![
            session(980.0, 950.0),
            session(960.0, 950.0),
            session(940.0, 950.0),
            session(920.0, 920.0),
        ]),
        ..Default::default()
    })
    .expect("long spec validates")
}

fn spec_json(spec: &CampaignSpec, resume: Option<u64>) -> String {
    let sessions: Vec<String> = spec
        .sessions
        .as_ref()
        .expect("long spec has sessions")
        .iter()
        .map(|(point, limits)| {
            format!(
                "{{\"pmd_mv\":{},\"soc_mv\":{},\"freq_mhz\":{},\"minutes\":{}}}",
                point.pmd.get(),
                point.soc.get(),
                point.frequency.get(),
                limits
                    .max_duration
                    .map_or(0.0, serscale_types::SimDuration::as_minutes)
            )
        })
        .collect();
    let mut out = format!(
        "{{\"tenant\":{:?},\"seed\":{},\"jobs\":1,\"sessions\":[{}]",
        spec.tenant,
        spec.seed,
        sessions.join(",")
    );
    if let Some(id) = resume {
        out.push_str(&format!(",\"resume\":{id}"));
    }
    out.push('}');
    out
}

/// Contract 2: cancel mid-run over HTTP, resubmit with `resume`, and the
/// finished report is byte-identical to a run that was never cancelled.
#[test]
fn cancel_then_resume_reproduces_the_uninterrupted_report() {
    let state = case_dir("resume");
    let (_sink, control, server) = service(1, Some(state.clone()));
    let addr = server.addr();

    // The oracle: the same spec, run to completion in one piece.
    let spec = long_spec(4242);
    let uninterrupted = golden_summary(&Campaign::new(spec.config()).run_parallel(1));

    let (status, body) =
        http_request(addr, "POST", "/campaigns", &spec_json(&spec, None)).expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = json::parse(&body)
        .expect("acceptance parses")
        .get("id")
        .and_then(JsonValue::as_f64)
        .expect("id") as u64;

    // Wait for real progress, then cancel. The engine only observes the
    // token at a wave boundary, so the journal is synced when it stops.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = http_get(addr, &format!("/campaigns/{id}")).expect("status");
        let doc = json::parse(&body).expect("parses");
        let trials = doc
            .get("trials_done")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        if trials > 0.0 || doc.get("done") == Some(&JsonValue::Bool(true)) {
            break;
        }
        assert!(Instant::now() < deadline, "no progress: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) =
        http_request(addr, "DELETE", &format!("/campaigns/{id}"), "").expect("cancel");
    assert_eq!(status, 200, "{body}");
    let doc = wait_terminal(addr, id, Duration::from_secs(120));

    // Surfaced in `--nocapture` / CI logs so a flaky fallback is visible.
    eprintln!("cancel landed with job in state {:?}", job_status(&doc));
    match job_status(&doc) {
        "cancelled" => {
            // No report for a cancelled job — 409, not a partial result.
            let (status, _) =
                http_get(addr, &format!("/campaigns/{id}/report")).expect("no report");
            assert_eq!(status, 409);
            // Resubmit with resume: the journal's prefix replays, the
            // rest re-simulates, and the bytes come out unchanged.
            let (status, body) =
                http_request(addr, "POST", "/campaigns", &spec_json(&spec, Some(id)))
                    .expect("resubmit");
            assert_eq!(status, 202, "{body}");
            let resumed_id = json::parse(&body)
                .expect("parses")
                .get("id")
                .and_then(JsonValue::as_f64)
                .expect("id") as u64;
            let doc = wait_terminal(addr, resumed_id, Duration::from_secs(300));
            assert_eq!(job_status(&doc), "done", "{doc:?}");
            assert!(
                doc.get("resumed_trials")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0)
                    > 0.0,
                "resume replayed nothing — the cancel landed too early: {doc:?}"
            );
            let (_, report) =
                http_get(addr, &format!("/campaigns/{resumed_id}/report")).expect("report");
            assert_eq!(
                report, uninterrupted,
                "resumed report differs from the never-cancelled run"
            );
        }
        // The campaign can finish before the DELETE lands (tiny host
        // variance); the submission contract still holds bit for bit.
        "done" => {
            let (_, report) = http_get(addr, &format!("/campaigns/{id}/report")).expect("report");
            assert_eq!(report, uninterrupted);
        }
        other => panic!("unexpected terminal state {other}: {doc:?}"),
    }
    control.drain();
    let _ = std::fs::remove_dir_all(&state);
}

/// Contract 2b: a mismatched resume target is refused with a 409 — the
/// journal is fingerprint-locked to its configuration.
#[test]
fn resume_with_a_different_spec_is_refused() {
    let state = case_dir("resume-mismatch");
    let (_sink, control, server) = service(1, Some(state.clone()));
    let addr = server.addr();
    // Run a tiny campaign to completion, then try to "resume" it (wrong
    // state) and resume a nonexistent id.
    let (_, body) = http_request(
        addr,
        "POST",
        "/campaigns",
        "{\"tenant\":\"t\",\"seed\":9,\"scale\":0.001}",
    )
    .expect("submit");
    let id = json::parse(&body)
        .expect("parses")
        .get("id")
        .and_then(JsonValue::as_f64)
        .expect("id") as u64;
    wait_terminal(addr, id, Duration::from_secs(120));
    for (resume, why) in [(id, "done jobs are not resumable"), (999, "unknown id")] {
        let body = format!("{{\"tenant\":\"t\",\"seed\":9,\"scale\":0.001,\"resume\":{resume}}}");
        let (status, body) = http_request(addr, "POST", "/campaigns", &body).expect("resubmit");
        assert_eq!(status, 409, "{why}: {body}");
    }
    control.drain();
    let _ = std::fs::remove_dir_all(&state);
}

/// Contract 3: `/campaign` aliases the current job's document, and the
/// event stream is well-formed JSONL mirroring the job's private sink.
#[test]
fn alias_and_event_stream_follow_the_current_job() {
    let (_sink, control, server) = service(1, None);
    let addr = server.addr();
    // Before any submission the alias serves the legacy (empty) cell.
    let (status, body) = http_get(addr, "/campaign").expect("alias");
    assert_eq!(status, 200);
    assert!(
        json::parse(&body).expect("parses").get("id").is_none(),
        "legacy cell has no job id: {body}"
    );
    let (_, body) = http_request(
        addr,
        "POST",
        "/campaigns",
        "{\"tenant\":\"alias\",\"seed\":21,\"scale\":0.001}",
    )
    .expect("submit");
    let id = json::parse(&body)
        .expect("parses")
        .get("id")
        .and_then(JsonValue::as_f64)
        .expect("id") as u64;
    wait_terminal(addr, id, Duration::from_secs(120));
    let (_, alias) = http_get(addr, "/campaign").expect("alias");
    let (_, direct) = http_get(addr, &format!("/campaigns/{id}")).expect("direct");
    assert_eq!(alias, direct, "alias must serve the current job's document");
    // The stream terminates (job done) and every line is an event.
    let (status, events) = http_get(addr, &format!("/campaigns/{id}/events")).expect("events");
    assert_eq!(status, 200);
    let lines = json::parse_lines(&events).expect("valid JSONL");
    assert!(
        lines
            .iter()
            .any(|l| l.get("event").and_then(JsonValue::as_str) == Some("session_start")),
        "stream carries engine events: {events}"
    );
    control.drain();
}
