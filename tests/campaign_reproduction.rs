//! Integration: a scaled beam campaign reproduces the *shape* of every
//! headline result in the paper's evaluation.
//!
//! These assertions are the executable form of EXPERIMENTS.md: orderings,
//! ratios and crossovers, with tolerances sized for the scaled exposure's
//! Poisson noise.

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport};
use serscale_core::classify::FailureClass;
use serscale_core::fit::{class_fit, fit_breakdown, sdc_notification_split, total_fit};
use serscale_core::tradeoff::{power_vs_upsets, savings_vs_susceptibility};
use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;

/// One moderately sized campaign shared by all tests in this file: the
/// paper's four operating points with EQUAL 800-minute sessions, computed
/// once. (The paper's own session 3 and 4 durations are too short for
/// stable rate ratios once scaled down; Table 2's realized durations are
/// exercised by the repro binary and the campaign unit tests. 800 minutes
/// keeps nominal's failure-class shares — a few dozen events — out of
/// coin-flip territory.)
fn campaign() -> &'static CampaignReport {
    static REPORT: std::sync::OnceLock<CampaignReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut config = CampaignConfig::paper();
        config.seed = 0xBEA3;
        for (_, limits) in &mut config.sessions {
            *limits = serscale_core::session::SessionLimits::time_boxed(
                serscale_types::SimDuration::from_minutes(800.0),
            );
        }
        Campaign::new(config).run()
    })
}

#[test]
fn full_campaign_shape() {
    let report = campaign();
    assert_eq!(report.sessions.len(), 4);
    let nominal = report.baseline().expect("nominal session");
    let safe = report.session_at(OperatingPoint::safe()).expect("930 mV");
    let vmin = report
        .session_at(OperatingPoint::vmin_2400())
        .expect("920 mV");
    let vmin900 = report
        .session_at(OperatingPoint::vmin_900())
        .expect("790 mV");

    // --- Table 2 row 9: upset rates rise monotonically with undervolting.
    let rates = [
        nominal.upset_rate().per_minute(),
        safe.upset_rate().per_minute(),
        vmin.upset_rate().per_minute(),
        vmin900.upset_rate().per_minute(),
    ];
    assert!(
        rates[0] < rates[2] && rates[0] < rates[3],
        "upset rates must rise with undervolting: {rates:?}"
    );
    // Within the paper's band (1.0–1.2/min) everywhere.
    for r in rates {
        assert!(r > 0.85 && r < 1.40, "rate out of band: {r}");
    }

    // --- Observation #1: ~10.9% chip-level increase at Vmin.
    let increase = rates[2] / rates[0] - 1.0;
    assert!(
        (0.02..0.30).contains(&increase),
        "upset-rate increase at Vmin = {increase}"
    );

    // --- Figure 8: the SDC share explodes toward Vmin.
    let sdc_share =
        |s: &serscale_core::session::SessionReport| s.failure_shares()[&FailureClass::Sdc];
    assert!(
        sdc_share(nominal) < 0.55,
        "nominal SDC share = {}",
        sdc_share(nominal)
    );
    assert!(
        sdc_share(vmin) > 0.75,
        "Vmin SDC share = {}",
        sdc_share(vmin)
    );
    assert!(sdc_share(vmin) > sdc_share(nominal));

    // --- Figure 11: total FIT ratio ≈ 6.6×, SDC FIT ratio ≈ 16×.
    let total_ratio = total_fit(vmin).point.get() / total_fit(nominal).point.get();
    assert!(
        (3.0..12.0).contains(&total_ratio),
        "total FIT ratio = {total_ratio}"
    );
    let nominal_sdc = class_fit(nominal, FailureClass::Sdc).point.get();
    if nominal_sdc > 0.0 {
        let sdc_ratio = class_fit(vmin, FailureClass::Sdc).point.get() / nominal_sdc;
        assert!(
            (6.0..40.0).contains(&sdc_ratio),
            "SDC FIT ratio = {sdc_ratio}"
        );
    }

    // --- Figure 11 @ Vmin: SDC dominates both crash classes.
    let b = fit_breakdown(vmin);
    assert!(b.sdc.point.get() > b.sys_crash.point.get());
    assert!(b.sdc.point.get() > b.app_crash.point.get());

    // --- Figures 12/13: un-notified SDCs dominate notified ones.
    for session in [nominal, safe, vmin, vmin900] {
        let split = sdc_notification_split(session);
        assert!(
            split.without_notification.point.get() >= split.with_notification.point.get(),
            "{}",
            session.operating_point.label()
        );
    }

    // --- Observation #6: 790 mV @ 900 MHz raises the SER via voltage, but
    // its SDC FIT stays FAR below 920 mV @ 2.4 GHz (the timing-window
    // amplification is frequency-gated).
    let sdc_900 = class_fit(vmin900, FailureClass::Sdc).point.get();
    let sdc_vmin24 = class_fit(vmin, FailureClass::Sdc).point.get();
    assert!(
        sdc_900 < sdc_vmin24 / 2.0,
        "SDC FIT at 790/900MHz ({sdc_900}) should sit well below 920/2.4GHz ({sdc_vmin24})"
    );
}

#[test]
fn table2_fluence_and_nyc_equivalents_scale() {
    let mut config = CampaignConfig::paper_scaled(0.1);
    config.seed = 3;
    let report = Campaign::new(config).run();
    for session in &report.sessions {
        // Fluence = working flux × duration.
        let expected = 1.5e6 * session.duration.as_secs();
        let got = session.fluence.as_per_cm2();
        assert!((got - expected).abs() / expected < 1e-9);
        // NYC equivalence is in the right regime: each accelerated minute
        // is worth centuries.
        let years_per_minute = session.nyc_equivalent_years() / session.duration.as_minutes();
        assert!((years_per_minute - 789.0).abs() < 5.0, "{years_per_minute}");
    }
}

#[test]
fn figure9_figure10_tradeoff_shape() {
    let report = campaign();
    let model = PowerModel::xgene2();

    let rows = power_vs_upsets(report, &model);
    // Power monotone decreasing across the campaign order; upsets rising
    // between the endpoints.
    for pair in rows.windows(2) {
        assert!(pair[1].power < pair[0].power);
    }
    assert!(rows[3].upsets_per_minute > rows[0].upsets_per_minute);

    let savings = savings_vs_susceptibility(report, &model);
    assert_eq!(savings.len(), 3);
    // Paper: 8.7% / 11.0% / 48.1% savings.
    assert!((savings[0].power_savings - 0.087).abs() < 0.02);
    assert!((savings[1].power_savings - 0.110).abs() < 0.02);
    assert!((savings[2].power_savings - 0.481).abs() < 0.03);
}

#[test]
fn memory_ser_stays_in_paper_band() {
    let report = campaign();
    let mbit = serscale_soc::platform::XGene2::new().total_sram().as_mbit();
    for session in &report.sessions {
        let ser = session.memory_ser_fit_per_mbit(mbit);
        // Table 2 row 10: 2.08–2.45 FIT/Mbit. Allow scaled-run noise.
        assert!(
            (1.6..3.2).contains(&ser),
            "{}: SER = {ser}",
            session.operating_point.label()
        );
    }
}

#[test]
fn campaign_replays_bit_identically() {
    let mut config = CampaignConfig::paper_scaled(0.02);
    config.seed = 17;
    let a = Campaign::new(config.clone()).run();
    let b = Campaign::new(config).run();
    assert_eq!(a, b);
}
