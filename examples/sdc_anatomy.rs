//! Anatomy of a silent data corruption, end to end.
//!
//! Walks through the exact mechanism behind the paper's Figure 12 — an SDC
//! that arrives *with* a benign-looking corrected-error notification:
//!
//! 1. a neutron flips three physically adjacent cells of the
//!    (un-interleaved) L3;
//! 2. the SECDED(72,64) decoder aliases the triple flip to a "single-bit
//!    error", silently mis-corrects, and dutifully logs a CE;
//! 3. the corrupt word is consumed by a running CG solve;
//! 4. the Control-PC's golden comparison catches the output mismatch —
//!    the only symptom there will ever be.
//!
//! ```text
//! cargo run --release -p serscale-bench --example sdc_anatomy
//! ```

use serscale_ecc::secded::{Codeword, DecodeOutcome};
use serscale_soc::edac::{EdacLog, EdacRecord, EdacSeverity};
use serscale_types::{ArrayKind, SimInstant};
use serscale_workload::kernel::Corruption;
use serscale_workload::Benchmark;

fn main() {
    // --- 1. the strike --------------------------------------------------
    let data: u64 = 0x4037_9999_9999_999A; // the f64 bits of 23.6
    let mut word = Codeword::encode(data);
    println!(
        "stored L3 word:        0x{data:016x}  (f64 {})",
        f64::from_bits(data)
    );

    // Three adjacent cells in one 72-bit codeword — only possible because
    // the modelled L3, like the real one, has no bit interleaving (§4.3).
    let cluster = [17u32, 18, 19];
    for bit in cluster {
        word.flip(bit);
    }
    println!("neutron strike:        flipped codeword bits {cluster:?}");

    // --- 2. the deceptive decode ----------------------------------------
    let mut log = EdacLog::new();
    let corrupted = match word.decode() {
        DecodeOutcome::Corrected {
            data: decoded,
            position,
        } => {
            println!(
                "SECDED decode:         \"corrected single-bit error at position {position}\""
            );
            log.push(EdacRecord {
                time: SimInstant::from_secs(12.7),
                array: ArrayKind::L3Shared,
                severity: EdacSeverity::Corrected,
            });
            println!("dmesg:\n{}", log.to_dmesg().trim_end());
            decoded
        }
        DecodeOutcome::DetectedUncorrectable => {
            // Some triples XOR to an invalid syndrome and are caught; this
            // particular cluster was chosen to alias. If physics hands you
            // the detectable kind, you got lucky.
            println!("SECDED decode:         detected uncorrectable (lucky!)");
            return;
        }
        DecodeOutcome::Clean { data } => data,
    };
    println!(
        "actual word now:       0x{corrupted:016x}  (f64 {})  — silently wrong",
        f64::from_bits(corrupted)
    );
    assert_ne!(corrupted, data, "the mis-correction corrupted the data");

    // --- 3. consumption by a real computation ---------------------------
    let kernel = Benchmark::Cg.kernel();
    let golden = kernel.golden();
    // The corrupt word lands in the solver's working set mid-run; we model
    // that with the kernel's corruption hook: flip the same bit-difference
    // pattern into its state. (A 3-bit cluster that mis-corrects produces a
    // multi-bit delta; a single representative flip suffices to show the
    // propagation.)
    let corrupted_run = kernel.run_corrupted(Corruption::new(0.5, 321, 51));
    println!("\nCG golden output:      {golden}");
    println!("CG corrupted output:   {corrupted_run}");

    // --- 4. detection only by golden comparison --------------------------
    if corrupted_run.matches(&golden) {
        println!("\nthe computation masked the corruption — no SDC this time.");
    } else {
        println!(
            "\ngolden comparison:     MISMATCH → silent data corruption.\n\
             hardware's last word on the matter: one corrected-error log entry.\n\
             This is the paper's Figure 12 pathology: an SDC wearing a CE's clothes."
        );
    }
}
