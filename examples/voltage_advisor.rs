//! The voltage advisor: everything the paper implies an operator should
//! do, in one pass.
//!
//! 1. Sweep the full 5 mV regulator grid from nominal to Vmin and chart
//!    power vs upset rate vs predicted SDC FIT (a fine-grained Figure
//!    9/10 the beam campaign could only sample at four points).
//! 2. Measure per-benchmark AVFs by fault injection (Design implication
//!    #3) and fold them into the FIT prediction.
//! 3. Price checkpoint/restart recovery into the energy bill (the
//!    introduction's open question) and recommend an operating point
//!    (Design implication #2).
//!
//! ```text
//! cargo run --release -p serscale-bench --example voltage_advisor
//! ```

use serscale_core::avf::FaultInjector;
use serscale_core::checkpoint::{compare_to_nominal, ledger, CheckpointScheme};
use serscale_core::dut::DeviceUnderTest;
use serscale_core::explore::{recommend, sweep_voltage};
use serscale_core::fit::total_fit;
use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;
use serscale_stats::SimRng;
use serscale_types::{Flux, Millivolts};

fn main() {
    let power_model = PowerModel::xgene2();
    let nominal = OperatingPoint::nominal();
    let template = DeviceUnderTest::xgene2(nominal, DeviceUnderTest::paper_vmin(nominal.frequency));

    // --- 1. the fine-grained sweep --------------------------------------
    println!("== voltage sweep (2.4 GHz, 5 mV grid) ==");
    println!("  PMD mV   power      upsets/min   predicted SDC FIT");
    let sweep = sweep_voltage(
        Millivolts::new(980),
        Millivolts::new(920),
        &template,
        &power_model,
        Flux::per_cm2_s(1.5e6),
    );
    for p in &sweep {
        println!(
            "   {:>4}   {:>6.2} W   {:>7.3}      {:>8.2}",
            p.pmd.get(),
            p.power.get(),
            p.upsets_per_minute,
            p.sdc_fit.get()
        );
    }
    let pick = recommend(&sweep, 3.0).expect("baseline always admissible");
    println!(
        "  advisor (≤3x nominal SDC): {} at {:.2} W — {} mV above Vmin\n",
        pick.pmd,
        pick.power.get(),
        pick.pmd - Millivolts::new(920)
    );

    // --- 2. measured AVFs -------------------------------------------------
    println!("== per-benchmark AVF by fault injection (120 injections each) ==");
    let mut rng = SimRng::seed_from(99);
    let avfs = FaultInjector::new(120).estimate_suite(&mut rng);
    for est in &avfs {
        println!(
            "  {:<3} AVF {:.2}  (95% CI [{:.2}, {:.2}], {}/{} corrupted)",
            est.benchmark.name(),
            est.avf(),
            est.lower,
            est.upper,
            est.corruptions,
            est.injections
        );
    }
    println!();

    // --- 3. recovery economics -------------------------------------------
    println!("== checkpoint/restart economics (harsh environment: 1e6 x NYC) ==");
    println!("   running a short beam campaign to measure per-point FIT…");
    let report = serscale_bench::run_campaign(0.2, 4242);
    let scheme = CheckpointScheme::typical();
    let scale = 1.0e6; // avionics/space-adjacent flux, where recovery bites
    let ledgers: Vec<_> = report
        .sessions
        .iter()
        .map(|s| {
            let fit = serscale_types::Fit::new(total_fit(s).point.get() * scale);
            ledger(s.operating_point, fit, &scheme, &power_model)
        })
        .collect();
    println!("   point              MTBF        ckpt-interval  inflation  energy/work");
    for l in &ledgers {
        println!(
            "   {:<16} {:>9.1} h   {:>9.1} min   {:>6.3}x   {:>8.1}",
            l.point.label(),
            l.mtbf.as_hours(),
            l.checkpoint_interval.as_minutes(),
            l.inflation,
            l.energy_per_work
        );
    }
    for (point, ratio) in compare_to_nominal(&ledgers) {
        let verdict = if ratio < 1.0 {
            "pays off"
        } else {
            "does NOT pay off"
        };
        println!(
            "   {:<16} net energy ratio {:.3} → undervolting {}",
            point.label(),
            ratio,
            verdict
        );
    }
    println!(
        "\n(In the benign NYC ground-level environment the inflation is \
         negligible at every point, so the power savings win outright — \
         the SDC risk, not the energy bill, is what prices the last 10 mV.)"
    );
}
