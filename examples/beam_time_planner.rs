//! Beam-time planning: how many hours at the facility does a target
//! precision cost?
//!
//! Accelerated beam time is the scarcest resource in this methodology —
//! the paper got three days at TRIUMF (one via the RADNEXT programme) and
//! its session 4 simply ran out. Before requesting hours, a team pilots
//! the setup and extrapolates: this example runs a short simulated pilot
//! at each operating point, measures the event rates, and inverts the
//! Poisson 95 % interval to answer "how long until each rate is known to
//! ±X %?".
//!
//! ```text
//! cargo run --release -p serscale-bench --example beam_time_planner
//! ```

use serscale_core::classify::FailureClass;
use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::ci::poisson_relative_uncertainty;
use serscale_stats::SimRng;
use serscale_types::{Flux, SimDuration};

/// The precision targets to price.
const TARGETS: [f64; 3] = [0.30, 0.20, 0.10];

/// Smallest event count whose Poisson 95 % interval is within ±target.
fn events_needed(target: f64) -> u64 {
    let mut n = 1u64;
    while poisson_relative_uncertainty(n) > target {
        n += 1;
    }
    n
}

fn main() {
    let flux = Flux::per_cm2_s(1.5e6);
    println!("pilot: 90 simulated beam minutes per operating point\n");
    println!(
        "{:<16} {:>10} {:>10} | beam hours to ±30% / ±20% / ±10% (events needed: {} / {} / {})",
        "point",
        "upsets/min",
        "events/h",
        events_needed(TARGETS[0]),
        events_needed(TARGETS[1]),
        events_needed(TARGETS[2]),
    );

    for point in OperatingPoint::CAMPAIGN {
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut pilot = TestSession::new(
            dut,
            flux,
            SessionLimits::time_boxed(SimDuration::from_minutes(90.0)),
        );
        let report = pilot.run(&mut SimRng::seed_from(31_415));
        let event_rate_per_hour = report.error_events() as f64 / report.duration.as_hours();
        let costs: Vec<String> = TARGETS
            .iter()
            .map(|&t| {
                if event_rate_per_hour > 0.0 {
                    format!("{:.0}", events_needed(t) as f64 / event_rate_per_hour)
                } else {
                    "∞".to_owned()
                }
            })
            .collect();
        println!(
            "{:<16} {:>10.2} {:>10.1} | {}",
            point.label(),
            report.upset_rate().per_minute(),
            event_rate_per_hour,
            costs.join(" / ")
        );

        // The per-class pain point: SDCs at nominal are the rarest class.
        let sdc_per_hour =
            report.failure_count(FailureClass::Sdc) as f64 / report.duration.as_hours();
        if sdc_per_hour > 0.0 {
            println!(
                "{:<16} {:>10} {:>10.1} |   (SDC-only ±20%: {:.0} h)",
                "",
                "",
                sdc_per_hour,
                events_needed(0.20) as f64 / sdc_per_hour
            );
        }
    }

    println!(
        "\nreading: the paper's 27-hour sessions bought ±20% on total events at \
         nominal; the 920 mV session needed only ~5 h for the same precision \
         because its (SDC-dominated) event rate is ~6x higher. Pricing ±10% on \
         *nominal-voltage SDCs alone* is what blows the beam budget — exactly \
         why Fig. 11's nominal SDC bar carries the widest error bar."
    );
}
