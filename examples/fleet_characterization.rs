//! Fleet characterization: chip-to-chip variation meets undervolting
//! policy.
//!
//! The paper characterizes one specimen (safe Vmin 920 mV at 2.4 GHz); a
//! datacenter owns thousands, and their Vmins spread. This example
//! characterizes a simulated 200-chip fleet and compares the two
//! deployment policies from the undervolting literature the paper builds
//! on ([43], [49]):
//!
//! * **uniform**: one fleet-wide voltage, pinned by the weakest chip;
//! * **per-chip**: every node at its own characterized Vmin (+1 step of
//!   margin, per Design implication #2).
//!
//! ```text
//! cargo run --release -p serscale-bench --example fleet_characterization
//! ```

use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;
use serscale_stats::SimRng;
use serscale_types::{Megahertz, Millivolts};
use serscale_undervolt::{ChipPopulation, FleetCharacterization};

const CHIPS: u32 = 200;

fn main() {
    println!("characterizing {CHIPS} simulated chips at 2.4 GHz (40 trials/benchmark/step)…");
    let mut rng = SimRng::seed_from(7_777);
    let fleet = FleetCharacterization::run(
        &mut rng,
        &ChipPopulation::xgene2_fleet(),
        Megahertz::new(2400),
        CHIPS,
        40,
    );

    println!("\nVmin distribution across the fleet:");
    for (voltage, count) in fleet.histogram() {
        println!(
            "  {:>4} mV  {:<4} {}",
            voltage.get(),
            count,
            "#".repeat(count as usize / 2)
        );
    }
    let (mean, sd) = fleet.vmin_stats();
    println!("  mean {mean:.1} mV, sigma {sd:.1} mV");
    println!("  strongest chip: {}", fleet.best_chip_vmin());
    println!("  weakest chip:   {}", fleet.uniform_safe_vmin());

    // Policy comparison: power at each policy's operating point, with one
    // 5 mV step of margin above the relevant Vmin (implication #2).
    let power_model = PowerModel::xgene2();
    let at = |pmd: Millivolts| {
        let point = OperatingPoint {
            pmd,
            soc: Millivolts::new(pmd.get().min(950)),
            frequency: Megahertz::new(2400),
        };
        power_model.total_power(point)
    };
    let nominal_power = at(Millivolts::new(980));
    let uniform_setting = fleet.uniform_safe_vmin().stepped_up(2);
    let uniform_power = at(uniform_setting);

    // Per-chip: average power over chips each at (own Vmin + 2 steps).
    let per_chip_avg: f64 = fleet
        .histogram()
        .iter()
        .map(|(v, count)| at(v.stepped_up(2)).get() * f64::from(*count))
        .sum::<f64>()
        / f64::from(CHIPS);

    println!("\npolicy comparison (per node, vs the 980 mV nominal {nominal_power}):");
    println!(
        "  uniform fleet voltage {}: {} ({:.1}% saved)",
        uniform_setting,
        uniform_power,
        100.0 * uniform_power.savings_vs(nominal_power)
    );
    println!(
        "  per-chip voltages:            {per_chip_avg:.2} W ({:.1}% saved)",
        100.0 * (nominal_power.get() - per_chip_avg) / nominal_power.get()
    );
    println!(
        "  per-chip dividend: {:.1} mV of extra undervolt for the average node",
        fleet.per_chip_dividend_mv()
    );
    println!(
        "\nthe weakest specimen taxes every node under the uniform policy — \
         the economic argument for the adaptive per-chip management schemes \
         the paper cites ([43], [49])."
    );
}
