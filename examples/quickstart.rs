//! Quickstart: put the simulated X-Gene 2 under a simulated neutron beam
//! for an hour at two voltage settings and compare what comes out.
//!
//! ```text
//! cargo run --release -p serscale-bench --example quickstart
//! ```

use serscale_beam::facility::{BeamFacility, BeamPosition};
use serscale_core::dut::DeviceUnderTest;
use serscale_core::fit::total_fit;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::SimDuration;

fn main() {
    // The beam: TRIUMF's TNF, with the DUT raised into the halo exactly as
    // the paper had to (the full beam kept crashing the board on boot).
    let tnf = BeamFacility::tnf();
    let flux = tnf.flux_at(BeamPosition::halo(BeamPosition::PAPER_HALO_TRANSMISSION));
    println!("beam: {} at {flux}", tnf.name());

    for point in [OperatingPoint::nominal(), OperatingPoint::vmin_2400()] {
        // The DUT needs to know the safe Vmin for its frequency — that is
        // what anchors the near-Vmin logic-susceptibility amplification.
        let vmin = DeviceUnderTest::paper_vmin(point.frequency);
        let dut = DeviceUnderTest::xgene2(point, vmin);

        // One simulated beam hour of NPB runs.
        let limits = SessionLimits::time_boxed(SimDuration::from_hours(1.0));
        let mut session = TestSession::new(dut, flux, limits);
        let mut rng = SimRng::seed_from(2023);
        let report = session.run(&mut rng);

        println!("\n=== {} ===", point.label());
        println!("  benchmark runs:     {}", report.runs);
        println!(
            "  memory upsets:      {} ({:.2}/min)",
            report.memory_upsets,
            report.upset_rate().per_minute()
        );
        println!("  error events:       {}", report.error_events());
        for (class, count) in &report.failures {
            println!("    {class:<9} {count}");
        }
        let fit = total_fit(&report);
        println!(
            "  total FIT at NYC:   {:.1}  (95% CI {:.1}–{:.1})",
            fit.point.get(),
            fit.lower.get(),
            fit.upper.get()
        );
        println!(
            "  NYC-equivalent:     {:.0} years of natural exposure",
            report.nyc_equivalent_years()
        );
    }
    println!(
        "\nLower voltage, same workload, same beam: more upsets — and the \
         failure mix shifts toward silent data corruptions."
    );
}
