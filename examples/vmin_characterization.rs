//! Vmin characterization: the offline sweep every undervolting deployment
//! starts with (§4.1 of the paper, Figure 4).
//!
//! Walks the supply down in 5 mV regulator steps at 2.4 GHz and 900 MHz,
//! running the benchmark suite repeatedly per step, and reports the pfail
//! curve, the safe Vmin, and the exposed guardband.
//!
//! ```text
//! cargo run --release -p serscale-bench --example vmin_characterization
//! ```

use serscale_stats::SimRng;
use serscale_types::{Megahertz, Millivolts};
use serscale_undervolt::{characterize::Characterizer, timing::TimingFailureModel};

fn main() {
    let harness = Characterizer::new(TimingFailureModel::xgene2(), 100);
    let nominal = Millivolts::new(980);

    for frequency in [Megahertz::new(2400), Megahertz::new(900)] {
        let mut rng = SimRng::seed_from(41).fork_indexed("sweep", u64::from(frequency.get()));
        let curve = harness.sweep(&mut rng, frequency);

        println!("=== characterization at {frequency} ===");
        println!("  voltage   pfail    (failures/trials)   95% CI");
        for point in &curve.points {
            // Print the interesting region: the last safe levels and the
            // failure ramp.
            if point.failures > 0 || point.voltage.get() <= curve.points[0].voltage.get() - 45 {
                let (lo, hi) = point.pfail_ci();
                println!(
                    "  {:>4} mV   {:>6.1}%  ({:>3}/{})          [{:.3}, {:.3}]",
                    point.voltage.get(),
                    100.0 * point.pfail(),
                    point.failures,
                    point.trials,
                    lo,
                    hi
                );
            }
        }
        match curve.safe_vmin() {
            Some(vmin) => {
                println!("  safe Vmin:  {vmin}");
                println!(
                    "  guardband:  {} mV of exploitable margin below the {nominal} nominal",
                    curve.guardband_mv(nominal).unwrap_or(0)
                );
            }
            None => println!("  no safe level found (sweep failed immediately)"),
        }
        if let Some(dead) = curve.full_failure_voltage() {
            println!("  100% fail:  {dead}");
        }
        println!();
    }

    println!(
        "Note the frequency dependence: at 900 MHz the longer cycle tolerates \
         a 130 mV deeper undervolt — and the paper's beam data then shows the \
         SER at that point is set by the voltage, not the frequency."
    );
}
