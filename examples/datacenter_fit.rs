//! Datacenter what-if: the paper's Design implication #2, quantified.
//!
//! A fleet operator considers undervolting 10,000 X-Gene-2-class servers at
//! NYC sea level. For each candidate operating point this example runs a
//! (scaled) beam campaign, extrapolates the per-node FIT, and prints the
//! fleet-level failure and energy ledger — showing why "10 mV above Vmin"
//! (930 mV) is the sweet spot the paper recommends, while Vmin itself buys
//! 2% more power for a ~6× total-failure-rate increase dominated by SDCs.
//!
//! ```text
//! cargo run --release -p serscale-bench --example datacenter_fit
//! ```

use serscale_core::classify::FailureClass;
use serscale_core::fit::{class_fit, total_fit};
use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;

const FLEET: f64 = 10_000.0;
const HOURS_PER_YEAR: f64 = 24.0 * 365.25;

fn main() {
    println!("simulating beam campaign (4 sessions, scaled)…");
    let report = serscale_bench::run_campaign(0.25, 7);
    let power_model = PowerModel::xgene2();
    let baseline_power = power_model.total_power(OperatingPoint::nominal());

    println!("\nfleet: {FLEET:.0} servers, NYC sea level, {HOURS_PER_YEAR:.0} h/year each\n");
    println!(
        "{:<18} {:>9} {:>13} {:>13} {:>13} {:>14}",
        "operating point", "node W", "fleet MWh/yr", "fail/yr", "SDC/yr", "energy saved"
    );

    for session in &report.sessions {
        let point = session.operating_point;
        let node_power = power_model.total_power(point);
        let fleet_mwh = node_power.get() * FLEET * HOURS_PER_YEAR / 1.0e6;

        // FIT = failures per 1e9 device-hours; fleet failures per year:
        let device_hours_per_year = FLEET * HOURS_PER_YEAR;
        let failures_per_year = total_fit(session).point.get() * device_hours_per_year / 1.0e9;
        let sdc_per_year =
            class_fit(session, FailureClass::Sdc).point.get() * device_hours_per_year / 1.0e9;
        let saved_mwh = (baseline_power.get() - node_power.get()) * FLEET * HOURS_PER_YEAR / 1.0e6;

        println!(
            "{:<18} {:>9.2} {:>13.0} {:>13.2} {:>13.2} {:>11.0} MWh",
            point.label(),
            node_power.get(),
            fleet_mwh,
            failures_per_year,
            sdc_per_year,
            saved_mwh,
        );
    }

    let nominal = report.baseline().expect("nominal session");
    let safe = report
        .session_at(OperatingPoint::safe())
        .expect("930 mV session");
    let vmin = report
        .session_at(OperatingPoint::vmin_2400())
        .expect("920 mV session");

    let safe_fail_ratio = total_fit(safe).point.get() / total_fit(nominal).point.get();
    let vmin_fail_ratio = total_fit(vmin).point.get() / total_fit(nominal).point.get();

    println!(
        "\nthe last 10 mV: 930 mV → 920 mV adds ~2% more power savings but \
         multiplies the failure rate {:.1}× → {:.1}× over nominal.",
        safe_fail_ratio, vmin_fail_ratio
    );
    println!(
        "design implication #2 (paper): operate slightly ABOVE the lowest \
         safe Vmin — the guardband is real, but its last step is priced in \
         silent data corruptions."
    );
}
