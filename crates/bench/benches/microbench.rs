//! Substrate microbenchmarks: the hot primitives under everything else —
//! SECDED encode/decode, array strike application, Poisson sampling, and
//! the benchmark kernels themselves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use serscale_ecc::secded::Codeword;
use serscale_ecc::ProtectionScheme;
use serscale_sram::{MbuModel, SramArray};
use serscale_stats::poisson::sample_poisson;
use serscale_stats::SimRng;
use serscale_types::{ArrayKind, Bytes, Millivolts};
use serscale_workload::Benchmark;

fn bench_secded(c: &mut Criterion) {
    let mut group = c.benchmark_group("secded");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(Codeword::encode(x))
        });
    });
    group.bench_function("decode_clean", |b| {
        let cw = Codeword::encode(0xDEAD_BEEF_CAFE_F00D);
        b.iter(|| black_box(cw.decode()));
    });
    group.bench_function("decode_corrupted", |b| {
        let mut cw = Codeword::encode(0xDEAD_BEEF_CAFE_F00D);
        cw.flip(37);
        b.iter(|| black_box(cw.decode()));
    });
    group.finish();
}

fn bench_strikes(c: &mut Criterion) {
    let mut group = c.benchmark_group("strike");
    group.throughput(Throughput::Elements(1));
    let l3 = SramArray::new(
        ArrayKind::L3Shared,
        Bytes::mib(8),
        ProtectionScheme::Secded,
        1,
    );
    let mbu = MbuModel::tech_28nm();
    group.bench_function("l3_strike_with_cluster_sampling", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let len = mbu.sample_cluster_len(&mut rng, Millivolts::new(920));
            black_box(l3.strike(&mut rng, len))
        });
    });
    group.bench_function("poisson_small_mean", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| black_box(sample_poisson(&mut rng, 0.05)));
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    for benchmark in Benchmark::ALL {
        let kernel = benchmark.kernel();
        group.bench_function(benchmark.name(), |b| b.iter(|| black_box(kernel.run())));
    }
    group.finish();
}

criterion_group!(benches, bench_secded, bench_strikes, bench_kernels);
criterion_main!(benches);
