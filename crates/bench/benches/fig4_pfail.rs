//! Figure 4: the undervolting pfail sweep.
//!
//! Running this bench prints the regenerated rows once (alongside the
//! paper's values) and then times the underlying computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let harness = serscale_undervolt::characterize::Characterizer::new(
        serscale_undervolt::timing::TimingFailureModel::xgene2(),
        5,
    );
    let mut seed = 0u64;
    println!(
        "{}",
        serscale_bench::experiments::figure4(serscale_bench::REPRO_SEED, 100)
    );
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("fig4_pfail", |b| {
        b.iter(|| {
            black_box({
                seed += 1;
                let mut rng = serscale_stats::SimRng::seed_from(seed);
                harness.sweep(&mut rng, serscale_types::Megahertz::new(2400))
            })
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
