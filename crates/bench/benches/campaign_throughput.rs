//! Throughput of the parallel campaign engine: the same scaled campaign
//! at increasing worker counts, annotated with trials/second.
//!
//! The acceptance target (≥3× at 8 workers vs 1) is only observable on a
//! machine with ≥8 hardware threads; on smaller hosts the interesting
//! number is that `jobs > 1` never *loses* to the sequential path by more
//! than the pool's channel overhead, while the reports stay bit-identical.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use serscale_bench::{
    run_campaign_jobs, run_campaign_observed, run_campaign_recovering, REPRO_SEED,
};
use serscale_core::session::RetryPolicy;
use serscale_telemetry::{TelemetryOptions, TelemetrySink};

/// Small enough for bench cadence, large enough that waves actually
/// shard (~700 trials across the four sessions).
const SCALE: f64 = 0.01;

fn campaign_throughput(c: &mut Criterion) {
    let reference = run_campaign_jobs(SCALE, REPRO_SEED, 1);
    let trials: u64 = reference.sessions.iter().map(|s| s.runs).sum();

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trials));
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    for jobs in [1usize, 2, 4, 8] {
        let id = format!(
            "jobs={jobs}{}",
            if jobs > cores {
                " (oversubscribed)"
            } else {
                ""
            }
        );
        group.bench_function(&id, |b| {
            b.iter(|| {
                let report = run_campaign_jobs(SCALE, REPRO_SEED, jobs);
                assert_eq!(report, reference, "determinism broken at jobs={jobs}");
                report
            })
        });
    }

    // The same campaign shadowed by a full in-memory telemetry sink
    // (sharded metrics, spans, JSONL events). Compare against the bare
    // `jobs=N` row above: the observe-only acceptance budget is ≤5%.
    for jobs in [1usize, 4] {
        group.bench_function(&format!("jobs={jobs}+telemetry"), |b| {
            b.iter(|| {
                let sink = TelemetrySink::in_memory(TelemetryOptions::default());
                let mut observer = sink.observer();
                let report = run_campaign_observed(SCALE, REPRO_SEED, jobs, &mut observer);
                assert_eq!(report, reference, "telemetry broke determinism");
                report
            })
        });
    }
    // The crash-safe execution stack, decomposed one layer at a time so
    // regressions are attributable:
    //
    // * `jobs=8+robust`        — retry/quarantine supervision, no journal.
    //   Compare against bare `jobs=8`: the supervision wrapper cost.
    // * `jobs=8+journal`       — the fsync-throttled run journal on
    //   RAM-backed scratch when the host offers it, so the row measures
    //   the engine's journaling overhead (record formatting, digests,
    //   write syscalls) rather than the device's sync latency. The
    //   acceptance budget is ≤5% over `jobs=8+robust` at 8 workers.
    // * `jobs=8+journal+disk`  — the same journal on the real tempdir
    //   filesystem: adds the hardware-dependent durability cost (two
    //   forced fdatasyncs per run plus directory metadata commits).
    //
    // Each journaled iteration uses a fresh directory, so every run pays
    // the full write path instead of replaying a finished journal.
    {
        use serscale_core::campaign::{Campaign, CampaignConfig, CampaignRunOptions};
        let mut config = CampaignConfig::paper_scaled(SCALE);
        config.seed = REPRO_SEED;
        let campaign = Campaign::new(config);
        group.bench_function("jobs=8+robust", |b| {
            b.iter(|| {
                let mut discard = serscale_core::trace::Logbook::new();
                let report =
                    campaign.run_recoverable(CampaignRunOptions::with_jobs(8), &mut discard);
                assert_eq!(report, reference, "robust path broke determinism");
                report
            })
        });
    }
    // The live monitoring plane, one layer at a time:
    //
    // * `jobs=8+listen`              — the HTTP server bound but idle.
    //   Compare against `jobs=8+telemetry`-style rows: binding the
    //   socket and parking five threads should cost ~nothing.
    // * `jobs=8+listen+scrape-storm` — a background client hammering
    //   `/metrics` and `/progress` at ~50 Hz for the whole iteration.
    //   The observe-only acceptance budget is ≤5% over the idle-server
    //   row: snapshots merge shards without blocking writers, so scrape
    //   pressure lands on spare cores, not the campaign's critical path.
    for (row, storm) in [
        ("jobs=8+listen", false),
        ("jobs=8+listen+scrape-storm", true),
    ] {
        group.bench_function(row, |b| {
            b.iter(|| {
                let sink = TelemetrySink::in_memory(TelemetryOptions::default());
                let mut server = sink.serve("127.0.0.1:0").expect("bind monitor");
                let addr = server.addr();
                let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let scraper = storm.then(|| {
                    let stop = std::sync::Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut scrapes = 0u64;
                        while !stop.load(std::sync::atomic::Ordering::Acquire) {
                            let path = if scrapes.is_multiple_of(2) {
                                "/metrics"
                            } else {
                                "/progress"
                            };
                            let (status, _) =
                                serscale_telemetry::serve::http_get(addr, path).expect("scrape");
                            assert_eq!(status, 200);
                            scrapes += 1;
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        scrapes
                    })
                });
                let mut observer = sink.observer();
                let report = run_campaign_observed(SCALE, REPRO_SEED, 8, &mut observer);
                drop(observer);
                stop.store(true, std::sync::atomic::Ordering::Release);
                if let Some(scraper) = scraper {
                    scraper.join().expect("scraper died");
                }
                server.shutdown();
                assert_eq!(report, reference, "monitoring broke determinism");
                report
            })
        });
    }
    let shm = std::path::Path::new("/dev/shm");
    let ram_scratch = if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    for (row, scratch) in [
        ("jobs=8+journal", ram_scratch),
        ("jobs=8+journal+disk", std::env::temp_dir()),
    ] {
        let mut serial = 0u64;
        group.bench_function(row, |b| {
            b.iter(|| {
                serial += 1;
                let dir = scratch.join(format!(
                    "serscale-bench-journal-{}-{serial}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let mut discard = serscale_core::trace::Logbook::new();
                let report = run_campaign_recovering(
                    SCALE,
                    REPRO_SEED,
                    8,
                    RetryPolicy::standard(),
                    &dir,
                    &mut discard,
                )
                .expect("journaled run");
                assert_eq!(report, reference, "journaling broke determinism");
                let _ = std::fs::remove_dir_all(&dir);
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
