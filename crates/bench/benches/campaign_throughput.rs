//! Throughput of the parallel campaign engine: the same scaled campaign
//! at increasing worker counts, annotated with trials/second.
//!
//! The acceptance target (≥3× at 8 workers vs 1) is only observable on a
//! machine with ≥8 hardware threads; on smaller hosts the interesting
//! number is that `jobs > 1` never *loses* to the sequential path by more
//! than the pool's channel overhead, while the reports stay bit-identical.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use serscale_bench::{run_campaign_jobs, run_campaign_observed, REPRO_SEED};
use serscale_telemetry::{TelemetryOptions, TelemetrySink};

/// Small enough for bench cadence, large enough that waves actually
/// shard (~700 trials across the four sessions).
const SCALE: f64 = 0.01;

fn campaign_throughput(c: &mut Criterion) {
    let reference = run_campaign_jobs(SCALE, REPRO_SEED, 1);
    let trials: u64 = reference.sessions.iter().map(|s| s.runs).sum();

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trials));
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    for jobs in [1usize, 2, 4, 8] {
        let id = format!(
            "jobs={jobs}{}",
            if jobs > cores {
                " (oversubscribed)"
            } else {
                ""
            }
        );
        group.bench_function(&id, |b| {
            b.iter(|| {
                let report = run_campaign_jobs(SCALE, REPRO_SEED, jobs);
                assert_eq!(report, reference, "determinism broken at jobs={jobs}");
                report
            })
        });
    }

    // The same campaign shadowed by a full in-memory telemetry sink
    // (sharded metrics, spans, JSONL events). Compare against the bare
    // `jobs=N` row above: the observe-only acceptance budget is ≤5%.
    for jobs in [1usize, 4] {
        group.bench_function(&format!("jobs={jobs}+telemetry"), |b| {
            b.iter(|| {
                let sink = TelemetrySink::in_memory(TelemetryOptions::default());
                let mut observer = sink.observer();
                let report = run_campaign_observed(SCALE, REPRO_SEED, jobs, &mut observer);
                assert_eq!(report, reference, "telemetry broke determinism");
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
