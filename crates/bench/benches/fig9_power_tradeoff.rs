//! Figure 9: power vs upset-rate trade-off.
//!
//! Running this bench prints the regenerated rows once (alongside the
//! paper's values) and then times the underlying computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = serscale_bench::run_campaign(0.02, serscale_bench::REPRO_SEED);
    println!("{}", serscale_bench::experiments::figure9(&report));
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("fig9_power_tradeoff", |b| {
        b.iter(|| black_box(serscale_bench::experiments::figure9(&report)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
