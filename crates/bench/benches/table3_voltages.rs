//! Table 3: safe-voltage table construction from characterized Vmins.
//!
//! Running this bench prints the regenerated rows once (alongside the
//! paper's values) and then times the underlying computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        serscale_bench::experiments::table3(&serscale_bench::run_campaign(
            0.02,
            serscale_bench::REPRO_SEED
        ))
    );
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("table3_voltages", |b| {
        b.iter(|| {
            black_box(
                serscale_undervolt::characterize::SafeVoltageTable::from_vmins(
                    serscale_types::Millivolts::new(920),
                    serscale_types::Millivolts::new(790),
                ),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
