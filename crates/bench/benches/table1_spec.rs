//! Table 1: the platform specification table.
//!
//! Running this bench prints the regenerated rows once (alongside the
//! paper's values) and then times the underlying computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", serscale_bench::experiments::table1());
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("table1_spec", |b| {
        b.iter(|| black_box(serscale_soc::PlatformSpec::xgene2().table1()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
