//! Table 2: a full (scaled) beam campaign.
//!
//! Running this bench prints the regenerated rows once (alongside the
//! paper's values) and then times the underlying computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        serscale_bench::experiments::table2(&serscale_bench::run_campaign(
            0.05,
            serscale_bench::REPRO_SEED
        ))
    );
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("table2_sessions", |b| {
        b.iter(|| black_box(serscale_bench::run_campaign(0.001, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
