//! Ablation benches: one bench per mechanism `DESIGN.md` calls out, each
//! printing the with/without comparison before timing the ablated
//! computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use serscale_core::ablation;
use serscale_types::Millivolts;

fn bench_ablations(c: &mut Criterion) {
    let (with, without) = ablation::no_margin_amplification();
    println!(
        "ablation: near-Vmin margin amplification\n  \
         σ_data ratio Vmin/nominal: {with:.1}x with the mechanism, {without:.2}x without\n  \
         → removing it erases the paper's Fig. 8/11 SDC cliff\n"
    );

    let (uninterleaved, interleaved) = ablation::interleaved_l3(7, 20_000, Millivolts::new(920));
    println!(
        "ablation: L3 bit interleaving\n  \
         UE share per strike: {uninterleaved:.3} un-interleaved (the real L3), \
         {interleaved:.4} with 4-way interleaving\n  \
         → interleaving the L3 erases its Fig. 6 uncorrectable errors\n"
    );

    let (with_k, without_k) = ablation::voltage_insensitive_sram();
    println!(
        "ablation: Qcrit ∝ V\n  \
         chip σ ratio Vmin/nominal: {with_k:.2}x with voltage scaling, {without_k:.2}x without\n  \
         → a voltage-flat SRAM model flattens Table 2's rising upset rates\n"
    );

    let changed = ablation::secded_everywhere(7, 20_000);
    println!(
        "ablation: SECDED on the L1 instead of parity\n  \
         single-bit-strike outcomes changed: {changed:.4}\n  \
         → nothing improves; parity + write-through already recovers every \
         SBU (Design implication #1)\n"
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    group.bench_function("interleaved_l3_20k_strikes", |b| {
        b.iter(|| black_box(ablation::interleaved_l3(7, 20_000, Millivolts::new(920))));
    });
    group.bench_function("margin_amplification", |b| {
        b.iter(|| black_box(ablation::no_margin_amplification()));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
