//! Guards for the data-driven platform layer.
//!
//! Two invariants live here because they span crates:
//!
//! 1. the committed `platforms/*.json` spec files are exactly the
//!    normalized wire rendering of the built-in specs (so the
//!    `--platform <file>` quickstart and the CI spec-vs-builtin diff can
//!    never drift from the code), and
//! 2. no production code outside `serscale-soc` hardwires the X-Gene 2
//!    platform type — everything reaches hardware facts through a
//!    [`PlatformSpec`](serscale_soc::PlatformSpec). `XGene2` stays legal
//!    inside `serscale-soc` (it *is* the built-in) and inside test
//!    modules, where it pins the spec path against the historical
//!    constructors.

use std::path::{Path, PathBuf};

use serscale_soc::PlatformSpec;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn committed_spec_files_match_the_builtins() {
    for name in PlatformSpec::BUILTIN_NAMES {
        let spec = PlatformSpec::builtin(name).expect("builtin");
        let path = workspace_root()
            .join("platforms")
            .join(format!("{name}.json"));
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} unreadable ({e}); regenerate with \
                 `cargo run -p serscale-telemetry --example dump_platforms -- platforms/`",
                path.display()
            )
        });
        assert_eq!(
            body,
            serscale_telemetry::platform_to_json(&spec) + "\n",
            "{} drifted from the built-in; regenerate with the dump_platforms example",
            path.display()
        );
        let parsed = serscale_telemetry::parse_platform(&body)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(parsed, spec, "{name} file must load back to the built-in");
    }
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Production code up to the first `#[cfg(test)]` marker — the repo
/// convention puts the test module last in every file.
fn production_prefix(source: &str) -> &str {
    source
        .find("#[cfg(test)]")
        .map_or(source, |at| &source[..at])
}

#[test]
fn no_stray_hardcoded_platform_outside_soc() {
    let crates = workspace_root().join("crates");
    let mut offenders = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates/ readable") {
        let krate = entry.expect("dir entry").path();
        if krate.file_name().is_some_and(|n| n == "soc") || !krate.join("src").is_dir() {
            continue;
        }
        let mut sources = Vec::new();
        rust_sources(&krate.join("src"), &mut sources);
        for path in sources {
            let source = std::fs::read_to_string(&path).expect("readable source");
            if production_prefix(&source).contains("XGene2") {
                offenders.push(path);
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "production code outside serscale-soc hardwires the X-Gene 2 platform \
         (go through PlatformSpec instead): {offenders:#?}"
    );
}
