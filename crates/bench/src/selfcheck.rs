//! The release self-check: every shape claim EXPERIMENTS.md makes,
//! asserted programmatically against a fresh campaign.
//!
//! `repro --selfcheck` is the "does my build reproduce the paper?" button:
//! it runs a campaign and evaluates each claim, printing PASS/FAIL with
//! the measured values. The integration suite covers the same ground with
//! fixed seeds; the self-check is for users on their own seeds/scales.

use serscale_core::campaign::CampaignReport;
use serscale_core::classify::FailureClass;
use serscale_core::fit::{class_fit, sdc_notification_split, total_fit};
use serscale_core::tradeoff::savings_vs_susceptibility;
use serscale_soc::edac::EdacSeverity;
use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;
use serscale_types::CacheLevel;

/// One evaluated claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What is being claimed.
    pub claim: &'static str,
    /// Whether the campaign satisfied it.
    pub passed: bool,
    /// The measured values behind the verdict.
    pub detail: String,
}

/// Evaluates the full claim list against a campaign report.
///
/// The thresholds are deliberately loose (they must hold at modest session
/// lengths across seeds); the EXPERIMENTS.md tables carry the precise
/// full-scale numbers.
pub fn run_checks(report: &CampaignReport) -> Vec<Check> {
    let mut checks = Vec::new();
    let nominal = report
        .baseline()
        .expect("campaign must include the nominal session");
    let safe = report.session_at(OperatingPoint::safe());
    let vmin = report.session_at(OperatingPoint::vmin_2400());
    let vmin900 = report.session_at(OperatingPoint::vmin_900());

    // --- Observation #1 / Table 2: upset rate rises toward Vmin.
    if let Some(vmin) = vmin {
        let r0 = nominal.upset_rate().per_minute();
        let r1 = vmin.upset_rate().per_minute();
        checks.push(Check {
            claim: "upset rate rises from nominal to Vmin (Obs. #1)",
            passed: r1 > r0,
            detail: format!("{r0:.3} -> {r1:.3} per minute"),
        });
    }

    // --- Observation #2: larger arrays upset more.
    let ce = |s: &serscale_core::session::SessionReport, level| {
        s.level_rate_per_minute(level, EdacSeverity::Corrected)
    };
    checks.push(Check {
        claim: "larger arrays upset more: L3 > L2 > L1 (Obs. #2)",
        passed: ce(nominal, CacheLevel::L3) > ce(nominal, CacheLevel::L2)
            && ce(nominal, CacheLevel::L2) > ce(nominal, CacheLevel::L1),
        detail: format!(
            "L3 {:.3}, L2 {:.3}, L1 {:.3} per minute",
            ce(nominal, CacheLevel::L3),
            ce(nominal, CacheLevel::L2),
            ce(nominal, CacheLevel::L1)
        ),
    });

    // --- Figure 6: uncorrectable errors only in the L3.
    let ue_outside_l3: u64 = nominal
        .edac_per_level
        .iter()
        .filter(|((level, sev), _)| *sev == EdacSeverity::Uncorrected && *level != CacheLevel::L3)
        .map(|(_, c)| *c)
        .sum();
    checks.push(Check {
        claim: "uncorrectable errors exclusive to the un-interleaved L3 (Fig. 6)",
        passed: ue_outside_l3 == 0,
        detail: format!("{ue_outside_l3} UEs outside the L3"),
    });

    // --- Observation #4 / Figure 8: the SDC share explodes at Vmin.
    if let Some(vmin) = vmin {
        let s0 = nominal.failure_shares()[&FailureClass::Sdc];
        let s1 = vmin.failure_shares()[&FailureClass::Sdc];
        checks.push(Check {
            claim: "SDC share explodes at Vmin (Obs. #4, Fig. 8)",
            passed: s1 > s0 && s1 > 0.6,
            detail: format!("{:.1}% -> {:.1}%", 100.0 * s0, 100.0 * s1),
        });
    }

    // --- Figure 11: total and SDC FIT ratios.
    if let Some(vmin) = vmin {
        let total_ratio = total_fit(vmin).point.get() / total_fit(nominal).point.get();
        checks.push(Check {
            claim: "total FIT grows several-fold at Vmin (Fig. 11, paper 6.6x)",
            passed: (2.5..20.0).contains(&total_ratio),
            detail: format!("{total_ratio:.1}x"),
        });
        let sdc0 = class_fit(nominal, FailureClass::Sdc).point.get();
        if sdc0 > 0.0 {
            let sdc_ratio = class_fit(vmin, FailureClass::Sdc).point.get() / sdc0;
            checks.push(Check {
                claim: "SDC FIT grows an order of magnitude at Vmin (paper 16x)",
                passed: (5.0..60.0).contains(&sdc_ratio),
                detail: format!("{sdc_ratio:.1}x"),
            });
        }
    }

    // --- Observation #6: frequency does not drive the SER.
    if let Some(v900) = vmin900 {
        let ratio = v900.upset_rate().per_minute() / nominal.upset_rate().per_minute();
        checks.push(Check {
            claim: "790 mV / 900 MHz upset rate is voltage-driven, modest (Obs. #6)",
            passed: (1.0..1.5).contains(&ratio),
            detail: format!("{ratio:.2}x over nominal"),
        });
    }

    // --- Figures 9/10: the power model and trade-off.
    let power_model = PowerModel::xgene2();
    let p = power_model.total_power(OperatingPoint::nominal()).get();
    checks.push(Check {
        claim: "nominal package power matches Fig. 9 (20.40 W)",
        passed: (p - 20.40).abs() < 0.05,
        detail: format!("{p:.2} W"),
    });
    if report.sessions.len() >= 2 {
        let rows = savings_vs_susceptibility(report, &power_model);
        let all_positive = rows.iter().all(|r| r.power_savings > 0.0);
        checks.push(Check {
            claim: "every scaled point saves power (Fig. 10)",
            passed: all_positive,
            detail: rows
                .iter()
                .map(|r| format!("{} {:.1}%", r.point.label(), 100.0 * r.power_savings))
                .collect::<Vec<_>>()
                .join(", "),
        });
    }

    // --- Figure 12: un-notified SDCs dominate notified ones.
    let mut notified_ok = true;
    let mut detail = Vec::new();
    for session in &report.sessions {
        let split = sdc_notification_split(session);
        let wo = split.without_notification.point.get();
        let w = split.with_notification.point.get();
        if w > wo {
            notified_ok = false;
        }
        detail.push(format!(
            "{}: {wo:.1}/{w:.1}",
            session.operating_point.label()
        ));
    }
    checks.push(Check {
        claim: "un-notified SDC FIT dominates notified (Fig. 12/13)",
        passed: notified_ok,
        detail: detail.join(", "),
    });

    // --- Table 2 row 10: SER in the published band.
    let mbit = serscale_soc::platform::Platform::from_spec(&serscale_soc::PlatformSpec::xgene2())
        .total_sram()
        .as_mbit();
    let mut ser_ok = true;
    let mut ser_detail = Vec::new();
    for session in &report.sessions {
        let ser = session.memory_ser_fit_per_mbit(mbit);
        if !(1.2..4.0).contains(&ser) {
            ser_ok = false;
        }
        ser_detail.push(format!("{ser:.2}"));
    }
    checks.push(Check {
        claim: "memory SER in the 2.0-2.5 FIT/Mbit band (Table 2, loose)",
        passed: ser_ok,
        detail: format!("{} FIT/Mbit", ser_detail.join(", ")),
    });

    let _ = safe;
    checks
}

/// Renders the checklist.
pub fn render(checks: &[Check]) -> String {
    let mut out = String::from("Self-check — EXPERIMENTS.md claims against this run\n");
    for c in checks {
        out.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.passed { "PASS" } else { "FAIL" },
            c.claim,
            c.detail
        ));
    }
    let failed = checks.iter().filter(|c| !c.passed).count();
    out.push_str(&format!(
        "  {} of {} claims hold\n",
        checks.len() - failed,
        checks.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign;

    #[test]
    fn selfcheck_passes_on_a_decent_campaign() {
        // Seed-robust: the loose claims must hold on every one of three
        // independent seeds — a claim that fails on any seed at this
        // session length indicates a mechanism regression, not noise
        // (the thresholds are sized for exactly this budget).
        let mut majority: std::collections::BTreeMap<&'static str, u32> =
            std::collections::BTreeMap::new();
        let seeds = [1234u64, 5678, 24680];
        for seed in seeds {
            // Equal 200-minute sessions: enough counts for every claim.
            let mut config = serscale_core::campaign::CampaignConfig::paper();
            config.seed = seed;
            for (_, limits) in &mut config.sessions {
                *limits = serscale_core::session::SessionLimits::time_boxed(
                    serscale_types::SimDuration::from_minutes(200.0),
                );
            }
            let report = serscale_core::campaign::Campaign::new(config).run();
            let checks = run_checks(&report);
            assert!(
                checks.len() >= 9,
                "expected a full checklist, got {}",
                checks.len()
            );
            for check in &checks {
                *majority.entry(check.claim).or_default() += u32::from(check.passed);
            }
            let text = render(&checks);
            assert!(text.contains("PASS"));
        }
        // Every claim passes on a majority of seeds; a systematic break
        // fails everywhere, a marginal seed cannot flake the suite.
        let quorum = (seeds.len() as u32).div_ceil(2);
        for (claim, passes) in &majority {
            assert!(
                *passes >= quorum,
                "claim {claim:?} held on only {passes}/{} seeds",
                seeds.len()
            );
        }
    }

    #[test]
    fn selfcheck_runs_even_on_tiny_campaigns() {
        // Short campaigns may fail noisy claims but must not panic.
        let report = run_campaign(0.003, 9);
        let checks = run_checks(&report);
        assert!(!checks.is_empty());
        let _ = render(&checks);
    }
}
