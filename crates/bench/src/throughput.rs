//! The `repro bench` harness: the `campaign_throughput` measurement as a
//! machine-readable artifact.
//!
//! The Criterion bench under `benches/campaign_throughput.rs` is the
//! interactive profiling tool; this module is its CI twin. It times the
//! same scaled campaign (`SCALE`, [`REPRO_SEED`]) at the same worker
//! counts, asserts the determinism contract on every iteration, and emits
//! `BENCH_campaign_throughput.json`: trials/second per row plus the
//! campaign config fingerprint and toolchain, so the `bench-gate` CI job
//! can diff a fresh run against the committed baseline and fail on a
//! >20 % regression (see TESTING.md for the re-baselining procedure).

use std::fmt::Write as _;
use std::time::Instant;

use serscale_core::campaign::CampaignConfig;
use serscale_core::journal::config_fingerprint;

use crate::{run_campaign_jobs, REPRO_SEED};

/// The bench campaign scale — identical to the Criterion bench: small
/// enough for CI cadence, large enough that waves actually shard.
pub const SCALE: f64 = 0.01;

/// The worker counts measured by default, mirroring the Criterion rows.
pub const DEFAULT_JOBS: [usize; 4] = [1, 2, 4, 8];

/// One measured row: a worker count and its sustained trial throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Row id, stable across harnesses (`jobs=N`).
    pub id: String,
    /// Worker threads.
    pub jobs: usize,
    /// Timed iterations (after one untimed warmup).
    pub iterations: u32,
    /// Completed trials per second, averaged over the timed iterations.
    pub trials_per_sec: f64,
}

/// The full bench artifact serialized to `BENCH_campaign_throughput.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Campaign scale measured.
    pub scale: f64,
    /// Campaign seed measured.
    pub seed: u64,
    /// Trials per campaign (the unit of the throughput rows).
    pub trials: u64,
    /// Fingerprint of the exact campaign configuration measured — a
    /// baseline from a different configuration must not gate this one.
    pub config_fingerprint: u64,
    /// `rustc --version` of the build, for artifact provenance.
    pub toolchain: String,
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// The measured rows.
    pub rows: Vec<BenchRow>,
}

/// Measures campaign throughput at each worker count in `jobs_rows`.
///
/// Each row runs one untimed warmup iteration, then timed iterations
/// until at least `min_secs` of wall clock and three iterations have
/// accumulated. Every iteration's report is asserted bit-identical to the
/// sequential reference, so the gate cannot be green on an engine that
/// got fast by getting the physics wrong.
///
/// # Panics
///
/// Panics if any iteration's report diverges from the `jobs = 1`
/// reference (a determinism regression).
pub fn measure(jobs_rows: &[usize], min_secs: f64) -> BenchReport {
    let mut config = CampaignConfig::paper_scaled(SCALE);
    config.seed = REPRO_SEED;
    let fingerprint = config_fingerprint(&config);

    let reference = run_campaign_jobs(SCALE, REPRO_SEED, 1);
    let trials: u64 = reference.sessions.iter().map(|s| s.runs).sum();

    let mut rows = Vec::new();
    for &jobs in jobs_rows {
        // Warmup: populate allocator arenas and page in the binary.
        let warm = run_campaign_jobs(SCALE, REPRO_SEED, jobs);
        assert_eq!(warm, reference, "determinism broken at jobs={jobs}");

        let mut iterations = 0u32;
        let started = Instant::now();
        loop {
            let report = run_campaign_jobs(SCALE, REPRO_SEED, jobs);
            assert_eq!(report, reference, "determinism broken at jobs={jobs}");
            iterations += 1;
            if iterations >= 3 && started.elapsed().as_secs_f64() >= min_secs {
                break;
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        rows.push(BenchRow {
            id: format!("jobs={jobs}"),
            jobs,
            iterations,
            trials_per_sec: trials as f64 * f64::from(iterations) / elapsed,
        });
    }

    BenchReport {
        scale: SCALE,
        seed: REPRO_SEED,
        trials,
        config_fingerprint: fingerprint,
        toolchain: rustc_version(),
        host_threads: std::thread::available_parallelism().map_or(1, usize::from),
        rows,
    }
}

impl BenchReport {
    /// Serializes the artifact as pretty-printed JSON. The fingerprint is
    /// a hex string (JSON numbers lose u64 precision past 2⁵³).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"campaign_throughput\",");
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(
            out,
            "  \"config_fingerprint\": \"{:016x}\",",
            self.config_fingerprint
        );
        let _ = writeln!(
            out,
            "  \"toolchain\": \"{}\",",
            self.toolchain.replace('"', "'")
        );
        let _ = writeln!(out, "  \"host_threads\": {},", self.host_threads);
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"id\": \"{}\", \"jobs\": {}, \"iterations\": {}, \
                 \"trials_per_sec\": {:.3}}}{comma}",
                row.id, row.jobs, row.iterations, row.trials_per_sec
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// A human-oriented one-line-per-row summary for stderr.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign_throughput: {} trials/campaign at scale {} (seed {}), {} host threads",
            self.trials, self.scale, self.seed, self.host_threads
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<8} {:>10.1} trials/sec  ({} iterations)",
                row.id, row.trials_per_sec, row.iterations
            );
        }
        out
    }
}

/// The toolchain string (`rustc --version`), or `"unknown"` when rustc is
/// not on the PATH (the artifact is still comparable; provenance is
/// best-effort).
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_and_stable() {
        let report = BenchReport {
            scale: 0.01,
            seed: 1,
            trials: 700,
            config_fingerprint: 0xdead_beef,
            toolchain: "rustc 1.0 \"quoted\"".into(),
            host_threads: 8,
            rows: vec![
                BenchRow {
                    id: "jobs=1".into(),
                    jobs: 1,
                    iterations: 3,
                    trials_per_sec: 1234.5678,
                },
                BenchRow {
                    id: "jobs=8".into(),
                    jobs: 8,
                    iterations: 4,
                    trials_per_sec: 9876.5,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"campaign_throughput\""));
        assert!(json.contains("\"config_fingerprint\": \"00000000deadbeef\""));
        assert!(json.contains("\"trials_per_sec\": 1234.568}"), "{json}");
        assert!(json.contains("\"trials_per_sec\": 9876.500}"), "{json}");
        // Embedded quotes must not break the JSON string.
        assert!(json.contains("rustc 1.0 'quoted'"));
        assert_eq!(json.matches("},").count(), 1, "rows must be comma-joined");
    }

    #[test]
    fn render_mentions_every_row() {
        let report = BenchReport {
            scale: 0.01,
            seed: 1,
            trials: 10,
            config_fingerprint: 0,
            toolchain: "x".into(),
            host_threads: 2,
            rows: vec![BenchRow {
                id: "jobs=2".into(),
                jobs: 2,
                iterations: 3,
                trials_per_sec: 10.0,
            }],
        };
        assert!(report.render().contains("jobs=2"));
    }
}
