//! One regeneration function per table and figure of the paper.
//!
//! Every function returns the formatted rows the paper reports, with the
//! paper's own numbers alongside for comparison. Absolute agreement is not
//! expected (the substrate is a calibrated simulator, not the authors'
//! beam line); the *shape* — orderings, ratios, crossovers — is the
//! reproduction target recorded in `EXPERIMENTS.md`.

use std::fmt::Write as _;

use serscale_core::campaign::CampaignReport;
use serscale_core::classify::FailureClass;
use serscale_core::fit::{fit_breakdown, sdc_notification_split};
use serscale_core::session::SessionReport;
use serscale_core::tradeoff::{power_vs_upsets, savings_vs_susceptibility};
use serscale_soc::edac::EdacSeverity;
use serscale_soc::platform::{OperatingPoint, Platform};
use serscale_soc::{PlatformSpec, PowerModel};
use serscale_stats::SimRng;
use serscale_types::{CacheLevel, Megahertz};
use serscale_undervolt::{characterize::Characterizer, timing::TimingFailureModel};
use serscale_workload::Benchmark;

use crate::paper;

/// The modelled chip's SRAM capacity in Mbit, for the Table 2 SER row.
fn sram_mbit() -> f64 {
    Platform::from_spec(&PlatformSpec::xgene2())
        .total_sram()
        .as_mbit()
}

fn session(report: &CampaignReport, point: OperatingPoint) -> &SessionReport {
    report
        .session_at(point)
        .unwrap_or_else(|| panic!("campaign lacks the {} session", point.label()))
}

/// Table 1: the platform specification.
pub fn table1() -> String {
    let mut out = String::from("Table 1 — X-Gene 2 class platform specification\n");
    for (k, v) in PlatformSpec::xgene2().table1() {
        let _ = writeln!(out, "  {k:<28} {v}");
    }
    out
}

/// Table 2: the four beam sessions.
pub fn table2(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Table 2 — Neutron beam sessions (simulated vs paper)\n\
         session  V(mV)  dur(min)      fluence(n/cm2)   NYC-years    events  ev/min          upsets  ups/min        FIT/Mbit\n",
    );
    let mbit = sram_mbit();
    for (i, ((point, _), row)) in serscale_core::campaign::CampaignConfig::paper()
        .sessions
        .iter()
        .zip(paper::TABLE2)
        .enumerate()
    {
        let s = session(report, *point);
        let (_, p_min, p_flu, p_years, p_ev, p_evr, p_up, p_upr, p_ser) = row;
        let _ = writeln!(
            out,
            "  {idx}     {v:>5}  {d:>7.0}  {f:>9.2e} ({pf:.2e})  {y:>8.2e}  {ev:>5} ({pev:>3})  {evr:.3} ({pevr:.3})  {up:>6} ({pup})  {upr:.3} ({pupr:.3})  {ser:.2} ({pser:.2})",
            idx = i + 1,
            v = point.pmd.get(),
            d = s.duration.as_minutes(),
            f = s.fluence.as_per_cm2(),
            pf = p_flu,
            y = s.nyc_equivalent_years(),
            ev = s.error_events(),
            pev = p_ev,
            evr = s.error_rate().per_minute(),
            pevr = p_evr,
            up = s.memory_upsets,
            pup = p_up,
            upr = s.upset_rate().per_minute(),
            pupr = p_upr,
            ser = s.memory_ser_fit_per_mbit(mbit),
            pser = p_ser,
        );
        let _ = p_min;
        let _ = p_years;
    }
    out
}

/// Table 3: the campaign voltage levels (from the report's Vmin anchors).
pub fn table3(report: &CampaignReport) -> String {
    let mut out = String::from("Table 3 — Voltage levels (simulated vs paper)\n");
    let rows = [
        ("Nominal", OperatingPoint::nominal()),
        ("Safe", OperatingPoint::safe()),
        ("Vmin", OperatingPoint::vmin_2400()),
        ("Vmin 900MHz", OperatingPoint::vmin_900()),
    ];
    for ((label, point), (p_label, p_f, p_pmd, p_soc)) in rows.iter().zip(paper::TABLE3) {
        let _ = writeln!(
            out,
            "  {label:<12} {f:>8}  PMD {pmd:>4} mV (paper {p_pmd})  SoC {soc:>4} mV (paper {p_soc})",
            f = point.frequency,
            pmd = point.pmd.get(),
            soc = point.soc.get(),
        );
        let _ = (p_label, p_f);
    }
    let _ = writeln!(
        out,
        "  characterized Vmins: {}",
        report
            .vmins
            .iter()
            .map(|(f, v)| format!("{f} → {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

/// Figure 4: pfail vs voltage at both frequencies.
pub fn figure4(seed: u64, trials_per_benchmark: u32) -> String {
    let mut out =
        String::from("Figure 4 — probability of failure vs voltage (Vmin characterization)\n");
    let harness = Characterizer::new(TimingFailureModel::xgene2(), trials_per_benchmark);
    for (freq_mhz, p_vmin, p_dead) in paper::FIGURE4 {
        let frequency = Megahertz::new(freq_mhz);
        let mut rng = SimRng::seed_from(seed).fork_indexed("fig4", u64::from(freq_mhz));
        let curve = harness.sweep(&mut rng, frequency);
        let _ = writeln!(out, "  {frequency}:");
        for point in &curve.points {
            if point.pfail() > 0.0 || point.voltage.get() >= p_vmin.saturating_sub(5) {
                let _ = writeln!(
                    out,
                    "    {v:>4} mV  pfail {p:>6}  ({fails}/{trials})",
                    v = point.voltage.get(),
                    p = crate::pct(point.pfail()),
                    fails = point.failures,
                    trials = point.trials,
                );
            }
        }
        let vmin = curve.safe_vmin().map(|v| v.get()).unwrap_or(0);
        let dead = curve.full_failure_voltage().map(|v| v.get()).unwrap_or(0);
        let _ = writeln!(
            out,
            "    safe Vmin {vmin} mV (paper {p_vmin}), 100% failure at {dead} mV (paper {p_dead})",
        );
    }
    out
}

/// Figure 5: upsets/minute per benchmark at the three 2.4 GHz voltages.
pub fn figure5(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 5 — cache upsets/minute per benchmark @ 2.4 GHz (simulated, paper in parens)\n\
         bench      980 mV          930 mV          920 mV\n",
    );
    let points = [
        OperatingPoint::nominal(),
        OperatingPoint::safe(),
        OperatingPoint::vmin_2400(),
    ];
    for (name, paper_rates) in paper::FIGURE5 {
        let mut cells = Vec::new();
        for (point, p) in points.iter().zip(paper_rates) {
            let s = session(report, *point);
            let rate = if name == "Total" {
                s.upset_rate().per_minute()
            } else {
                let b = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name() == name)
                    .expect("benchmark name");
                s.per_benchmark
                    .get(&b)
                    .map(|st| st.upsets_per_minute())
                    .unwrap_or(0.0)
            };
            cells.push(format!("{rate:.2} ({p:.2})"));
        }
        let _ = writeln!(out, "  {name:<8} {}", cells.join("     "));
    }
    out
}

/// The five rows Figures 6 and 7 report, in plotting order.
const PER_LEVEL_ROWS: [(&str, CacheLevel, EdacSeverity); 5] = [
    ("TLBs CE", CacheLevel::Tlb, EdacSeverity::Corrected),
    ("L1 CE", CacheLevel::L1, EdacSeverity::Corrected),
    ("L2 CE", CacheLevel::L2, EdacSeverity::Corrected),
    ("L3 CE", CacheLevel::L3, EdacSeverity::Corrected),
    ("L3 UE", CacheLevel::L3, EdacSeverity::Uncorrected),
];

/// Figure 6: per-cache-level upsets/minute at the three 2.4 GHz voltages.
pub fn figure6(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 6 — upsets/minute per cache level @ 2.4 GHz (simulated, paper in parens)\n\
         level      980 mV            930 mV            920 mV\n",
    );
    let points = [
        OperatingPoint::nominal(),
        OperatingPoint::safe(),
        OperatingPoint::vmin_2400(),
    ];
    for (i, (label, paper_rates)) in paper::FIGURE6.iter().enumerate() {
        let mut cells = Vec::new();
        for (point, p) in points.iter().zip(paper_rates) {
            let s = session(report, *point);
            let (_, level, severity) = PER_LEVEL_ROWS[i];
            let rate = s.level_rate_per_minute(level, severity);
            cells.push(format!("{rate:.3} ({p:.3})"));
        }
        let _ = writeln!(out, "  {label:<9} {}", cells.join("   "));
    }
    out
}

/// Figure 7: per-cache-level upsets/minute at 790 mV / 900 MHz.
pub fn figure7(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 7 — upsets/minute per cache level @ 790 mV / 900 MHz (simulated vs paper)\n",
    );
    let s = session(report, OperatingPoint::vmin_900());
    for (i, (label, p)) in paper::FIGURE7.iter().enumerate() {
        let (_, level, severity) = PER_LEVEL_ROWS[i];
        let rate = s.level_rate_per_minute(level, severity);
        let _ = writeln!(out, "  {label:<9} {rate:.3} (paper {p:.2})");
    }
    out
}

/// Figure 8: failure-class shares per voltage.
pub fn figure8(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 8 — failure-class shares @ 2.4 GHz (simulated, paper in parens)\n\
         V(mV)    AppCrash          SysCrash          SDC\n",
    );
    let points = [
        OperatingPoint::nominal(),
        OperatingPoint::safe(),
        OperatingPoint::vmin_2400(),
    ];
    for (point, (v, p_shares)) in points.iter().zip(paper::FIGURE8) {
        let s = session(report, *point);
        let shares = s.failure_shares();
        let classes = [
            FailureClass::AppCrash,
            FailureClass::SysCrash,
            FailureClass::Sdc,
        ];
        let cells: Vec<String> = classes
            .iter()
            .zip(p_shares)
            .map(|(c, p)| format!("{} ({})", crate::pct(shares[c]), crate::pct(p)))
            .collect();
        let _ = writeln!(out, "  {v:<6} {}", cells.join("    "));
    }
    out
}

/// Figure 9: power vs upset rate across the four operating points.
pub fn figure9(report: &CampaignReport) -> String {
    let mut out =
        String::from("Figure 9 — power vs cache upsets/minute (simulated, paper in parens)\n");
    let rows = power_vs_upsets(report, &PowerModel::xgene2());
    for (row, (v, f, p_power, p_rate)) in rows.iter().zip(paper::FIGURE9) {
        let _ = writeln!(
            out,
            "  {v:>4} mV @ {f:>4} MHz   {power:.2} W ({p_power:.2} W)   {rate:.3}/min ({p_rate:.2}/min)",
            power = row.power.get(),
            rate = row.upsets_per_minute,
        );
    }
    out
}

/// Figure 10: power savings vs susceptibility increase.
pub fn figure10(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 10 — power savings vs susceptibility increase (simulated, paper in parens)\n",
    );
    let rows = savings_vs_susceptibility(report, &PowerModel::xgene2());
    for (row, (v, f, p_save, p_susc)) in rows.iter().zip(paper::FIGURE10) {
        let _ = writeln!(
            out,
            "  {v:>4} mV @ {f:>4} MHz   savings {s} ({ps})   susceptibility +{u} (+{pu})",
            s = crate::pct(row.power_savings),
            ps = crate::pct(p_save),
            u = crate::pct(row.susceptibility_increase),
            pu = crate::pct(p_susc),
        );
    }
    out
}

/// Figure 11: FIT per failure class at the three 2.4 GHz voltages.
pub fn figure11(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 11 — FIT per class @ 2.4 GHz (simulated, paper in parens)\n\
         class      980 mV            930 mV            920 mV\n",
    );
    let points = [
        OperatingPoint::nominal(),
        OperatingPoint::safe(),
        OperatingPoint::vmin_2400(),
    ];
    let breakdowns: Vec<_> = points
        .iter()
        .map(|p| fit_breakdown(session(report, *p)))
        .collect();
    for (row_idx, (label, paper_fits)) in paper::FIGURE11.iter().enumerate() {
        let mut cells = Vec::new();
        for (b, p) in breakdowns.iter().zip(paper_fits) {
            let fit = match row_idx {
                0 => b.app_crash.point,
                1 => b.sys_crash.point,
                2 => b.sdc.point,
                _ => b.total.point,
            };
            cells.push(format!("{:>6.2} ({p:.2})", fit.get()));
        }
        let _ = writeln!(out, "  {label:<9} {}", cells.join("   "));
    }
    out
}

/// Figure 12: SDC FIT with/without hardware notification @ 2.4 GHz.
pub fn figure12(report: &CampaignReport) -> String {
    let mut out = String::from(
        "Figure 12 — SDC FIT by notification @ 2.4 GHz (simulated, paper in parens)\n\
         V(mV)    w/o notification     w/ corrected notification\n",
    );
    let points = [
        OperatingPoint::nominal(),
        OperatingPoint::safe(),
        OperatingPoint::vmin_2400(),
    ];
    for (point, (v, p_without, p_with)) in points.iter().zip(paper::FIGURE12) {
        let split = sdc_notification_split(session(report, *point));
        let _ = writeln!(
            out,
            "  {v:<6} {wo:>7.2} ({p_without:.2})       {w:>7.2} ({p_with:.2})",
            wo = split.without_notification.point.get(),
            w = split.with_notification.point.get(),
        );
    }
    out
}

/// Figure 13: the same split at 790 mV / 900 MHz.
pub fn figure13(report: &CampaignReport) -> String {
    let split = sdc_notification_split(session(report, OperatingPoint::vmin_900()));
    let (p_without, p_with) = paper::FIGURE13;
    format!(
        "Figure 13 — SDC FIT by notification @ 790 mV / 900 MHz (simulated vs paper)\n  \
         w/o notification {:.2} (paper {p_without:.2})   w/ notification {:.2} (paper {p_with:.2})\n",
        split.without_notification.point.get(),
        split.with_notification.point.get(),
    )
}

/// The paper's headline claims, recomputed.
pub fn headlines(report: &CampaignReport) -> String {
    let nominal = session(report, OperatingPoint::nominal());
    let vmin = session(report, OperatingPoint::vmin_2400());
    let total_ratio = serscale_core::fit::total_fit(vmin).point.get()
        / serscale_core::fit::total_fit(nominal).point.get();
    let sdc_ratio = serscale_core::fit::class_fit(vmin, FailureClass::Sdc)
        .point
        .get()
        / serscale_core::fit::class_fit(nominal, FailureClass::Sdc)
            .point
            .get()
            .max(1e-12);
    let avg_upset_increase =
        vmin.upset_rate().per_minute() / nominal.upset_rate().per_minute() - 1.0;
    let max_bench_increase = Benchmark::ALL
        .into_iter()
        .filter_map(|b| {
            let n = nominal.per_benchmark.get(&b)?.upsets_per_minute();
            let v = vmin.per_benchmark.get(&b)?.upsets_per_minute();
            Some(v / n - 1.0)
        })
        .fold(f64::NEG_INFINITY, f64::max);
    format!(
        "Headline claims (simulated vs paper)\n  \
         max per-benchmark upset-rate increase at Vmin: {} (paper {})\n  \
         chip upset-rate increase at Vmin:              {} (paper {})\n  \
         total FIT ratio Vmin/nominal:                  {:.1}x (paper {:.1}x)\n  \
         SDC FIT ratio Vmin/nominal:                    {:.1}x (paper {:.1}x)\n",
        crate::pct(max_bench_increase),
        crate::pct(paper::HEADLINES[0].1),
        crate::pct(avg_upset_increase),
        crate::pct(paper::HEADLINES[1].1),
        total_ratio,
        paper::HEADLINES[2].1,
        sdc_ratio,
        paper::HEADLINES[3].1,
    )
}

/// Beyond the paper: the fine-grained voltage sweep and operating-point
/// advisor (`repro --sweep`).
pub fn voltage_sweep() -> String {
    use serscale_core::dut::DeviceUnderTest;
    use serscale_core::explore::{recommend, sweep_voltage};
    use serscale_types::{Flux, Millivolts};

    let nominal = OperatingPoint::nominal();
    let template = DeviceUnderTest::xgene2(nominal, DeviceUnderTest::paper_vmin(nominal.frequency));
    let sweep = sweep_voltage(
        Millivolts::new(980),
        Millivolts::new(920),
        &template,
        &PowerModel::xgene2(),
        Flux::per_cm2_s(1.5e6),
    );
    let mut out = String::from(
        "Voltage sweep (beyond the paper) — 5 mV grid @ 2.4 GHz\n\
         PMD mV   power      upsets/min   predicted SDC FIT\n",
    );
    for p in &sweep {
        let _ = writeln!(
            out,
            "   {:>4}   {:>6.2} W   {:>7.3}      {:>8.2}",
            p.pmd.get(),
            p.power.get(),
            p.upsets_per_minute,
            p.sdc_fit.get()
        );
    }
    if let Some(pick) = recommend(&sweep, 3.0) {
        let _ = writeln!(
            out,
            "advisor (≤3x nominal SDC FIT): {} — Design implication #2's \"slightly above Vmin\"",
            pick.pmd
        );
    }
    out
}

/// Beyond the paper: mechanism ablations (`repro --ablations`).
pub fn ablations(seed: u64) -> String {
    use serscale_core::ablation;
    use serscale_types::Millivolts;

    let (amp_with, amp_without) = ablation::no_margin_amplification();
    let (ue_plain, ue_interleaved) = ablation::interleaved_l3(seed, 20_000, Millivolts::new(920));
    let (k_with, k_without) = ablation::voltage_insensitive_sram();
    let changed = ablation::secded_everywhere(seed, 20_000);
    format!(
        "Mechanism ablations (beyond the paper)\n  \
         near-Vmin margin amplification: sigma_data Vmin/nominal {amp_with:.1}x with, \
         {amp_without:.2}x without -> removing it erases the SDC cliff\n  \
         L3 interleaving: UE share/strike {ue_plain:.3} un-interleaved vs \
         {ue_interleaved:.4} 4-way -> interleaving erases the L3 UEs\n  \
         Qcrit(V): chip sigma Vmin/nominal {k_with:.2}x with, {k_without:.2}x without \
         -> a flat model erases Table 2's trend\n  \
         SECDED on L1 instead of parity: {changed:.4} of SBU outcomes change \
         -> Design implication #1, nothing to gain\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_campaign;

    fn quick() -> CampaignReport {
        run_campaign(0.02, 7)
    }

    #[test]
    fn table1_renders() {
        let t = table1();
        assert!(t.contains("SECDED"));
        assert!(t.contains("28 nm"));
    }

    #[test]
    fn all_report_experiments_render() {
        let report = quick();
        for text in [
            table2(&report),
            table3(&report),
            figure5(&report),
            figure6(&report),
            figure7(&report),
            figure8(&report),
            figure9(&report),
            figure10(&report),
            figure11(&report),
            figure12(&report),
            figure13(&report),
            headlines(&report),
        ] {
            assert!(text.lines().count() >= 2, "{text}");
            assert!(text.contains("paper"), "{text}");
        }
    }

    #[test]
    fn figure4_renders_and_finds_vmins() {
        let text = figure4(3, 40);
        assert!(text.contains("2.4 GHz"));
        assert!(text.contains("900 MHz"));
        assert!(text.contains("safe Vmin 920 mV"), "{text}");
        assert!(text.contains("safe Vmin 790 mV"), "{text}");
    }
}
