//! Reference values transcribed from the paper, used for side-by-side
//! comparison in every regenerated table and figure.

/// One Table 2 row:
/// `(pmd_mv, duration_min, fluence, nyc_years, error_events,
///   error_rate_per_min, memory_upsets, upset_rate_per_min, ser_fit_mbit)`.
pub type Table2Row = (u32, f64, f64, f64, u64, f64, u64, f64, f64);

/// Table 2: the four beam test sessions.
pub const TABLE2: [Table2Row; 4] = [
    (980, 1651.0, 1.49e11, 1.30e6, 95, 5.75e-2, 1669, 1.011, 2.08),
    (930, 1618.0, 1.46e11, 1.28e6, 97, 5.99e-2, 1743, 1.077, 2.22),
    (920, 453.0, 4.08e10, 3.58e5, 141, 3.11e-1, 506, 1.117, 2.30),
    (790, 165.0, 1.48e10, 1.30e5, 13, 7.87e-2, 195, 1.182, 2.45),
];

/// Table 3: voltage levels `(label, freq_mhz, pmd_mv, soc_mv)`.
pub const TABLE3: [(&str, u32, u32, u32); 4] = [
    ("Nominal", 2400, 980, 950),
    ("Safe", 2400, 930, 925),
    ("Vmin", 2400, 920, 920),
    ("Vmin", 900, 790, 950),
];

/// Figure 4 anchors: `(freq_mhz, safe_vmin_mv, full_failure_mv)`.
pub const FIGURE4: [(u32, u32, u32); 2] = [(2400, 920, 900), (900, 790, 780)];

/// Figure 5: upsets/minute per benchmark at (980, 930, 920) mV, 2.4 GHz.
pub const FIGURE5: [(&str, [f64; 3]); 7] = [
    ("CG", [0.87, 0.84, 0.58]),
    ("LU", [1.15, 1.09, 1.03]),
    ("FT", [1.11, 1.21, 1.37]),
    ("EP", [1.03, 1.22, 1.17]),
    ("MG", [0.94, 1.02, 1.32]),
    ("IS", [1.03, 1.11, 1.28]),
    ("Total", [1.01, 1.08, 1.12]),
];

/// Figure 6: corrected upsets/minute per cache level at
/// (980, 930, 920) mV, 2.4 GHz, plus the L3 uncorrected column.
/// Rows: TLBs, L1, L2, L3 corrected, L3 uncorrected.
pub const FIGURE6: [(&str, [f64; 3]); 5] = [
    ("TLBs CE", [0.016, 0.011, 0.009]),
    ("L1 CE", [0.028, 0.037, 0.026]),
    ("L2 CE", [0.157, 0.178, 0.194]),
    ("L3 CE", [0.765, 0.809, 0.841]),
    ("L3 UE", [0.038, 0.041, 0.035]),
];

/// Figure 7: upsets/minute per level at 790 mV / 900 MHz.
pub const FIGURE7: [(&str, f64); 5] = [
    ("TLBs CE", 0.03),
    ("L1 CE", 0.07),
    ("L2 CE", 0.29),
    ("L3 CE", 0.83),
    ("L3 UE", 0.04),
];

/// Figure 8: failure-class shares (AppCrash, SysCrash, SDC) per voltage.
pub const FIGURE8: [(u32, [f64; 3]); 3] = [
    (980, [0.179, 0.516, 0.305]),
    (930, [0.072, 0.371, 0.557]),
    (920, [0.021, 0.057, 0.922]),
];

/// Figure 9: `(pmd_mv, freq_mhz, power_w, upsets_per_min)`.
pub const FIGURE9: [(u32, u32, f64, f64); 4] = [
    (980, 2400, 20.40, 1.01),
    (930, 2400, 18.63, 1.08),
    (920, 2400, 18.15, 1.12),
    (790, 900, 10.59, 1.18),
];

/// Figure 10: `(pmd_mv, freq_mhz, power_savings, susceptibility_increase)`.
pub const FIGURE10: [(u32, u32, f64, f64); 3] = [
    (930, 2400, 0.087, 0.069),
    (920, 2400, 0.110, 0.109),
    (790, 900, 0.481, 0.168),
];

/// Figure 11: FIT per class at (980, 930, 920) mV, 2.4 GHz.
/// Rows: AppCrash, SysCrash, SDC, Total.
pub const FIGURE11: [(&str, [f64; 3]); 4] = [
    ("AppCrash", [1.49, 0.62, 0.96]),
    ("SysCrash", [4.29, 3.21, 2.55]),
    ("SDC", [2.54, 4.82, 41.43]),
    ("Total", [8.31, 8.66, 54.83]),
];

/// Figure 12: SDC FIT (without, with) hardware notification at
/// (980, 930, 920) mV, 2.4 GHz.
pub const FIGURE12: [(u32, f64, f64); 3] =
    [(980, 1.84, 0.70), (930, 3.84, 0.98), (920, 39.2, 2.23)];

/// Figure 13: SDC FIT (without, with) notification at 790 mV / 900 MHz.
pub const FIGURE13: (f64, f64) = (4.39, 0.88);

/// Headline claims: `(description, value)`.
pub const HEADLINES: [(&str, f64); 4] = [
    ("max SRAM upset-rate increase at Vmin (MG benchmark)", 0.404),
    ("average SRAM upset-rate increase at safe Vmin", 0.109),
    ("total FIT ratio Vmin/nominal", 6.6),
    ("SDC FIT ratio Vmin/nominal", 16.3),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_internal_consistency() {
        // Rates are count/duration.
        for (_, mins, _, _, events, rate, upsets, upset_rate, _) in TABLE2 {
            assert!((events as f64 / mins - rate).abs() / rate < 0.01);
            assert!((upsets as f64 / mins - upset_rate).abs() / upset_rate < 0.01);
        }
    }

    #[test]
    fn figure8_shares_sum_to_one() {
        for (_, shares) in FIGURE8 {
            let s: f64 = shares.iter().sum();
            assert!((s - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn figure11_total_is_class_sum() {
        for i in 0..2 {
            let sum = FIGURE11[0].1[i] + FIGURE11[1].1[i] + FIGURE11[2].1[i];
            assert!((sum - FIGURE11[3].1[i]).abs() < 0.05, "column {i}");
        }
        // The paper's 920 mV column is internally inconsistent: the class
        // FITs sum to 44.94 while the reported total is 54.83 (which *is*
        // 6.6 × the 8.31 nominal total, the ratio quoted in the abstract).
        // We transcribe both numbers as printed.
        let sum_920 = FIGURE11[0].1[2] + FIGURE11[1].1[2] + FIGURE11[2].1[2];
        assert!((sum_920 - 44.94).abs() < 0.05);
        assert!((FIGURE11[3].1[2] - 54.83).abs() < 0.05);
    }

    #[test]
    fn headline_sdc_ratio_matches_figure11() {
        let ratio = FIGURE11[2].1[2] / FIGURE11[2].1[0];
        assert!((ratio - 16.3).abs() < 0.05);
    }
}
