//! `repro` — regenerate the paper's tables and figures from the simulator.
//!
//! ```text
//! repro --all                 # everything, full-scale campaign
//! repro --platform zynq-mpsoc --golden   # second built-in platform
//! repro --platform spec.json --headlines # platform from a JSON spec file
//! repro --table 2             # one table
//! repro --figure 11           # one figure
//! repro --scale 0.1 --all     # 10% beam time (fast preview)
//! repro --seed 123 --figure 8
//! repro --ablations           # mechanism ablations (beyond the paper)
//! repro --sweep               # fine-grained voltage sweep + advisor
//! repro --jobs 8 --all        # same bits, eight worker threads
//! repro --golden              # bit-stable summary for the CI golden diff
//! repro --all --journal DIR   # crash-safe: fsync'd run journal in DIR
//! repro --all --resume DIR    # replay DIR's journal, continue, same bits
//! repro --trial-timeout 30 …  # retry/quarantine trials hung past 30 s
//! repro --all --listen 127.0.0.1:8080   # live /metrics /healthz /progress …
//! repro verify --budget small # statistical verification suite → verdict JSON
//! repro bench --out BENCH_campaign_throughput.json   # throughput artifact
//! repro serve --listen 127.0.0.1:8080   # campaign-as-a-service control plane
//! repro inspect DIR           # offline forensics on a finished run
//! repro inspect --folded DIR  # collapsed stacks for flamegraph tooling
//! repro inspect --diff A B    # headline deltas between two runs
//! repro inspect --convergence DIR  # replay the journal's CI estimators
//! ```

use std::io::IsTerminal as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serscale_bench::{
    experiments, run_platform_campaign_jobs, run_platform_campaign_observed,
    run_platform_campaign_recovering_monitored, GOLDEN_SCALE, REPRO_SEED,
};
use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport, CampaignRunOptions};
use serscale_core::journal::SyncProbe;
use serscale_core::session::RetryPolicy;
use serscale_core::trace::{tee, Logbook, SessionObserver};
use serscale_soc::PlatformSpec;
use serscale_telemetry::{
    ControlPlane, ControlPlaneOptions, ProgressMode, TelemetryOptions, TelemetrySink,
};
use serscale_verify::{OracleContext, TrialBudget};

/// Simulated seconds of a platform's full-scale campaign (64.8 beam hours
/// on the paper's X-Gene 2), for the progress reporter's ETA.
fn full_campaign_sim_secs(platform: &PlatformSpec) -> f64 {
    platform.campaign.iter().map(|c| c.minutes * 60.0).sum()
}

struct Args {
    scale: f64,
    seed: u64,
    jobs: usize,
    platform: Option<String>,
    tables: Vec<u32>,
    figures: Vec<u32>,
    headlines: bool,
    ablations: bool,
    sweep: bool,
    selfcheck: bool,
    golden: bool,
    telemetry_out: Option<String>,
    journal: Option<String>,
    resume: Option<String>,
    trial_timeout: Option<f64>,
    listen: Option<String>,
    linger: f64,
    no_progress: bool,
    summary_out: Option<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 1.0,
        seed: REPRO_SEED,
        jobs: default_jobs(),
        platform: None,
        tables: Vec::new(),
        figures: Vec::new(),
        headlines: false,
        ablations: false,
        sweep: false,
        selfcheck: false,
        golden: false,
        telemetry_out: None,
        journal: None,
        resume: None,
        trial_timeout: None,
        listen: None,
        linger: 0.0,
        no_progress: false,
        summary_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                args.tables = vec![1, 2, 3];
                args.figures = (4..=13).collect();
                args.headlines = true;
                args.ablations = true;
                args.sweep = true;
                args.selfcheck = true;
            }
            "--table" => {
                let n = it.next().ok_or("--table needs a number")?;
                args.tables
                    .push(n.parse().map_err(|_| format!("bad table number {n}"))?);
            }
            "--figure" => {
                let n = it.next().ok_or("--figure needs a number")?;
                args.figures
                    .push(n.parse().map_err(|_| format!("bad figure number {n}"))?);
            }
            "--headlines" => args.headlines = true,
            "--ablations" => args.ablations = true,
            "--sweep" => args.sweep = true,
            "--selfcheck" => args.selfcheck = true,
            "--scale" => {
                let s = it.next().ok_or("--scale needs a value")?;
                args.scale = s.parse().map_err(|_| format!("bad scale {s}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed {s}"))?;
            }
            "--jobs" => {
                let s = it.next().ok_or("--jobs needs a value")?;
                args.jobs = s.parse().map_err(|_| format!("bad jobs count {s}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--platform" => {
                args.platform = Some(it.next().ok_or("--platform needs a name or a file")?);
            }
            "--golden" => args.golden = true,
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().ok_or("--telemetry-out needs a directory")?);
            }
            "--journal" => {
                args.journal = Some(it.next().ok_or("--journal needs a directory")?);
            }
            "--resume" => {
                args.resume = Some(it.next().ok_or("--resume needs a directory")?);
            }
            "--trial-timeout" => {
                let s = it.next().ok_or("--trial-timeout needs seconds")?;
                let secs: f64 = s.parse().map_err(|_| format!("bad trial timeout {s}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--trial-timeout must be positive".into());
                }
                args.trial_timeout = Some(secs);
            }
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address (host:port)")?);
            }
            "--linger" => {
                let s = it.next().ok_or("--linger needs seconds")?;
                let secs: f64 = s.parse().map_err(|_| format!("bad linger time {s}"))?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err("--linger must be nonnegative".into());
                }
                args.linger = secs;
            }
            "--no-progress" => args.no_progress = true,
            "--summary-out" => {
                args.summary_out = Some(it.next().ok_or("--summary-out needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--all] [--table N]* [--figure N]* [--headlines] \
                     [--ablations] [--sweep] [--selfcheck] [--golden] [--scale F] \
                     [--seed N] [--jobs N] [--platform NAME|FILE] [--telemetry-out DIR] \
                     [--journal DIR | --resume DIR] [--trial-timeout SECS] \
                     [--listen HOST:PORT] [--linger SECS] [--no-progress] \
                     [--summary-out PATH]\n       \
                     repro verify [--budget small|medium|large] \
                     [--seed N] [--out verdict.json] [--telemetry-out DIR]\n       \
                     repro bench [--out bench.json] [--min-secs SECS] [--rows 1,2,4,8]\n       \
                     repro serve [--listen HOST:PORT] [--max-concurrent N] \
                     [--jobs N] [--state DIR] [--for-secs SECS]\n       \
                     repro inspect [--folded | --diff | --convergence] [--out PATH] \
                     DIR [DIR_B]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.tables.is_empty()
        && args.figures.is_empty()
        && !args.headlines
        && !args.ablations
        && !args.sweep
        && !args.selfcheck
        && !args.golden
        && args.summary_out.is_none()
    {
        return Err("nothing to do; try --all (or --help)".into());
    }
    if args.journal.is_some() && args.resume.is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (--resume already journals)".into(),
        );
    }
    if args.linger > 0.0 && args.listen.is_none() {
        return Err("--linger only makes sense with --listen".into());
    }
    Ok(args)
}

/// Observer for runs that need the crash-safe execution path but have no
/// trace or telemetry consumer attached.
struct Discard;
impl SessionObserver for Discard {}

/// Resolves `--platform`: a built-in name first (`xgene2`, `zynq-mpsoc`),
/// then a JSON platform-spec file. Schema violations surface the spec
/// layer's structured field errors verbatim.
fn resolve_platform(arg: &str) -> Result<PlatformSpec, String> {
    if let Some(spec) = PlatformSpec::builtin(arg) {
        return Ok(spec);
    }
    let path = Path::new(arg);
    if path.is_file() {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read platform file {arg}: {e}"))?;
        return serscale_telemetry::parse_platform(&body)
            .map_err(|e| format!("platform file {arg}: {e}"));
    }
    Err(format!(
        "unknown platform {arg}: not a built-in ({}) and not a spec file",
        PlatformSpec::BUILTIN_NAMES.join(", ")
    ))
}

/// Runs the analysis campaign through the crash-safe engine path: with a
/// journal directory the run is journaled (and resumed, if the directory
/// already holds a matching journal); without one, only the
/// retry/quarantine policy differs from the plain path — and with nothing
/// failing, not even that changes a byte of the report.
///
/// Returns the report plus how many trials the journal replayed instead
/// of re-simulating (always 0 without a journal). The optional `probe`
/// lets the monitoring plane watch journal fsync lag; both hooks are
/// observe-only.
#[allow(clippy::too_many_arguments)]
fn run_campaign_robust(
    spec: &PlatformSpec,
    scale: f64,
    seed: u64,
    jobs: usize,
    retry: RetryPolicy,
    journal_dir: Option<&Path>,
    probe: Option<SyncProbe>,
    observer: &mut dyn SessionObserver,
) -> Result<(CampaignReport, u64), String> {
    match journal_dir {
        Some(dir) => run_platform_campaign_recovering_monitored(
            spec, scale, seed, jobs, retry, dir, probe, observer,
        )
        .map_err(|e| format!("run journal at {}: {e}", dir.display())),
        None => {
            let mut config = CampaignConfig::for_platform_scaled(spec, scale);
            config.seed = seed;
            let report = Campaign::new(config).run_recoverable(
                CampaignRunOptions {
                    jobs,
                    retry,
                    journal: None,
                    recovered: None,
                    cancel: None,
                },
                observer,
            );
            Ok((report, 0))
        }
    }
}

struct BenchArgs {
    out: Option<String>,
    min_secs: f64,
    jobs_rows: Vec<usize>,
}

fn parse_bench_args(mut it: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        out: None,
        min_secs: 2.0,
        jobs_rows: serscale_bench::throughput::DEFAULT_JOBS.to_vec(),
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--min-secs" => {
                let s = it.next().ok_or("--min-secs needs seconds")?;
                args.min_secs = s.parse().map_err(|_| format!("bad min-secs {s}"))?;
                if !(args.min_secs > 0.0 && args.min_secs.is_finite()) {
                    return Err("--min-secs must be positive".into());
                }
            }
            "--rows" => {
                let s = it
                    .next()
                    .ok_or("--rows needs a comma-separated jobs list")?;
                args.jobs_rows = s
                    .split(',')
                    .map(|n| n.parse::<usize>().map_err(|_| format!("bad jobs row {n}")))
                    .collect::<Result<_, _>>()?;
                if args.jobs_rows.is_empty() || args.jobs_rows.contains(&0) {
                    return Err("--rows must list positive worker counts".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro bench [--out BENCH_campaign_throughput.json] \
                     [--min-secs SECS] [--rows 1,2,4,8]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown bench argument {other}")),
        }
    }
    Ok(args)
}

/// Runs the throughput bench: human summary on stderr, bench JSON on
/// stdout (or into `--out`). The measurement asserts determinism on every
/// iteration, so a nonzero exit here is an engine regression, not a perf
/// number.
fn run_bench(args: &BenchArgs) -> ExitCode {
    eprintln!(
        "measuring campaign throughput (rows {:?}, ≥{:.1}s per row)…",
        args.jobs_rows, args.min_secs
    );
    let report = serscale_bench::throughput::measure(&args.jobs_rows, args.min_secs);
    eprint!("{}", report.render());
    let json = report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("repro bench: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench artifact written to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

struct ServeArgs {
    listen: String,
    max_concurrent: usize,
    default_jobs: usize,
    state: Option<String>,
    for_secs: Option<f64>,
}

fn parse_serve_args(mut it: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        listen: "127.0.0.1:0".to_string(),
        max_concurrent: 2,
        default_jobs: 1,
        state: None,
        for_secs: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                args.listen = it.next().ok_or("--listen needs an address (host:port)")?;
            }
            "--max-concurrent" => {
                let s = it.next().ok_or("--max-concurrent needs a count")?;
                args.max_concurrent = s.parse().map_err(|_| format!("bad max-concurrent {s}"))?;
                if args.max_concurrent == 0 {
                    return Err("--max-concurrent must be at least 1".into());
                }
            }
            "--jobs" => {
                let s = it.next().ok_or("--jobs needs a value")?;
                args.default_jobs = s.parse().map_err(|_| format!("bad jobs count {s}"))?;
                if args.default_jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--state" => {
                args.state = Some(it.next().ok_or("--state needs a directory")?);
            }
            "--for-secs" => {
                let s = it.next().ok_or("--for-secs needs seconds")?;
                let secs: f64 = s.parse().map_err(|_| format!("bad for-secs {s}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--for-secs must be positive".into());
                }
                args.for_secs = Some(secs);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro serve [--listen HOST:PORT] [--max-concurrent N] \
                     [--jobs N] [--state DIR] [--for-secs SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve argument {other}")),
        }
    }
    Ok(args)
}

/// Runs the campaign service: the monitoring plane plus the read-write
/// `/campaigns` routes, until `POST /shutdown` arrives (or `--for-secs`
/// elapses — a safety net for CI). The shutdown drains: in-flight
/// campaigns finish, queued jobs stay queued with resumable journals.
/// There is no signal handler — the workspace forbids `unsafe`, and an
/// abrupt kill is already covered by the journals' torn-tail recovery.
fn run_serve(args: &ServeArgs) -> ExitCode {
    if let Some(dir) = &args.state {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro serve: cannot create state dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let sink = std::sync::Arc::new(TelemetrySink::in_memory(TelemetryOptions::default()));
    let control = ControlPlane::start(ControlPlaneOptions {
        max_concurrent: args.max_concurrent,
        default_jobs: args.default_jobs,
        state_dir: args.state.as_ref().map(PathBuf::from),
        start_paused: false,
    });
    let mut server = match sink.serve_control(&args.listen, std::sync::Arc::clone(&control)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("repro serve: cannot listen on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // The address goes to stderr, like the monitoring plane's: CI scrapes
    // it from the log, and stdout stays hermetic.
    eprintln!("campaign service on http://{}", server.addr());
    let requested = control.wait_shutdown(args.for_secs.map(std::time::Duration::from_secs_f64));
    if !requested {
        eprintln!("repro serve: --for-secs window elapsed; draining in-flight campaigns");
    }
    control.drain();
    server.shutdown();
    // With every handler thread joined, the access log and the service
    // metrics are final and mutually consistent; persisting both lets CI
    // reconcile the per-request log against the counter totals offline.
    if let Some(dir) = &args.state {
        if let Some(log) = server.access_log_jsonl() {
            let path = Path::new(dir).join("access.jsonl");
            if let Err(e) = std::fs::write(&path, log) {
                eprintln!("repro serve: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        let path = Path::new(dir).join("service.prom");
        let prom = server.metrics_snapshot().render_prometheus();
        if let Err(e) = std::fs::write(&path, prom) {
            eprintln!("repro serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("campaign service stopped");
    ExitCode::SUCCESS
}

struct InspectArgs {
    dirs: Vec<String>,
    folded: bool,
    diff: bool,
    convergence: bool,
    out: Option<String>,
}

fn parse_inspect_args(it: impl Iterator<Item = String>) -> Result<InspectArgs, String> {
    let mut args = InspectArgs {
        dirs: Vec::new(),
        folded: false,
        diff: false,
        convergence: false,
        out: None,
    };
    let mut it = it;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--folded" => args.folded = true,
            "--diff" => args.diff = true,
            "--convergence" => args.convergence = true,
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro inspect [--folded] [--out PATH] DIR\n       \
                     repro inspect --diff [--out PATH] DIR_A DIR_B\n       \
                     repro inspect --convergence [--out PATH] DIR\n\n\
                     DIR is a --telemetry-out export, a --journal directory, a \
                     `repro serve` job directory, or a serve --state directory \
                     (every job-N inside it is inspected).\n\n\
                     --convergence replays DIR's journal.jsonl through the live \
                     estimator arithmetic and prints the statistical convergence \
                     snapshot (per-point rates, Garwood CIs, precision flags) — \
                     byte-identical to the run's final /convergence document."
                );
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown inspect argument {other}"));
            }
            dir => args.dirs.push(dir.to_string()),
        }
    }
    if args.convergence && (args.folded || args.diff) {
        return Err("--convergence cannot combine with --folded or --diff".to_string());
    }
    match (args.diff, args.dirs.len()) {
        (true, 2) | (false, 1) => Ok(args),
        (true, n) => Err(format!("--diff needs exactly two directories, got {n}")),
        (false, n) => Err(format!("inspect needs exactly one directory, got {n}")),
    }
}

/// Expands an inspect target: the directory itself when it holds run
/// artifacts, otherwise its `job-*` children that do (a `repro serve`
/// state directory).
fn inspect_targets(dir: &Path) -> Result<Vec<PathBuf>, String> {
    if serscale_telemetry::inspect::has_artifacts(dir) {
        return Ok(vec![dir.to_path_buf()]);
    }
    let mut jobs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("job-"))
                && serscale_telemetry::inspect::has_artifacts(path)
        })
        .collect();
    jobs.sort();
    if jobs.is_empty() {
        return Err(format!(
            "{}: no run artifacts and no job-* directories with any",
            dir.display()
        ));
    }
    Ok(jobs)
}

/// Runs offline forensics: the report (or collapsed stacks, or a diff of
/// two runs) goes to stdout or `--out`.
fn run_inspect(args: &InspectArgs) -> ExitCode {
    let render = || -> Result<String, String> {
        if args.convergence {
            // Replay each journal through the live estimator arithmetic;
            // the rendering is byte-identical to the run's final
            // /convergence document, so `cmp` closes the loop.
            let dir = Path::new(&args.dirs[0]);
            let targets = if dir.join("journal.jsonl").is_file() {
                vec![dir.to_path_buf()]
            } else {
                inspect_targets(dir)?
            };
            let mut out = String::new();
            for target in targets {
                let tracker =
                    serscale_telemetry::convergence::ConvergenceTracker::replay(&target)
                        .map_err(|e| format!("{}: {e}", target.display()))?;
                out.push_str(&tracker.snapshot().to_json());
            }
            return Ok(out);
        }
        if args.diff {
            let single = |dir: &str| {
                let targets = inspect_targets(Path::new(dir))?;
                match targets.as_slice() {
                    [one] => serscale_telemetry::inspect_dir(one),
                    many => Err(format!(
                        "{dir}: --diff needs a single run, found {} job directories",
                        many.len()
                    )),
                }
            };
            let a = single(&args.dirs[0])?;
            let b = single(&args.dirs[1])?;
            return Ok(serscale_telemetry::inspect::render_diff(&a, &b));
        }
        let mut out = String::new();
        for target in inspect_targets(Path::new(&args.dirs[0]))? {
            let report = serscale_telemetry::inspect_dir(&target)?;
            out.push_str(&if args.folded {
                report.folded()
            } else {
                report.render()
            });
        }
        Ok(out)
    };
    let text = match render() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("repro inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("repro inspect: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("forensic report written to {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

struct VerifyArgs {
    budget: TrialBudget,
    seed: u64,
    out: Option<String>,
    telemetry_out: Option<String>,
}

fn parse_verify_args(mut it: impl Iterator<Item = String>) -> Result<VerifyArgs, String> {
    let mut args = VerifyArgs {
        budget: TrialBudget::small(),
        seed: REPRO_SEED,
        out: None,
        telemetry_out: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let b = it.next().ok_or("--budget needs small|medium|large")?;
                args.budget = TrialBudget::parse(&b)
                    .ok_or(format!("unknown budget {b} (small|medium|large)"))?;
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed {s}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().ok_or("--telemetry-out needs a directory")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro verify [--budget small|medium|large] [--seed N] \
                     [--out verdict.json] [--telemetry-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown verify argument {other}")),
        }
    }
    Ok(args)
}

/// Runs the statistical verification suite: human summary on stderr,
/// verdict JSON on stdout (or into `--out`), nonzero exit on violation.
fn run_verify(args: &VerifyArgs) -> ExitCode {
    eprintln!(
        "running verification suite (budget {}, seed {})…",
        args.budget.name, args.seed
    );
    let verdict = serscale_verify::run_suite(&OracleContext::new(args.seed, args.budget));
    eprint!("{}", verdict.render());
    let json = verdict.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("repro verify: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("verdict written to {path}");
        }
        None => println!("{json}"),
    }
    if let Some(dir) = &args.telemetry_out {
        // Verdict headline numbers as gauges: a dashboard can track
        // all-green / violation counts across runs without parsing JSON.
        let sink = match TelemetrySink::new(Path::new(dir), TelemetryOptions::default()) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("repro verify: cannot open telemetry dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, labels, value) in verdict.headline_gauges() {
            let labels: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            sink.set_gauge(&name, &labels, value);
        }
        if let Err(e) = sink.write() {
            eprintln!("repro verify: telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("telemetry written to {dir}");
    }
    if verdict.all_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("verify") {
        raw.next();
        return match parse_verify_args(raw) {
            Ok(a) => run_verify(&a),
            Err(e) => {
                eprintln!("repro verify: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.peek().map(String::as_str) == Some("bench") {
        raw.next();
        return match parse_bench_args(raw) {
            Ok(a) => run_bench(&a),
            Err(e) => {
                eprintln!("repro bench: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return match parse_serve_args(raw) {
            Ok(a) => run_serve(&a),
            Err(e) => {
                eprintln!("repro serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if raw.peek().map(String::as_str) == Some("inspect") {
        raw.next();
        return match parse_inspect_args(raw) {
            Ok(a) => run_inspect(&a),
            Err(e) => {
                eprintln!("repro inspect: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The platform every campaign of this invocation runs on. The paper's
    // X-Gene 2 stays the default, so plain invocations are byte-for-byte
    // what they always were.
    let platform = match args.platform.as_deref().map(resolve_platform) {
        None => PlatformSpec::xgene2(),
        Some(Ok(spec)) => spec,
        Some(Err(e)) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };

    let needs_campaign = args.headlines
        || args.selfcheck
        || args.summary_out.is_some()
        || args.tables.iter().any(|t| *t >= 2)
        || args.figures.iter().any(|f| *f != 4);

    // Crash-safety controls. `--resume` is `--journal` plus the demand
    // that a journal already exists: a typo'd directory must fail loudly,
    // not silently start a fresh run.
    let retry = match args.trial_timeout {
        Some(secs) => RetryPolicy::with_timeout(std::time::Duration::from_secs_f64(secs)),
        None => RetryPolicy::standard(),
    };
    let journal_dir: Option<PathBuf> = args
        .resume
        .as_ref()
        .or(args.journal.as_ref())
        .map(PathBuf::from);
    if let Some(dir) = &args.resume {
        let path = serscale_core::journal::journal_path(Path::new(dir));
        if !path.is_file() {
            eprintln!("repro: --resume {dir}: no journal at {}", path.display());
            return ExitCode::FAILURE;
        }
    }
    // Journaling attaches to the analysis campaign when one runs,
    // otherwise to the golden run (the only campaign of the invocation).
    let crash_safe = journal_dir.is_some() || args.trial_timeout.is_some();

    // The telemetry sink observes whichever campaign this invocation runs
    // (the analysis campaign if one is needed, otherwise the golden run).
    // Observation is one-way, so golden output and reports are unchanged
    // whether the sink exists or not. `--listen` gets an in-memory sink
    // when no `--telemetry-out` directory is given: the server reads live
    // state, nothing lands on disk. The progress reporter rewrites a line
    // in place on interactive terminals and falls back to plain periodic
    // lines when stderr is not a TTY or `CI`/`NO_COLOR` is set; it stays
    // off entirely in golden runs, where stderr must remain hermetic.
    let sink = if args.telemetry_out.is_some() || args.listen.is_some() {
        let interactive = std::io::stderr().is_terminal()
            && std::env::var_os("CI").is_none()
            && std::env::var_os("NO_COLOR").is_none();
        let options = TelemetryOptions {
            progress: !args.no_progress && !args.golden,
            progress_mode: if interactive {
                ProgressMode::Interactive
            } else {
                ProgressMode::Plain
            },
            trial_spans: false,
        };
        match &args.telemetry_out {
            Some(dir) => match TelemetrySink::new(Path::new(dir), options) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("repro: cannot open telemetry dir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Some(TelemetrySink::in_memory(options)),
        }
    } else {
        None
    };

    // The monitoring plane: live /metrics, /healthz, /progress, /spans
    // and /campaign over the sink's state. The address goes to *stderr* —
    // stdout is golden-diffed byte for byte and must stay hermetic.
    let mut monitor = match (&sink, &args.listen) {
        (Some(sink), Some(addr)) => match sink.serve(addr) {
            Ok(server) => {
                eprintln!("monitoring on http://{}", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("repro: cannot listen on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => None,
    };

    // Publish slow-changing campaign facts for `/campaign`, and wire the
    // journal's fsync probe into `/healthz` when the run is journaled.
    let probe = match (&sink, &journal_dir) {
        (Some(sink), Some(_)) => {
            let probe = SyncProbe::new();
            sink.attach_sync_probe(probe.clone());
            Some(probe)
        }
        _ => None,
    };
    if let Some(sink) = &sink {
        let (fp_scale, fp_seed) = if needs_campaign {
            (args.scale, args.seed)
        } else {
            (GOLDEN_SCALE, REPRO_SEED)
        };
        let mut config = CampaignConfig::for_platform_scaled(&platform, fp_scale);
        config.seed = fp_seed;
        let fingerprint = serscale_core::journal::config_fingerprint(&config);
        let journal = journal_dir.as_deref().map(|dir| {
            serscale_core::journal::journal_path(dir)
                .display()
                .to_string()
        });
        let platform_name = platform.name.clone();
        sink.set_campaign_status(|status| {
            status.platform = Some(platform_name);
            status.config_fingerprint = Some(fingerprint);
            status.journal = journal;
        });
    }

    let mut trace = Logbook::new();
    let mut golden_report: Option<CampaignReport> = None;
    let mut resumed_trials = 0u64;

    if args.golden {
        // The golden diff is pinned to one (scale, seed) pair; only the
        // worker count is the caller's to vary — by contract it must not
        // change a single byte of this output.
        let golden_journal = if needs_campaign {
            None
        } else {
            journal_dir.as_deref()
        };
        let report = match &sink {
            Some(sink) if !needs_campaign => {
                sink.set_progress_target_sim_secs(GOLDEN_SCALE * full_campaign_sim_secs(&platform));
                let mut observer = tee(&mut trace, sink.observer());
                if crash_safe {
                    match run_campaign_robust(
                        &platform,
                        GOLDEN_SCALE,
                        REPRO_SEED,
                        args.jobs,
                        retry,
                        golden_journal,
                        probe.clone(),
                        &mut observer,
                    ) {
                        Ok((report, resumed)) => {
                            resumed_trials = resumed;
                            report
                        }
                        Err(e) => {
                            eprintln!("repro: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    run_platform_campaign_observed(
                        &platform,
                        GOLDEN_SCALE,
                        REPRO_SEED,
                        args.jobs,
                        &mut observer,
                    )
                }
            }
            _ if crash_safe && !needs_campaign => {
                match run_campaign_robust(
                    &platform,
                    GOLDEN_SCALE,
                    REPRO_SEED,
                    args.jobs,
                    retry,
                    golden_journal,
                    probe.clone(),
                    &mut Discard,
                ) {
                    Ok((report, resumed)) => {
                        resumed_trials = resumed;
                        report
                    }
                    Err(e) => {
                        eprintln!("repro: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => run_platform_campaign_jobs(&platform, GOLDEN_SCALE, REPRO_SEED, args.jobs),
        };
        print!("{}", serscale_bench::golden_summary(&report));
        golden_report = Some(report);
    }

    let report = if needs_campaign {
        eprintln!(
            "running {} campaign at scale {} (seed {}), ~{:.1} simulated beam hours on {} worker(s)…",
            platform.name,
            args.scale,
            args.seed,
            full_campaign_sim_secs(&platform) / 3600.0 * args.scale,
            args.jobs
        );
        let run = |observer: &mut dyn SessionObserver| {
            if crash_safe {
                run_campaign_robust(
                    &platform,
                    args.scale,
                    args.seed,
                    args.jobs,
                    retry,
                    journal_dir.as_deref(),
                    probe.clone(),
                    observer,
                )
            } else {
                Ok((
                    run_platform_campaign_observed(
                        &platform, args.scale, args.seed, args.jobs, observer,
                    ),
                    0,
                ))
            }
        };
        let outcome = match &sink {
            Some(sink) => {
                sink.set_progress_target_sim_secs(args.scale * full_campaign_sim_secs(&platform));
                let mut observer = tee(&mut trace, sink.observer());
                run(&mut observer)
            }
            None if crash_safe => run(&mut Discard),
            None => Ok((
                run_platform_campaign_jobs(&platform, args.scale, args.seed, args.jobs),
                0,
            )),
        };
        Some(match outcome {
            Ok((report, resumed)) => {
                resumed_trials = resumed;
                report
            }
            Err(e) => {
                eprintln!("repro: {e}");
                return ExitCode::FAILURE;
            }
        })
    } else {
        None
    };
    let report = report.as_ref();

    // The CI control-plane job diffs service-produced reports against
    // this file: same renderer, same spec → byte-identical text.
    if let Some(path) = &args.summary_out {
        let text = serscale_bench::golden_summary(report.expect("campaign"));
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("repro: cannot write summary to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bit-stable summary written to {path}");
    }

    for t in &args.tables {
        match t {
            1 => println!("{}", experiments::table1()),
            2 => println!("{}", experiments::table2(report.expect("campaign"))),
            3 => println!("{}", experiments::table3(report.expect("campaign"))),
            other => eprintln!("repro: no table {other} in the paper"),
        }
    }
    for f in &args.figures {
        let text = match f {
            4 => experiments::figure4(args.seed, 100),
            5 => experiments::figure5(report.expect("campaign")),
            6 => experiments::figure6(report.expect("campaign")),
            7 => experiments::figure7(report.expect("campaign")),
            8 => experiments::figure8(report.expect("campaign")),
            9 => experiments::figure9(report.expect("campaign")),
            10 => experiments::figure10(report.expect("campaign")),
            11 => experiments::figure11(report.expect("campaign")),
            12 => experiments::figure12(report.expect("campaign")),
            13 => experiments::figure13(report.expect("campaign")),
            other => {
                eprintln!("repro: no figure {other} in the paper's evaluation");
                continue;
            }
        };
        println!("{text}");
    }
    if args.headlines {
        println!("{}", experiments::headlines(report.expect("campaign")));
    }
    if args.sweep {
        println!("{}", experiments::voltage_sweep());
    }
    if args.ablations {
        println!("{}", experiments::ablations(args.seed));
    }
    if args.selfcheck {
        let checks = serscale_bench::selfcheck::run_checks(report.expect("campaign"));
        println!("{}", serscale_bench::selfcheck::render(&checks));
        if checks.iter().any(|c| !c.passed) {
            return ExitCode::FAILURE;
        }
    }

    if let Some(sink) = &sink {
        // Counters must agree with whichever report the observer watched;
        // a mismatch means the telemetry lied and the run fails.
        let observed = if needs_campaign {
            report
        } else {
            golden_report.as_ref()
        };
        if let Some(observed) = observed {
            if let Err(e) = sink.crosscheck_campaign(observed) {
                eprintln!("repro: telemetry/report crosscheck FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        sink.set_campaign_status(|status| {
            status.resumed_trials = resumed_trials;
            status.done = true;
        });
        if args.telemetry_out.is_some() {
            // Artifacts land before any linger window, so a live scrape
            // during the window and the on-disk snapshot agree exactly.
            if let Err(e) = sink
                .write()
                .and_then(|_| sink.write_extra("trace.jsonl", &trace.to_jsonl()))
            {
                eprintln!("repro: telemetry write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprint!("{}", sink.summary());
        if let Some(dir) = args.telemetry_out.as_deref() {
            eprintln!("telemetry written to {dir}");
        }
    }
    if let Some(server) = &mut monitor {
        // Hold the endpoints up so scrapers can read the final state —
        // a full-scale campaign finishes in under a second, far faster
        // than any polling loop.
        if args.linger > 0.0 {
            eprintln!("monitoring lingers {:.0}s before shutdown…", args.linger);
            std::thread::sleep(std::time::Duration::from_secs_f64(args.linger));
        }
        server.shutdown();
    }
    ExitCode::SUCCESS
}
