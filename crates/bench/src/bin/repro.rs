//! `repro` — regenerate the paper's tables and figures from the simulator.
//!
//! ```text
//! repro --all                 # everything, full-scale campaign
//! repro --table 2             # one table
//! repro --figure 11           # one figure
//! repro --scale 0.1 --all     # 10% beam time (fast preview)
//! repro --seed 123 --figure 8
//! repro --ablations           # mechanism ablations (beyond the paper)
//! repro --sweep               # fine-grained voltage sweep + advisor
//! repro --jobs 8 --all        # same bits, eight worker threads
//! repro --golden              # bit-stable summary for the CI golden diff
//! repro verify --budget small # statistical verification suite → verdict JSON
//! ```

use std::io::IsTerminal as _;
use std::path::Path;
use std::process::ExitCode;

use serscale_bench::{
    experiments, run_campaign_jobs, run_campaign_observed, GOLDEN_SCALE, REPRO_SEED,
};
use serscale_core::campaign::CampaignReport;
use serscale_core::trace::{tee, Logbook};
use serscale_telemetry::{TelemetryOptions, TelemetrySink};
use serscale_verify::{OracleContext, TrialBudget};

/// Simulated seconds of a full-scale campaign (64.8 beam hours), for the
/// progress reporter's ETA.
const FULL_CAMPAIGN_SIM_SECS: f64 = 64.8 * 3600.0;

struct Args {
    scale: f64,
    seed: u64,
    jobs: usize,
    tables: Vec<u32>,
    figures: Vec<u32>,
    headlines: bool,
    ablations: bool,
    sweep: bool,
    selfcheck: bool,
    golden: bool,
    telemetry_out: Option<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 1.0,
        seed: REPRO_SEED,
        jobs: default_jobs(),
        tables: Vec::new(),
        figures: Vec::new(),
        headlines: false,
        ablations: false,
        sweep: false,
        selfcheck: false,
        golden: false,
        telemetry_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                args.tables = vec![1, 2, 3];
                args.figures = (4..=13).collect();
                args.headlines = true;
                args.ablations = true;
                args.sweep = true;
                args.selfcheck = true;
            }
            "--table" => {
                let n = it.next().ok_or("--table needs a number")?;
                args.tables
                    .push(n.parse().map_err(|_| format!("bad table number {n}"))?);
            }
            "--figure" => {
                let n = it.next().ok_or("--figure needs a number")?;
                args.figures
                    .push(n.parse().map_err(|_| format!("bad figure number {n}"))?);
            }
            "--headlines" => args.headlines = true,
            "--ablations" => args.ablations = true,
            "--sweep" => args.sweep = true,
            "--selfcheck" => args.selfcheck = true,
            "--scale" => {
                let s = it.next().ok_or("--scale needs a value")?;
                args.scale = s.parse().map_err(|_| format!("bad scale {s}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed {s}"))?;
            }
            "--jobs" => {
                let s = it.next().ok_or("--jobs needs a value")?;
                args.jobs = s.parse().map_err(|_| format!("bad jobs count {s}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--golden" => args.golden = true,
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().ok_or("--telemetry-out needs a directory")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--all] [--table N]* [--figure N]* [--headlines] \
                     [--ablations] [--sweep] [--selfcheck] [--golden] [--scale F] \
                     [--seed N] [--jobs N] [--telemetry-out DIR]\n       \
                     repro verify [--budget small|medium|large] \
                     [--seed N] [--out verdict.json] [--telemetry-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.tables.is_empty()
        && args.figures.is_empty()
        && !args.headlines
        && !args.ablations
        && !args.sweep
        && !args.selfcheck
        && !args.golden
    {
        return Err("nothing to do; try --all (or --help)".into());
    }
    Ok(args)
}

struct VerifyArgs {
    budget: TrialBudget,
    seed: u64,
    out: Option<String>,
    telemetry_out: Option<String>,
}

fn parse_verify_args(mut it: impl Iterator<Item = String>) -> Result<VerifyArgs, String> {
    let mut args = VerifyArgs {
        budget: TrialBudget::small(),
        seed: REPRO_SEED,
        out: None,
        telemetry_out: None,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let b = it.next().ok_or("--budget needs small|medium|large")?;
                args.budget = TrialBudget::parse(&b)
                    .ok_or(format!("unknown budget {b} (small|medium|large)"))?;
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                args.seed = s.parse().map_err(|_| format!("bad seed {s}"))?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().ok_or("--telemetry-out needs a directory")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro verify [--budget small|medium|large] [--seed N] \
                     [--out verdict.json] [--telemetry-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown verify argument {other}")),
        }
    }
    Ok(args)
}

/// Runs the statistical verification suite: human summary on stderr,
/// verdict JSON on stdout (or into `--out`), nonzero exit on violation.
fn run_verify(args: &VerifyArgs) -> ExitCode {
    eprintln!(
        "running verification suite (budget {}, seed {})…",
        args.budget.name, args.seed
    );
    let verdict = serscale_verify::run_suite(&OracleContext::new(args.seed, args.budget));
    eprint!("{}", verdict.render());
    let json = verdict.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("repro verify: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("verdict written to {path}");
        }
        None => println!("{json}"),
    }
    if let Some(dir) = &args.telemetry_out {
        // Verdict headline numbers as gauges: a dashboard can track
        // all-green / violation counts across runs without parsing JSON.
        let sink = match TelemetrySink::new(Path::new(dir), TelemetryOptions::default()) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("repro verify: cannot open telemetry dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, labels, value) in verdict.headline_gauges() {
            let labels: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            sink.set_gauge(&name, &labels, value);
        }
        if let Err(e) = sink.write() {
            eprintln!("repro verify: telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("telemetry written to {dir}");
    }
    if verdict.all_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("verify") {
        raw.next();
        return match parse_verify_args(raw) {
            Ok(a) => run_verify(&a),
            Err(e) => {
                eprintln!("repro verify: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };

    let needs_campaign = args.headlines
        || args.selfcheck
        || args.tables.iter().any(|t| *t >= 2)
        || args.figures.iter().any(|f| *f != 4);

    // The telemetry sink observes whichever campaign this invocation runs
    // (the analysis campaign if one is needed, otherwise the golden run).
    // Observation is one-way, so golden output and reports are unchanged
    // whether the sink exists or not. The live progress line stays off in
    // CI and golden runs, where stderr must remain hermetic.
    let sink = match &args.telemetry_out {
        Some(dir) => {
            let options = TelemetryOptions {
                progress: std::io::stderr().is_terminal()
                    && std::env::var_os("CI").is_none()
                    && !args.golden,
                trial_spans: false,
            };
            match TelemetrySink::new(Path::new(dir), options) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("repro: cannot open telemetry dir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let mut trace = Logbook::new();
    let mut golden_report: Option<CampaignReport> = None;

    if args.golden {
        // The golden diff is pinned to one (scale, seed) pair; only the
        // worker count is the caller's to vary — by contract it must not
        // change a single byte of this output.
        let report = match &sink {
            Some(sink) if !needs_campaign => {
                sink.set_progress_target_sim_secs(GOLDEN_SCALE * FULL_CAMPAIGN_SIM_SECS);
                let mut observer = tee(&mut trace, sink.observer());
                run_campaign_observed(GOLDEN_SCALE, REPRO_SEED, args.jobs, &mut observer)
            }
            _ => run_campaign_jobs(GOLDEN_SCALE, REPRO_SEED, args.jobs),
        };
        print!("{}", serscale_bench::golden_summary(&report));
        golden_report = Some(report);
    }

    let report = if needs_campaign {
        eprintln!(
            "running campaign at scale {} (seed {}), ~{:.1} simulated beam hours on {} worker(s)…",
            args.scale,
            args.seed,
            64.8 * args.scale,
            args.jobs
        );
        Some(match &sink {
            Some(sink) => {
                sink.set_progress_target_sim_secs(args.scale * FULL_CAMPAIGN_SIM_SECS);
                let mut observer = tee(&mut trace, sink.observer());
                run_campaign_observed(args.scale, args.seed, args.jobs, &mut observer)
            }
            None => run_campaign_jobs(args.scale, args.seed, args.jobs),
        })
    } else {
        None
    };
    let report = report.as_ref();

    for t in &args.tables {
        match t {
            1 => println!("{}", experiments::table1()),
            2 => println!("{}", experiments::table2(report.expect("campaign"))),
            3 => println!("{}", experiments::table3(report.expect("campaign"))),
            other => eprintln!("repro: no table {other} in the paper"),
        }
    }
    for f in &args.figures {
        let text = match f {
            4 => experiments::figure4(args.seed, 100),
            5 => experiments::figure5(report.expect("campaign")),
            6 => experiments::figure6(report.expect("campaign")),
            7 => experiments::figure7(report.expect("campaign")),
            8 => experiments::figure8(report.expect("campaign")),
            9 => experiments::figure9(report.expect("campaign")),
            10 => experiments::figure10(report.expect("campaign")),
            11 => experiments::figure11(report.expect("campaign")),
            12 => experiments::figure12(report.expect("campaign")),
            13 => experiments::figure13(report.expect("campaign")),
            other => {
                eprintln!("repro: no figure {other} in the paper's evaluation");
                continue;
            }
        };
        println!("{text}");
    }
    if args.headlines {
        println!("{}", experiments::headlines(report.expect("campaign")));
    }
    if args.sweep {
        println!("{}", experiments::voltage_sweep());
    }
    if args.ablations {
        println!("{}", experiments::ablations(args.seed));
    }
    if args.selfcheck {
        let checks = serscale_bench::selfcheck::run_checks(report.expect("campaign"));
        println!("{}", serscale_bench::selfcheck::render(&checks));
        if checks.iter().any(|c| !c.passed) {
            return ExitCode::FAILURE;
        }
    }

    if let Some(sink) = &sink {
        // Counters must agree with whichever report the observer watched;
        // a mismatch means the telemetry lied and the run fails.
        let observed = if needs_campaign {
            report
        } else {
            golden_report.as_ref()
        };
        if let Some(observed) = observed {
            if let Err(e) = sink.crosscheck_campaign(observed) {
                eprintln!("repro: telemetry/report crosscheck FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = sink
            .write()
            .and_then(|_| sink.write_extra("trace.jsonl", &trace.to_jsonl()))
        {
            eprintln!("repro: telemetry write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprint!("{}", sink.summary());
        eprintln!(
            "telemetry written to {}",
            args.telemetry_out.as_deref().unwrap_or("?")
        );
    }
    ExitCode::SUCCESS
}
