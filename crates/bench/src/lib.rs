//! # serscale-bench
//!
//! The reproduction harness: every table and figure of the paper's
//! evaluation, regenerated from the simulator and printed side by side with
//! the paper's reported values.
//!
//! * [`paper`] — the reference numbers, transcribed from the paper.
//! * [`experiments`] — one regeneration function per table/figure.
//! * The `repro` binary (`cargo run -p serscale-bench --bin repro -- --all`)
//!   drives them from the command line.
//! * The Criterion benches under `benches/` time each regeneration at
//!   reduced scale and print the full-scale rows once per run.
//! * [`selfcheck`] asserts every EXPERIMENTS.md shape claim against a
//!   fresh campaign (`repro --selfcheck`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod selfcheck;
pub mod throughput;

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport, CampaignRunOptions};
use serscale_core::journal::start_or_resume;
use serscale_core::session::RetryPolicy;
use serscale_soc::PlatformSpec;

/// The default seed used by the `repro` outputs (any seed reproduces the
/// paper's *shape*; this one is fixed so the committed EXPERIMENTS.md is
/// regenerable verbatim).
pub const REPRO_SEED: u64 = 20231028; // MICRO '23 opening day

/// The campaign scale pinned by the golden smoke artifact
/// (`tests/golden/campaign_smoke.txt`): small enough for CI, large enough
/// that every session sees events.
pub const GOLDEN_SCALE: f64 = 0.005;

/// Runs the paper campaign at a given scale (1.0 = the full 64.8 beam
/// hours of Table 2).
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1`.
pub fn run_campaign(scale: f64, seed: u64) -> CampaignReport {
    run_campaign_jobs(scale, seed, 1)
}

/// [`run_campaign`] on `jobs` worker threads — same report, any thread
/// count (the engine's determinism contract).
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`.
pub fn run_campaign_jobs(scale: f64, seed: u64, jobs: usize) -> CampaignReport {
    run_platform_campaign_jobs(&PlatformSpec::xgene2(), scale, seed, jobs)
}

/// [`run_campaign_jobs`] on an arbitrary platform: the session schedule,
/// operating points and device models all come from `spec`.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`.
pub fn run_platform_campaign_jobs(
    spec: &PlatformSpec,
    scale: f64,
    seed: u64,
    jobs: usize,
) -> CampaignReport {
    let mut config = CampaignConfig::for_platform_scaled(spec, scale);
    config.seed = seed;
    Campaign::new(config).run_parallel(jobs)
}

/// [`run_campaign_jobs`] with every engine callback reported to
/// `observer`. Observation is strictly one-way: the report is
/// bit-identical to the unobserved run at any `jobs` count.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`.
pub fn run_campaign_observed(
    scale: f64,
    seed: u64,
    jobs: usize,
    observer: &mut dyn serscale_core::trace::SessionObserver,
) -> CampaignReport {
    run_platform_campaign_observed(&PlatformSpec::xgene2(), scale, seed, jobs, observer)
}

/// [`run_campaign_observed`] on an arbitrary platform.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`.
pub fn run_platform_campaign_observed(
    spec: &PlatformSpec,
    scale: f64,
    seed: u64,
    jobs: usize,
    observer: &mut dyn serscale_core::trace::SessionObserver,
) -> CampaignReport {
    let mut config = CampaignConfig::for_platform_scaled(spec, scale);
    config.seed = seed;
    Campaign::new(config).run_observed(jobs, observer)
}

/// [`run_campaign_observed`] with crash safety: absorbed trials are
/// journaled to `journal_dir` (fsync'd per wave), and if the directory
/// already holds a journal for this exact configuration the completed
/// prefix is replayed instead of re-simulated — the report and the
/// observer's trace come out bit-identical to an uninterrupted run at any
/// `jobs`.
///
/// # Errors
///
/// Propagates journal I/O failures; a journal for a *different*
/// configuration (wrong seed or scale) is refused rather than resumed.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`, or if a journal write
/// cannot be made durable mid-run.
pub fn run_campaign_recovering(
    scale: f64,
    seed: u64,
    jobs: usize,
    retry: RetryPolicy,
    journal_dir: &std::path::Path,
    observer: &mut dyn serscale_core::trace::SessionObserver,
) -> std::io::Result<CampaignReport> {
    run_campaign_recovering_monitored(scale, seed, jobs, retry, journal_dir, None, observer)
        .map(|(report, _resumed)| report)
}

/// [`run_campaign_recovering`] with the monitoring plane's hooks: an
/// optional [`SyncProbe`](serscale_core::journal::SyncProbe) is attached
/// to the journal writer (so `/healthz` can report fsync lag), and the
/// returned pair carries how many trials the journal replayed instead of
/// re-simulating (surfaced on `/campaign` as `resumed_trials`). The
/// hooks are observe-only; the report is bit-identical either way.
///
/// # Errors
///
/// Propagates journal I/O failures; a journal for a *different*
/// configuration (wrong seed or scale) is refused rather than resumed.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`, or if a journal write
/// cannot be made durable mid-run.
pub fn run_campaign_recovering_monitored(
    scale: f64,
    seed: u64,
    jobs: usize,
    retry: RetryPolicy,
    journal_dir: &std::path::Path,
    probe: Option<serscale_core::journal::SyncProbe>,
    observer: &mut dyn serscale_core::trace::SessionObserver,
) -> std::io::Result<(CampaignReport, u64)> {
    run_platform_campaign_recovering_monitored(
        &PlatformSpec::xgene2(),
        scale,
        seed,
        jobs,
        retry,
        journal_dir,
        probe,
        observer,
    )
}

/// [`run_campaign_recovering_monitored`] on an arbitrary platform. The
/// platform is folded into the journal's config fingerprint, so a journal
/// written for one platform refuses to resume under another.
///
/// # Errors
///
/// Propagates journal I/O failures; a journal for a *different*
/// configuration (wrong seed, scale, or platform) is refused rather than
/// resumed.
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1` and `jobs > 0`, or if a journal write
/// cannot be made durable mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_platform_campaign_recovering_monitored(
    spec: &PlatformSpec,
    scale: f64,
    seed: u64,
    jobs: usize,
    retry: RetryPolicy,
    journal_dir: &std::path::Path,
    probe: Option<serscale_core::journal::SyncProbe>,
    observer: &mut dyn serscale_core::trace::SessionObserver,
) -> std::io::Result<(CampaignReport, u64)> {
    let mut config = CampaignConfig::for_platform_scaled(spec, scale);
    config.seed = seed;
    let campaign = Campaign::new(config);
    let (mut writer, recovered) = start_or_resume(journal_dir, campaign.config())?;
    if let Some(probe) = probe {
        writer.attach_probe(probe);
    }
    let resumed = recovered.as_ref().map_or(
        0,
        serscale_core::journal::RecoveredCampaign::trials_recovered,
    );
    let report = campaign.run_recoverable(
        CampaignRunOptions {
            jobs,
            retry,
            journal: Some(&mut writer),
            recovered: recovered.as_ref(),
            cancel: None,
        },
        observer,
    );
    Ok((report, resumed))
}

// The bit-stable golden renderer moved to `serscale_core::report` so the
// control plane can serve byte-comparable reports; the re-export keeps
// the historical `serscale_bench::golden_summary` path working.
pub use serscale_core::report::golden_summary;

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// A two-column "simulated vs paper" cell.
pub fn vs(sim: f64, paper: f64, width: usize, precision: usize) -> String {
    format!("{sim:>width$.precision$} (paper {paper:.precision$})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_runs() {
        let report = run_campaign(0.005, 1);
        assert_eq!(report.sessions.len(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.305), "30.5%");
        assert_eq!(vs(1.25, 1.2, 6, 2), "  1.25 (paper 1.20)");
    }
}
