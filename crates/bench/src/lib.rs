//! # serscale-bench
//!
//! The reproduction harness: every table and figure of the paper's
//! evaluation, regenerated from the simulator and printed side by side with
//! the paper's reported values.
//!
//! * [`paper`] — the reference numbers, transcribed from the paper.
//! * [`experiments`] — one regeneration function per table/figure.
//! * The `repro` binary (`cargo run -p serscale-bench --bin repro -- --all`)
//!   drives them from the command line.
//! * The Criterion benches under `benches/` time each regeneration at
//!   reduced scale and print the full-scale rows once per run.
//! * [`selfcheck`] asserts every EXPERIMENTS.md shape claim against a
//!   fresh campaign (`repro --selfcheck`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod selfcheck;

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport};

/// The default seed used by the `repro` outputs (any seed reproduces the
/// paper's *shape*; this one is fixed so the committed EXPERIMENTS.md is
/// regenerable verbatim).
pub const REPRO_SEED: u64 = 20231028; // MICRO '23 opening day

/// Runs the paper campaign at a given scale (1.0 = the full 64.8 beam
/// hours of Table 2).
///
/// # Panics
///
/// Panics unless `0 < scale ≤ 1`.
pub fn run_campaign(scale: f64, seed: u64) -> CampaignReport {
    let mut config = CampaignConfig::paper_scaled(scale);
    config.seed = seed;
    Campaign::new(config).run()
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// A two-column "simulated vs paper" cell.
pub fn vs(sim: f64, paper: f64, width: usize, precision: usize) -> String {
    format!("{sim:>width$.precision$} (paper {paper:.precision$})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_runs() {
        let report = run_campaign(0.005, 1);
        assert_eq!(report.sessions.len(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.305), "30.5%");
        assert_eq!(vs(1.25, 1.2, 6, 2), "  1.25 (paper 1.20)");
    }
}
