//! # serscale-undervolt
//!
//! The safe-Vmin characterization harness (§4.1 of the paper, reproducing
//! Figure 4 and Table 3).
//!
//! Before any beam time, the paper exhaustively characterized the chip
//! offline: for each clock frequency, run every benchmark hundreds of times
//! at each 5 mV step below nominal, record the probability of failure
//! (pfail), and call the lowest voltage where *all* executions complete
//! correctly the *safe Vmin*. Any error observed later under beam at or
//! above that voltage is then attributable to radiation, not to
//! undervolting — the keystone of the paper's methodology (§3.6).
//!
//! * [`timing`] — why chips fail under undervolting at all: the
//!   critical-path timing model, with its frequency-dependent critical
//!   voltage (lower clock ⇒ longer cycle ⇒ deeper safe undervolting:
//!   920 mV at 2.4 GHz vs 790 mV at 900 MHz).
//! * [`characterize`] — the sweep harness: pfail curves per voltage
//!   (Figure 4) and the safe-Vmin / Table 3 extraction.
//!
//! ## Example
//!
//! ```
//! use serscale_stats::SimRng;
//! use serscale_undervolt::{characterize::Characterizer, timing::TimingFailureModel};
//! use serscale_types::Megahertz;
//!
//! let mut rng = SimRng::seed_from(7);
//! let harness = Characterizer::new(TimingFailureModel::xgene2(), 100);
//! let curve = harness.sweep(&mut rng, Megahertz::new(2400));
//! let vmin = curve.safe_vmin().expect("sweep reaches a safe level");
//! assert_eq!(vmin.get(), 920); // the paper's 2.4 GHz safe Vmin
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod timing;
pub mod variation;

pub use characterize::{Characterizer, PfailCurve, SafeVoltageTable};
pub use timing::TimingFailureModel;
pub use variation::{ChipPopulation, FleetCharacterization};
