//! The Vmin characterization sweep (§4.1): pfail curves and safe-voltage
//! tables.

use serde::{Deserialize, Serialize};

use serscale_soc::PlatformSpec;
use serscale_stats::ci::wilson_ci;
use serscale_stats::SimRng;
use serscale_types::{Megahertz, Millivolts};
use serscale_workload::Benchmark;

use crate::timing::TimingFailureModel;

/// One measured point of a pfail curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PfailPoint {
    /// The tested voltage.
    pub voltage: Millivolts,
    /// Failed executions across all benchmarks.
    pub failures: u64,
    /// Total executions across all benchmarks.
    pub trials: u64,
}

impl PfailPoint {
    /// The observed failure probability.
    pub fn pfail(&self) -> f64 {
        self.failures as f64 / self.trials as f64
    }

    /// The Wilson 95 % interval on the failure probability.
    pub fn pfail_ci(&self) -> (f64, f64) {
        wilson_ci(self.failures, self.trials, 0.95)
    }
}

/// A full pfail-vs-voltage sweep at one frequency — one panel of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfailCurve {
    /// The swept frequency.
    pub frequency: Megahertz,
    /// Points in descending-voltage order.
    pub points: Vec<PfailPoint>,
}

impl PfailCurve {
    /// The safe Vmin: the lowest tested voltage at which *no* execution
    /// failed, provided every voltage above it was also failure-free
    /// (the paper's definition — a single anomalous pass below a failing
    /// level does not count).
    pub fn safe_vmin(&self) -> Option<Millivolts> {
        let mut vmin = None;
        for p in &self.points {
            // points are descending in voltage
            if p.failures == 0 {
                vmin = Some(p.voltage);
            } else {
                break;
            }
        }
        vmin
    }

    /// The voltage at which failures become certain (first tested level
    /// with pfail = 100 %), if the sweep reached one.
    pub fn full_failure_voltage(&self) -> Option<Millivolts> {
        self.points
            .iter()
            .find(|p| p.failures == p.trials)
            .map(|p| p.voltage)
    }

    /// The guardband exposed by the sweep: nominal minus safe Vmin, in mV.
    pub fn guardband_mv(&self, nominal: Millivolts) -> Option<u32> {
        self.safe_vmin().map(|v| nominal - v)
    }
}

/// The characterization harness: sweeps voltage at a fixed frequency,
/// running every benchmark `trials_per_benchmark` times per 5 mV step,
/// exactly as §4.1 describes ("we ran the entire undervolting experiments
/// hundreds of times for each benchmark and on each frequency").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Characterizer {
    timing: TimingFailureModel,
    trials_per_benchmark: u32,
}

impl Characterizer {
    /// Creates a harness.
    ///
    /// # Panics
    ///
    /// Panics if `trials_per_benchmark` is zero.
    pub fn new(timing: TimingFailureModel, trials_per_benchmark: u32) -> Self {
        assert!(
            trials_per_benchmark > 0,
            "need at least one trial per benchmark"
        );
        Characterizer {
            timing,
            trials_per_benchmark,
        }
    }

    /// The underlying timing model.
    pub const fn timing(&self) -> &TimingFailureModel {
        &self.timing
    }

    /// The harness for a platform spec's own timing physics.
    pub fn for_platform(spec: &PlatformSpec, trials_per_benchmark: u32) -> Self {
        Self::new(TimingFailureModel::for_platform(spec), trials_per_benchmark)
    }

    /// Sweeps from the X-Gene 2 PMD nominal (980 mV) downward in 5 mV
    /// steps until a level with 100 % failures is reached (or 700 mV, a
    /// floor well below any realistic Vc at its supported frequencies).
    /// Platform-aware callers should use [`Characterizer::sweep_platform`],
    /// which reads both bounds off the spec.
    pub fn sweep(&self, rng: &mut SimRng, frequency: Megahertz) -> PfailCurve {
        self.sweep_range(rng, frequency, Millivolts::new(980), Millivolts::new(700))
    }

    /// Sweeps a platform's own rail range: from its PMD nominal down to
    /// its characterization floor.
    pub fn sweep_platform(
        &self,
        rng: &mut SimRng,
        spec: &PlatformSpec,
        frequency: Megahertz,
    ) -> PfailCurve {
        self.sweep_range(rng, frequency, spec.pmd_rail.nominal, spec.sweep_floor)
    }

    /// Sweeps from an explicit starting voltage downward to the X-Gene 2
    /// floor.
    pub fn sweep_from(
        &self,
        rng: &mut SimRng,
        frequency: Megahertz,
        start: Millivolts,
    ) -> PfailCurve {
        self.sweep_range(rng, frequency, start, Millivolts::new(700))
    }

    /// Sweeps an explicit `[floor, start]` voltage range downward.
    pub fn sweep_range(
        &self,
        rng: &mut SimRng,
        frequency: Megahertz,
        start: Millivolts,
        floor: Millivolts,
    ) -> PfailCurve {
        // Benchmarks exert benchmark-grade droop by definition (zero
        // relative droop; see `serscale-workload`'s virus module).
        let droops = vec![0.0; Benchmark::ALL.len()];
        self.sweep_range_with_droops(rng, frequency, start, floor, &droops)
    }

    /// The micro-virus sweep of \[51\]: each voltage step runs every stress
    /// kernel instead of the benchmarks, with its calibrated extra supply
    /// droop applied to the failure point. Exposes a more conservative
    /// (higher) safe Vmin in a fraction of the trials.
    pub fn sweep_viruses(
        &self,
        rng: &mut SimRng,
        frequency: Megahertz,
        virus_droops: &[f64],
    ) -> PfailCurve {
        self.sweep_from_with_droops(rng, frequency, Millivolts::new(980), virus_droops)
    }

    /// [`Characterizer::sweep_range_with_droops`] with the X-Gene 2 floor.
    pub fn sweep_from_with_droops(
        &self,
        rng: &mut SimRng,
        frequency: Megahertz,
        start: Millivolts,
        droops: &[f64],
    ) -> PfailCurve {
        self.sweep_range_with_droops(rng, frequency, start, Millivolts::new(700), droops)
    }

    /// The generic downward sweep: one "workload" per entry of `droops`,
    /// each run `trials_per_benchmark` times per 5 mV step, stopping at
    /// the first 100 %-failure level or at `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `droops` is empty.
    pub fn sweep_range_with_droops(
        &self,
        rng: &mut SimRng,
        frequency: Megahertz,
        start: Millivolts,
        floor: Millivolts,
        droops: &[f64],
    ) -> PfailCurve {
        assert!(!droops.is_empty(), "need at least one workload");
        let mut points = Vec::new();
        let mut voltage = start;
        loop {
            let mut failures = 0u64;
            let mut trials = 0u64;
            for &droop in droops {
                for _ in 0..self.trials_per_benchmark {
                    trials += 1;
                    if self
                        .timing
                        .sample_run_fails_with_droop(rng, voltage, frequency, droop)
                    {
                        failures += 1;
                    }
                }
            }
            points.push(PfailPoint {
                voltage,
                failures,
                trials,
            });
            if failures == trials || voltage <= floor {
                break;
            }
            voltage = voltage.stepped_down(1);
        }
        PfailCurve { frequency, points }
    }
}

/// Table 3 of the paper: the voltage settings used in the beam campaign,
/// derived from the characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafeVoltageTable {
    /// `(label, frequency, PMD voltage, SoC voltage)` rows.
    pub rows: Vec<(String, Megahertz, Millivolts, Millivolts)>,
}

impl SafeVoltageTable {
    /// Builds the campaign's Table 3 from characterized Vmins: nominal,
    /// a "safe" intermediate point 10 mV above the 2.4 GHz Vmin, the
    /// 2.4 GHz Vmin, and the 900 MHz Vmin (SoC held at nominal there, as
    /// frequency scaling cannot affect the SoC domain).
    pub fn from_vmins(vmin_2400: Millivolts, vmin_900: Millivolts) -> Self {
        Self::from_vmins_for(&PlatformSpec::xgene2(), vmin_2400, vmin_900)
    }

    /// [`SafeVoltageTable::from_vmins`] generalized to any platform: the
    /// nominal row and rail pairings come from the spec, the high- and
    /// low-frequency Vmin rows from its Vmin anchor frequencies.
    pub fn from_vmins_for(
        spec: &PlatformSpec,
        vmin_high: Millivolts,
        vmin_low: Millivolts,
    ) -> Self {
        let soc_nominal = spec.soc_rail.nominal;
        let f_high = spec.freq_max;
        let f_low = spec.vmin.low_freq;
        let rows = vec![
            (
                "Nominal".to_owned(),
                f_high,
                spec.pmd_rail.nominal,
                soc_nominal,
            ),
            (
                "Safe".to_owned(),
                f_high,
                vmin_high.stepped_up(2),
                // The paper paired 930 mV PMD with 925 mV SoC: 5 mV above
                // the SoC's own Vmin — but never above the rail nominal.
                vmin_high.stepped_up(1).min(soc_nominal),
            ),
            (
                "Vmin".to_owned(),
                f_high,
                vmin_high,
                vmin_high.min(soc_nominal),
            ),
            (format!("Vmin {f_low}"), f_low, vmin_low, soc_nominal),
        ];
        SafeVoltageTable { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Characterizer {
        Characterizer::new(TimingFailureModel::xgene2(), 100)
    }

    #[test]
    fn sweep_finds_paper_vmin_at_2400() {
        let mut rng = SimRng::seed_from(7);
        let curve = harness().sweep(&mut rng, Megahertz::new(2400));
        assert_eq!(curve.safe_vmin(), Some(Millivolts::new(920)));
    }

    #[test]
    fn sweep_finds_paper_vmin_at_900() {
        let mut rng = SimRng::seed_from(7);
        let curve = harness().sweep(&mut rng, Megahertz::new(900));
        assert_eq!(curve.safe_vmin(), Some(Millivolts::new(790)));
    }

    #[test]
    fn pfail_rises_monotonically_below_vmin_in_expectation() {
        // The measured curve is noisy, but the underlying trend must show:
        // last point (full failure) > first failing point.
        let mut rng = SimRng::seed_from(8);
        let curve = harness().sweep(&mut rng, Megahertz::new(2400));
        let first_fail = curve
            .points
            .iter()
            .find(|p| p.failures > 0)
            .expect("sweep failed");
        let last = curve.points.last().expect("nonempty");
        assert!(last.pfail() > first_fail.pfail());
        assert_eq!(last.pfail(), 1.0);
    }

    #[test]
    fn guardband_matches_paper() {
        // 980 − 920 = 60 mV of exploitable guardband at 2.4 GHz.
        let mut rng = SimRng::seed_from(7);
        let curve = harness().sweep(&mut rng, Megahertz::new(2400));
        assert_eq!(curve.guardband_mv(Millivolts::new(980)), Some(60));
    }

    #[test]
    fn failure_window_is_about_20mv_at_2400() {
        let mut rng = SimRng::seed_from(9);
        let curve = harness().sweep(&mut rng, Megahertz::new(2400));
        let vmin = curve.safe_vmin().unwrap();
        let dead = curve.full_failure_voltage().unwrap();
        let window = vmin - dead;
        assert!((15..=30).contains(&window), "window = {window} mV");
    }

    #[test]
    fn failure_window_is_shorter_at_900() {
        let mut rng_a = SimRng::seed_from(10);
        let mut rng_b = SimRng::seed_from(10);
        let c24 = harness().sweep(&mut rng_a, Megahertz::new(2400));
        let c09 = harness().sweep(&mut rng_b, Megahertz::new(900));
        let window = |c: &PfailCurve| c.safe_vmin().unwrap() - c.full_failure_voltage().unwrap();
        assert!(
            window(&c09) < window(&c24),
            "{} !< {}",
            window(&c09),
            window(&c24)
        );
    }

    #[test]
    fn sweep_is_deterministic_under_seed() {
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            harness().sweep(&mut rng, Megahertz::new(2400))
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn pfail_point_ci_brackets_estimate() {
        let p = PfailPoint {
            voltage: Millivolts::new(910),
            failures: 30,
            trials: 100,
        };
        let (lo, hi) = p.pfail_ci();
        assert!(lo < 0.30 && 0.30 < hi);
    }

    #[test]
    fn virus_sweep_exposes_a_more_conservative_vmin() {
        // [51]'s headline: micro-viruses find the margin boundary that
        // benchmarks miss. With a 12 mV worst-case droop, the virus Vmin
        // sits 2–3 regulator steps above the benchmark Vmin.
        use serscale_workload::MicroVirus;
        let h = harness();
        let mut rng_a = SimRng::seed_from(21);
        let mut rng_b = SimRng::seed_from(21);
        let bench_curve = h.sweep(&mut rng_a, Megahertz::new(2400));
        let virus_curve =
            h.sweep_viruses(&mut rng_b, Megahertz::new(2400), &MicroVirus::all_droops());
        let bench_vmin = bench_curve.safe_vmin().expect("benchmark vmin");
        let virus_vmin = virus_curve.safe_vmin().expect("virus vmin");
        assert!(virus_vmin > bench_vmin, "{virus_vmin} !> {bench_vmin}");
        let gap = virus_vmin - bench_vmin;
        assert!((10..=20).contains(&gap), "gap = {gap} mV");
    }

    #[test]
    fn virus_sweep_needs_fewer_trials_for_the_same_boundary() {
        // Three viruses × N trials vs six benchmarks × N trials per step:
        // half the executions per step, same (actually stricter) answer.
        use serscale_workload::MicroVirus;
        let h = harness();
        let mut rng = SimRng::seed_from(22);
        let curve = h.sweep_viruses(&mut rng, Megahertz::new(2400), &MicroVirus::all_droops());
        assert_eq!(curve.points[0].trials, 300); // 3 viruses × 100
    }

    #[test]
    fn table3_from_paper_vmins() {
        let t = SafeVoltageTable::from_vmins(Millivolts::new(920), Millivolts::new(790));
        assert_eq!(t.rows.len(), 4);
        // Row 2 ("Safe"): 930 mV PMD / 925 mV SoC.
        assert_eq!(t.rows[1].2, Millivolts::new(930));
        assert_eq!(t.rows[1].3, Millivolts::new(925));
        // Row 4: 790 mV PMD with SoC at nominal.
        assert_eq!(t.rows[3].2, Millivolts::new(790));
        assert_eq!(t.rows[3].3, Millivolts::new(950));
        assert_eq!(t.rows[3].0, "Vmin 900 MHz");
    }

    #[test]
    fn platform_sweep_finds_the_zynq_anchors() {
        let spec = PlatformSpec::zynq_mpsoc();
        let harness = Characterizer::for_platform(&spec, 100);
        let mut rng = SimRng::seed_from(7);
        let hi = harness.sweep_platform(&mut rng, &spec, Megahertz::new(1500));
        let lo = harness.sweep_platform(&mut rng, &spec, Megahertz::new(600));
        // The characterization lands on (or within a step of) the spec's
        // declared anchors, and never below its sweep floor.
        for (curve, anchor) in [(&hi, 750u32), (&lo, 660)] {
            let vmin = curve.safe_vmin().expect("sweep finds a safe level");
            assert!(vmin.get().abs_diff(anchor) <= 5, "{vmin} vs {anchor} mV");
            let last = curve.points.last().expect("nonempty");
            assert!(last.voltage >= spec.sweep_floor);
        }
        assert_eq!(hi.points[0].voltage, spec.pmd_rail.nominal);
    }

    #[test]
    fn zynq_table3_pairs_its_own_rails() {
        let spec = PlatformSpec::zynq_mpsoc();
        let t = SafeVoltageTable::from_vmins_for(&spec, Millivolts::new(750), Millivolts::new(660));
        assert_eq!(t.rows[0].1, Megahertz::new(1500));
        assert_eq!(t.rows[0].3, Millivolts::new(850));
        assert_eq!(t.rows[3].0, "Vmin 600 MHz");
        assert_eq!(t.rows[3].1, Megahertz::new(600));
    }
}
