//! The undervolting timing-failure model.
//!
//! Logic delay grows as supply voltage falls; once the slowest critical
//! path no longer fits in a clock cycle, executions start failing (wrong
//! results, hangs, machine checks). Manufacturing variation smears the
//! failure point across a few millivolts, so the per-run failure
//! probability is a steep sigmoid in voltage — exactly the shape of the
//! paper's Figure 4.
//!
//! The *critical voltage* `Vc(f)` — the 50 %-failure point — moves with
//! frequency: a 900 MHz cycle is 2.67× longer than a 2.4 GHz cycle, so the
//! same paths still meet timing far deeper into undervolting. The model is
//! calibrated to the paper's two measured sweeps:
//!
//! * 2.4 GHz: safe at 920 mV, pfail rising below, 100 % at 900 mV
//!   (a 20 mV failure window);
//! * 900 MHz: safe at 790 mV, 100 % at 780 mV (a ~10 mV window —
//!   the paper notes the window is *shorter* at the lower frequency,
//!   which the model reproduces with a smaller spread).

use serde::{Deserialize, Serialize};

use serscale_soc::PlatformSpec;
use serscale_stats::ci::normal_cdf;
use serscale_stats::SimRng;
use serscale_types::{Celsius, Megahertz, Millivolts};

/// The critical-path failure model of one chip specimen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingFailureModel {
    /// Critical voltage at the calibration frequency (mV).
    vc_at_ref: f64,
    /// The calibration frequency.
    ref_frequency: Megahertz,
    /// Critical-voltage slope vs frequency (mV per MHz).
    slope_mv_per_mhz: f64,
    /// Failure-point spread at the calibration frequency (mV).
    sigma_at_ref: f64,
    /// Spread shrink factor per GHz of frequency *decrease*.
    sigma_slope: f64,
}

impl TimingFailureModel {
    /// The model calibrated to the paper's Figure 4 (see module docs).
    pub fn xgene2() -> Self {
        TimingFailureModel {
            vc_at_ref: 910.0,
            ref_frequency: Megahertz::new(2400),
            // (910 − 784) mV over (2400 − 900) MHz.
            slope_mv_per_mhz: 126.0 / 1500.0,
            sigma_at_ref: 2.2,
            sigma_slope: 0.8,
        }
    }

    /// The model a platform spec's timing-physics block declares,
    /// referenced at the spec's maximum frequency. For
    /// [`PlatformSpec::xgene2`] this is identical to
    /// [`TimingFailureModel::xgene2`].
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        Self::new(
            spec.physics.timing_vc_at_fmax_mv,
            spec.freq_max,
            spec.physics.timing_slope_mv_per_mhz,
            spec.physics.timing_sigma_at_fmax_mv,
            spec.physics.timing_sigma_slope_mv,
        )
    }

    /// Creates a model from explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if spreads or the critical voltage are not positive.
    pub fn new(
        vc_at_ref: f64,
        ref_frequency: Megahertz,
        slope_mv_per_mhz: f64,
        sigma_at_ref: f64,
        sigma_slope: f64,
    ) -> Self {
        assert!(vc_at_ref > 0.0, "critical voltage must be positive");
        assert!(sigma_at_ref > 0.0, "spread must be positive");
        assert!(sigma_slope >= 0.0, "spread slope must be non-negative");
        TimingFailureModel {
            vc_at_ref,
            ref_frequency,
            slope_mv_per_mhz,
            sigma_at_ref,
            sigma_slope,
        }
    }

    /// A copy of this model with the critical voltage shifted by
    /// `offset_mv` at every frequency — one manufacturing specimen of a
    /// chip population (see `variation`).
    pub fn with_vc_offset(&self, offset_mv: f64) -> TimingFailureModel {
        assert!(offset_mv.is_finite(), "offset must be finite");
        TimingFailureModel {
            vc_at_ref: (self.vc_at_ref + offset_mv).max(1.0),
            ..*self
        }
    }

    /// The temperature coefficient of the critical voltage, in mV/°C
    /// above the characterization temperature. Logic slows slightly when
    /// hot; the paper verified its safe Vmin was stable up to 50 °C
    /// (§3.4), which bounds the coefficient: 0.3 mV/°C keeps the shift
    /// under one regulator step across the beam-room window.
    pub const VC_TEMP_COEFF_MV_PER_C: f64 = 0.3;

    /// The characterization reference temperature (the beam-room die
    /// temperature band's midpoint).
    pub fn reference_temperature() -> Celsius {
        Celsius::new(42.5)
    }

    /// A copy of this model at a different die temperature: the critical
    /// voltage shifts by `VC_TEMP_COEFF_MV_PER_C` per °C above the
    /// reference (and conversely below it).
    pub fn at_temperature(&self, die: Celsius) -> TimingFailureModel {
        let delta = die.get() - Self::reference_temperature().get();
        self.with_vc_offset(Self::VC_TEMP_COEFF_MV_PER_C * delta)
    }

    /// The critical (50 %-failure) voltage at the given frequency, in mV.
    pub fn critical_voltage_mv(&self, frequency: Megahertz) -> f64 {
        let df = f64::from(frequency.get()) - f64::from(self.ref_frequency.get());
        self.vc_at_ref + self.slope_mv_per_mhz * df
    }

    /// The failure-point spread at the given frequency, in mV. Shrinks at
    /// lower frequencies (longer cycles leave less marginal territory).
    pub fn sigma_mv(&self, frequency: Megahertz) -> f64 {
        let dghz = (f64::from(self.ref_frequency.get()) - f64::from(frequency.get())) / 1000.0;
        (self.sigma_at_ref - self.sigma_slope * dghz).max(1.0)
    }

    /// The per-execution failure probability at the given operating
    /// conditions.
    ///
    /// ```
    /// use serscale_types::{Megahertz, Millivolts};
    /// use serscale_undervolt::TimingFailureModel;
    ///
    /// let m = TimingFailureModel::xgene2();
    /// let f = Megahertz::new(2400);
    /// assert!(m.pfail(Millivolts::new(980), f) < 1e-9); // nominal: safe
    /// assert!(m.pfail(Millivolts::new(900), f) > 0.9); // deep undervolt: dead
    /// ```
    pub fn pfail(&self, voltage: Millivolts, frequency: Megahertz) -> f64 {
        let z = (self.critical_voltage_mv(frequency) - f64::from(voltage.get()))
            / self.sigma_mv(frequency);
        normal_cdf(z)
    }

    /// The failure probability with an extra workload-induced supply droop
    /// (micro-viruses sag the rail below what benchmark-grade activity
    /// does; the droop effectively raises the failure point).
    pub fn pfail_with_droop(
        &self,
        voltage: Millivolts,
        frequency: Megahertz,
        droop_mv: f64,
    ) -> f64 {
        assert!(
            droop_mv.is_finite() && droop_mv >= 0.0,
            "droop must be non-negative"
        );
        let z = (self.critical_voltage_mv(frequency) + droop_mv - f64::from(voltage.get()))
            / self.sigma_mv(frequency);
        normal_cdf(z)
    }

    /// Samples whether one execution fails at the given conditions.
    pub fn sample_run_fails(
        &self,
        rng: &mut SimRng,
        voltage: Millivolts,
        frequency: Megahertz,
    ) -> bool {
        rng.chance(self.pfail(voltage, frequency))
    }

    /// Samples one execution under a workload-induced droop.
    pub fn sample_run_fails_with_droop(
        &self,
        rng: &mut SimRng,
        voltage: Millivolts,
        frequency: Megahertz,
        droop_mv: f64,
    ) -> bool {
        rng.chance(self.pfail_with_droop(voltage, frequency, droop_mv))
    }
}

impl Default for TimingFailureModel {
    fn default() -> Self {
        Self::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F24: Megahertz = Megahertz::new(2400);
    const F09: Megahertz = Megahertz::new(900);

    #[test]
    fn spec_built_model_matches_the_calibrated_one() {
        assert_eq!(
            TimingFailureModel::for_platform(&PlatformSpec::xgene2()),
            TimingFailureModel::xgene2()
        );
    }

    #[test]
    fn zynq_model_fails_past_its_own_vc() {
        let m = TimingFailureModel::for_platform(&PlatformSpec::zynq_mpsoc());
        let f = Megahertz::new(1500);
        assert!(m.pfail(Millivolts::new(850), f) < 1e-9);
        assert!(m.pfail(Millivolts::new(720), f) > 0.9);
    }

    #[test]
    fn critical_voltage_tracks_frequency() {
        let m = TimingFailureModel::xgene2();
        assert!((m.critical_voltage_mv(F24) - 910.0).abs() < 1e-9);
        assert!((m.critical_voltage_mv(F09) - 784.0).abs() < 1e-9);
        assert!(m.critical_voltage_mv(Megahertz::new(1500)) < 910.0);
    }

    #[test]
    fn paper_safe_points_are_safe() {
        let m = TimingFailureModel::xgene2();
        // 920 mV @ 2.4 GHz: pfail ≈ Φ(−3.5) ≈ 2e-4 — rare enough that
        // hundreds of runs pass (and the paper calls it safe).
        assert!(m.pfail(Millivolts::new(920), F24) < 1e-3);
        // 790 mV @ 900 MHz similarly.
        assert!(m.pfail(Millivolts::new(790), F09) < 1e-3);
    }

    #[test]
    fn paper_dead_points_are_dead() {
        let m = TimingFailureModel::xgene2();
        assert!(m.pfail(Millivolts::new(900), F24) > 0.9);
        assert!(m.pfail(Millivolts::new(780), F09) > 0.6);
        assert!(m.pfail(Millivolts::new(775), F09) > 0.98);
    }

    #[test]
    fn failure_window_shorter_at_900mhz() {
        // Fig. 4: the pfail ramp spans ~20 mV at 2.4 GHz but only ~10 mV at
        // 900 MHz.
        let m = TimingFailureModel::xgene2();
        assert!(m.sigma_mv(F09) < m.sigma_mv(F24));
    }

    #[test]
    fn pfail_monotone_decreasing_in_voltage() {
        let m = TimingFailureModel::xgene2();
        let mut prev = 1.1;
        for mv in (860..=980).step_by(5) {
            let p = m.pfail(Millivolts::new(mv), F24);
            assert!(p <= prev, "{mv} mV");
            prev = p;
        }
    }

    #[test]
    fn sampling_matches_probability() {
        let m = TimingFailureModel::xgene2();
        let mut rng = SimRng::seed_from(3);
        let v = Millivolts::new(905);
        let p = m.pfail(v, F24);
        let n = 20_000;
        let fails = (0..n)
            .filter(|_| m.sample_run_fails(&mut rng, v, F24))
            .count();
        let freq = fails as f64 / n as f64;
        assert!((freq - p).abs() < 0.02, "{freq} vs {p}");
    }

    #[test]
    fn droop_raises_the_failure_point() {
        let m = TimingFailureModel::xgene2();
        let v = Millivolts::new(920);
        let clean = m.pfail(v, F24);
        let sagged = m.pfail_with_droop(v, F24, 12.0);
        assert!(sagged > clean);
        // 12 mV of droop at 920 mV looks like running at 908 mV.
        let equivalent = m.pfail(Millivolts::new(908), F24);
        assert!((sagged - equivalent).abs() < 1e-12);
        // Zero droop degenerates to the plain pfail.
        assert_eq!(m.pfail_with_droop(v, F24, 0.0), clean);
    }

    #[test]
    fn vc_offset_shifts_the_whole_curve() {
        let m = TimingFailureModel::xgene2();
        let fast = m.with_vc_offset(-10.0);
        let slow = m.with_vc_offset(10.0);
        assert!((fast.critical_voltage_mv(F24) - 900.0).abs() < 1e-9);
        assert!((slow.critical_voltage_mv(F09) - 794.0).abs() < 1e-9);
        // A slower chip fails earlier at every voltage.
        let v = Millivolts::new(915);
        assert!(slow.pfail(v, F24) > m.pfail(v, F24));
        assert!(fast.pfail(v, F24) < m.pfail(v, F24));
    }

    #[test]
    fn vmin_stable_up_to_50_celsius() {
        // §3.4: "the safe Vmin was not affected up to 50 °C". At the
        // paper's Vmin (920 mV) the hot-die failure probability must stay
        // characterization-grade small.
        let m = TimingFailureModel::xgene2();
        let hot = m.at_temperature(Celsius::new(50.0));
        assert!(hot.pfail(Millivolts::new(920), F24) < 1e-3);
        // And the shift stays under one regulator step across the window.
        let shift = hot.critical_voltage_mv(F24) - m.critical_voltage_mv(F24);
        assert!(shift > 0.0 && shift < 5.0, "shift = {shift} mV");
    }

    #[test]
    fn cold_die_gains_margin() {
        let m = TimingFailureModel::xgene2();
        let cold = m.at_temperature(Celsius::new(20.0));
        assert!(cold.critical_voltage_mv(F24) < m.critical_voltage_mv(F24));
        let v = Millivolts::new(915);
        assert!(cold.pfail(v, F24) < m.pfail(v, F24));
    }

    #[test]
    fn sigma_floor() {
        let m = TimingFailureModel::new(900.0, Megahertz::new(2400), 0.1, 1.5, 10.0);
        // Extremely low frequency: sigma clamps at 1 mV, never non-positive.
        assert_eq!(m.sigma_mv(Megahertz::new(300)), 1.0);
    }
}
