//! Chip-to-chip variation: fleet-scale Vmin characterization.
//!
//! The paper characterizes one specimen; its related work (§7 — Kaliorakis
//! \[36\], Karakonstantis \[37\], Tovletoglou \[74\]) measures *populations* of
//! chips and finds the safe Vmin varies part to part. For a datacenter
//! operator this is the operative question: the fleet's safe undervolt is
//! set by its *weakest* chip unless voltages are managed per node.
//!
//! [`ChipPopulation`] draws per-specimen [`TimingFailureModel`]s around
//! the golden model (critical voltage shifted by a normal process spread),
//! and [`FleetCharacterization`] runs the §4.1 sweep on every specimen to
//! produce the fleet Vmin distribution and the uniform-vs-per-chip energy
//! comparison.

use serde::{Deserialize, Serialize};

use serscale_stats::summary::Summary;
use serscale_stats::SimRng;
use serscale_types::{Megahertz, Millivolts};

use crate::characterize::Characterizer;
use crate::timing::TimingFailureModel;

/// A manufacturing population of chips around a golden timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipPopulation {
    /// The typical specimen.
    golden: TimingFailureModel,
    /// Chip-to-chip sigma of the critical voltage (mV).
    vc_sigma_mv: f64,
}

impl ChipPopulation {
    /// A population around the paper's specimen with an 8 mV chip-to-chip
    /// spread — the order reported by multi-chip studies on the same
    /// platform family (\[74\] measured guardbands differing by tens of mV
    /// across server-grade Armv8 parts).
    pub fn xgene2_fleet() -> Self {
        ChipPopulation {
            golden: TimingFailureModel::xgene2(),
            vc_sigma_mv: 8.0,
        }
    }

    /// Creates a population.
    ///
    /// # Panics
    ///
    /// Panics if `vc_sigma_mv` is negative or non-finite.
    pub fn new(golden: TimingFailureModel, vc_sigma_mv: f64) -> Self {
        assert!(
            vc_sigma_mv.is_finite() && vc_sigma_mv >= 0.0,
            "chip spread must be finite and non-negative"
        );
        ChipPopulation {
            golden,
            vc_sigma_mv,
        }
    }

    /// The chip-to-chip critical-voltage sigma.
    pub const fn vc_sigma_mv(&self) -> f64 {
        self.vc_sigma_mv
    }

    /// Draws one specimen: the golden model with its critical voltage
    /// shifted by a process offset (same shift at every frequency — the
    /// dominant mode in silicon is a chip-wide speed grade).
    pub fn sample_chip(&self, rng: &mut SimRng) -> TimingFailureModel {
        let offset = rng.normal(0.0, self.vc_sigma_mv);
        self.golden.with_vc_offset(offset)
    }
}

/// The fleet-wide characterization outcome at one frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCharacterization {
    /// The swept frequency.
    pub frequency: Megahertz,
    /// Per-chip safe Vmins, in specimen order.
    pub vmins: Vec<Millivolts>,
}

impl FleetCharacterization {
    /// Characterizes `chips` specimens with the given per-chip sweep
    /// effort.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    pub fn run(
        rng: &mut SimRng,
        population: &ChipPopulation,
        frequency: Megahertz,
        chips: u32,
        trials_per_benchmark: u32,
    ) -> Self {
        assert!(chips > 0, "need at least one chip");
        let mut vmins = Vec::with_capacity(chips as usize);
        for chip in 0..chips {
            let mut chip_rng = rng.fork_indexed("chip", u64::from(chip));
            let specimen = population.sample_chip(&mut chip_rng);
            let harness = Characterizer::new(specimen, trials_per_benchmark);
            let curve = harness.sweep(&mut chip_rng, frequency);
            // A specimen whose sweep fails immediately has no safe level
            // below nominal; it pins the fleet at nominal.
            vmins.push(curve.safe_vmin().unwrap_or(Millivolts::new(980)));
        }
        FleetCharacterization { frequency, vmins }
    }

    /// The number of characterized chips.
    pub fn chips(&self) -> usize {
        self.vmins.len()
    }

    /// The fleet-safe uniform undervolt: the *maximum* (weakest-chip)
    /// Vmin.
    pub fn uniform_safe_vmin(&self) -> Millivolts {
        *self.vmins.iter().max().expect("at least one chip")
    }

    /// The strongest chip's Vmin.
    pub fn best_chip_vmin(&self) -> Millivolts {
        *self.vmins.iter().min().expect("at least one chip")
    }

    /// Mean and standard deviation of the per-chip Vmins, in mV.
    pub fn vmin_stats(&self) -> (f64, f64) {
        let s: Summary = self.vmins.iter().map(|v| f64::from(v.get())).collect();
        let sd = if s.count() > 1 {
            s.sample_std_dev()
        } else {
            0.0
        };
        (s.mean(), sd)
    }

    /// The per-chip-management dividend: how many extra millivolts the
    /// *average* chip can drop below the uniform fleet setting when every
    /// node is driven at its own Vmin (as the adaptive schemes in \[43\],
    /// \[49\] do).
    pub fn per_chip_dividend_mv(&self) -> f64 {
        let (mean, _) = self.vmin_stats();
        f64::from(self.uniform_safe_vmin().get()) - mean
    }

    /// Histogram of Vmins on the 5 mV grid, as `(voltage, count)` in
    /// ascending-voltage order.
    pub fn histogram(&self) -> Vec<(Millivolts, u32)> {
        let mut out: Vec<(Millivolts, u32)> = Vec::new();
        let mut sorted = self.vmins.clone();
        sorted.sort();
        for v in sorted {
            match out.last_mut() {
                Some((bin, count)) if *bin == v => *count += 1,
                _ => out.push((v, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(seed: u64, chips: u32) -> FleetCharacterization {
        let mut rng = SimRng::seed_from(seed);
        FleetCharacterization::run(
            &mut rng,
            &ChipPopulation::xgene2_fleet(),
            Megahertz::new(2400),
            chips,
            40,
        )
    }

    #[test]
    fn fleet_vmins_spread_around_the_papers_chip() {
        let f = fleet(1, 40);
        let (mean, sd) = f.vmin_stats();
        // The paper's specimen (920 mV) sits inside the fleet spread.
        assert!((mean - 920.0).abs() < 10.0, "mean = {mean}");
        assert!(sd > 3.0 && sd < 15.0, "sd = {sd}");
    }

    #[test]
    fn uniform_setting_is_pinned_by_the_weakest_chip() {
        let f = fleet(2, 40);
        assert!(f.uniform_safe_vmin() >= Millivolts::new(920));
        assert!(f.uniform_safe_vmin() > f.best_chip_vmin());
        for v in &f.vmins {
            assert!(*v <= f.uniform_safe_vmin());
        }
    }

    #[test]
    fn per_chip_management_pays() {
        let f = fleet(3, 40);
        // With an 8 mV chip sigma, driving each chip at its own Vmin buys
        // the average node a measurable extra undervolt.
        let dividend = f.per_chip_dividend_mv();
        assert!(dividend > 5.0, "dividend = {dividend} mV");
        assert!(dividend < 60.0, "dividend = {dividend} mV");
    }

    #[test]
    fn histogram_counts_all_chips() {
        let f = fleet(4, 25);
        let total: u32 = f.histogram().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 25);
        // Bins ascend.
        for pair in f.histogram().windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn zero_spread_population_is_uniform() {
        let pop = ChipPopulation::new(TimingFailureModel::xgene2(), 0.0);
        let mut rng = SimRng::seed_from(5);
        let f = FleetCharacterization::run(&mut rng, &pop, Megahertz::new(2400), 10, 60);
        let (_, sd) = f.vmin_stats();
        assert!(sd < 3.0, "sd = {sd}");
    }

    #[test]
    fn characterization_is_deterministic() {
        assert_eq!(fleet(6, 10), fleet(6, 10));
    }
}
