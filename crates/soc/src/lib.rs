//! # serscale-soc
//!
//! A structural model of the X-Gene-2-class multicore server SoC the paper
//! irradiated (Table 1, Figure 1):
//!
//! * [`spec`] — declarative platform descriptions: the validated
//!   [`spec::PlatformSpec`] schema (arrays, rails, grids, campaign points,
//!   physics calibration) with the X-Gene 2 and a Zynq UltraScale+ MPSoC
//!   profile built in.
//! * [`platform`] — the die built from a spec: for the X-Gene 2, 8 Armv8
//!   cores in 4 dual-core PMDs, per-core parity-protected L1I/L1D and
//!   TLBs, per-pair SECDED L2, shared SECDED L3, two scalable voltage
//!   domains (PMD from 980 mV, SoC from 950 mV, 5 mV steps) and per-PMD
//!   frequency (300–2400 MHz in 300 MHz steps).
//! * [`power`] — the package power model `P = Σ(dyn·(V/V₀)²·(f/f₀) +
//!   static·(V/V₀))` per domain, least-squares calibrated against the four
//!   operating points Figure 9 reports (max residual 0.25 W).
//! * [`edac`] — the error-detection-and-correction log: the Linux-EDAC-like
//!   stream of corrected/uncorrected events per array that the campaign
//!   harvests (§4.2).
//! * [`logic`] — soft-error susceptibility of the *unprotected* core logic,
//!   split into control-path faults (→ crashes) and datapath faults
//!   (→ SDCs), with the near-Vmin timing-margin amplification that makes
//!   the SDC rate explode at the lowest safe voltage (§6, Design
//!   implication #4).
//!
//! ## Example
//!
//! ```
//! use serscale_soc::platform::XGene2;
//! use serscale_types::{CacheLevel, Millivolts};
//!
//! let soc = XGene2::new();
//! // Table 1 geometry: 8 cores, 8 MiB shared L3.
//! assert_eq!(soc.cores(), 8);
//! let l3_bits: u64 = soc
//!     .arrays()
//!     .filter(|a| a.kind().cache_level() == CacheLevel::L3)
//!     .map(|a| a.data_bits().get())
//!     .sum();
//! assert_eq!(l3_bits, 8 * 1024 * 1024 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvfs;
pub mod edac;
pub mod logic;
pub mod platform;
pub mod power;
pub mod slimpro;
pub mod spec;
pub mod thermal;

pub use dvfs::{DvfsTable, PState};
pub use edac::{EdacLog, EdacRecord, EdacSeverity};
pub use logic::LogicSusceptibility;
pub use platform::{OperatingPoint, Platform, XGene2};
pub use power::PowerModel;
pub use slimpro::SlimPro;
pub use spec::{PlatformSpec, RawPlatformSpec, SpecError};
pub use thermal::ThermalModel;
