//! Die-temperature bookkeeping.
//!
//! The paper ran its campaign "in a temperature-aware manner": the DUT sat
//! at 40–45 °C under beam (verified by periodic measurements), and the
//! offline characterization confirmed the safe Vmin did not move up to
//! 50 °C (§3.4). This module provides the corresponding model: a
//! junction-to-ambient thermal resistance turning package power into die
//! temperature, and the safe-window check the campaign harness performs.

use serde::{Deserialize, Serialize};

use serscale_types::{Celsius, Watts};

/// A lumped thermal model: `T_die = T_ambient + θJA · P`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    ambient: Celsius,
    /// Junction-to-ambient thermal resistance (°C/W).
    theta_ja: f64,
}

impl ThermalModel {
    /// The beam-room setup: ~20 °C room, a server-heatsink ~1.1 °C/W —
    /// which puts the die at 42–43 °C at the 20.4 W nominal draw, inside
    /// the paper's measured 40–45 °C band.
    pub fn beam_room() -> Self {
        ThermalModel {
            ambient: Celsius::new(20.0),
            theta_ja: 1.1,
        }
    }

    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `theta_ja` is not positive and finite.
    pub fn new(ambient: Celsius, theta_ja: f64) -> Self {
        assert!(
            theta_ja.is_finite() && theta_ja > 0.0,
            "θJA must be positive"
        );
        ThermalModel { ambient, theta_ja }
    }

    /// The ambient temperature.
    pub const fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// The junction-to-ambient resistance in °C/W.
    pub const fn theta_ja(&self) -> f64 {
        self.theta_ja
    }

    /// Die temperature at a package power draw.
    pub fn die_temperature(&self, power: Watts) -> Celsius {
        Celsius::new(self.ambient.get() + self.theta_ja * power.get())
    }

    /// The paper's Vmin-stability ceiling: the characterization verified
    /// the safe Vmin up to 50 °C; above it the campaign's attribution
    /// argument (errors ⇒ radiation) would no longer hold.
    pub fn vmin_stable_ceiling() -> Celsius {
        Celsius::new(50.0)
    }

    /// Whether a power draw keeps the die inside the Vmin-stable window.
    pub fn within_vmin_stable_window(&self, power: Watts) -> bool {
        self.die_temperature(power) <= Self::vmin_stable_ceiling()
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::beam_room()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::OperatingPoint;
    use crate::PowerModel;

    #[test]
    fn nominal_draw_lands_in_the_papers_band() {
        let thermal = ThermalModel::beam_room();
        let power = PowerModel::xgene2().total_power(OperatingPoint::nominal());
        let t = thermal.die_temperature(power);
        assert!(
            t.is_within(Celsius::new(40.0), Celsius::new(45.0)),
            "die at {t} for {power}"
        );
    }

    #[test]
    fn every_campaign_point_is_vmin_stable() {
        // Lower-power points run cooler, so the whole campaign stays
        // inside the 50 °C stability window the paper verified.
        let thermal = ThermalModel::beam_room();
        let power_model = PowerModel::xgene2();
        for point in OperatingPoint::CAMPAIGN {
            let power = power_model.total_power(point);
            assert!(
                thermal.within_vmin_stable_window(power),
                "{} at {}",
                point.label(),
                thermal.die_temperature(power)
            );
        }
    }

    #[test]
    fn undervolting_cools_the_die() {
        let thermal = ThermalModel::beam_room();
        let power_model = PowerModel::xgene2();
        let hot = thermal.die_temperature(power_model.total_power(OperatingPoint::nominal()));
        let cool = thermal.die_temperature(power_model.total_power(OperatingPoint::vmin_900()));
        assert!(cool < hot);
        assert!(hot.get() - cool.get() > 8.0, "{hot} vs {cool}");
    }

    #[test]
    fn hot_ambient_violates_the_window() {
        let desert = ThermalModel::new(Celsius::new(45.0), 1.1);
        let power = PowerModel::xgene2().total_power(OperatingPoint::nominal());
        assert!(!desert.within_vmin_stable_window(power));
    }
}
