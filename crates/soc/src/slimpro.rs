//! The SLIMpro management processor interface.
//!
//! §3.1: "The dedicated SLIMpro processor uses an I2C interface to
//! communicate with system sensors and peripherals to monitor and
//! configure the system attributes, such as supply voltage and the DRAM
//! refresh rate. It also gathers health status reports, such as soft error
//! events in the microprocessor's L1, L2, and L3 caches."
//!
//! This module is that control path: a mailbox command interface through
//! which the host (or the campaign's Control-PC, over the BMC) sets rail
//! voltages with full validation, reads sensors, and drains the EDAC
//! health log — the way the real undervolting tooling for this platform
//! (\[57\]) actually drove it.

use serde::{Deserialize, Serialize};

use serscale_types::{Celsius, Megahertz, Millivolts, VoltageDomain, Watts};

use crate::edac::{EdacLog, EdacRecord};
use crate::platform::{OperatingPoint, Platform, XGene2};
use crate::power::PowerModel;
use crate::spec::PlatformSpec;
use crate::thermal::ThermalModel;

/// A mailbox command to the management processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Set one voltage rail (5 mV granularity, validated).
    SetVoltage {
        /// Which rail.
        domain: VoltageDomain,
        /// The requested level.
        level: Millivolts,
    },
    /// Set the (global, in our campaign configuration) PMD clock.
    SetFrequency {
        /// The requested clock.
        frequency: Megahertz,
    },
    /// Read the sensor block (voltages, frequency, power, die temp).
    ReadSensors,
    /// Drain the EDAC health log.
    ReadHealthLog,
}

/// A mailbox response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The command was applied.
    Ack,
    /// The sensor block.
    Sensors(SensorBlock),
    /// The drained health records.
    HealthLog(Vec<EdacRecord>),
    /// The command was rejected (reason mirrors the regulator/PLL
    /// validation of the platform model).
    Rejected {
        /// Why.
        reason: String,
    },
}

/// The sensor snapshot `ReadSensors` returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorBlock {
    /// PMD rail voltage.
    pub pmd: Millivolts,
    /// SoC rail voltage.
    pub soc: Millivolts,
    /// PMD clock.
    pub frequency: Megahertz,
    /// Modelled package power at the current point.
    pub power: Watts,
    /// Modelled die temperature.
    pub die_temperature: Celsius,
}

/// The management processor: owns the current operating point and the
/// health log the hardware pushes into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlimPro {
    platform: Platform,
    power_model: PowerModel,
    thermal: ThermalModel,
    point: OperatingPoint,
    health_log: EdacLog,
}

impl SlimPro {
    /// Boots the management processor at the X-Gene 2's nominal
    /// conditions.
    pub fn new() -> Self {
        SlimPro {
            platform: XGene2::new(),
            power_model: PowerModel::xgene2(),
            thermal: ThermalModel::beam_room(),
            point: OperatingPoint::nominal(),
            health_log: EdacLog::new(),
        }
    }

    /// Boots the management processor of an arbitrary platform at that
    /// platform's nominal conditions.
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        SlimPro {
            platform: Platform::from_spec(spec),
            power_model: PowerModel::for_platform(spec),
            thermal: ThermalModel::beam_room(),
            point: spec.nominal_point(),
            health_log: EdacLog::new(),
        }
    }

    /// The current operating point.
    pub const fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// Hardware-side hook: the EDAC machinery pushes a record into the
    /// health log.
    pub fn report_health(&mut self, record: EdacRecord) {
        self.health_log.push(record);
    }

    /// Processes one mailbox command.
    pub fn execute(&mut self, command: Command) -> Response {
        match command {
            Command::SetVoltage { domain, level } => {
                let mut candidate = self.point;
                match domain {
                    VoltageDomain::Pmd => candidate.pmd = level,
                    VoltageDomain::Soc => candidate.soc = level,
                    VoltageDomain::Standby => {
                        return Response::Rejected {
                            reason: "the standby rail is not software controlled".into(),
                        }
                    }
                }
                match self.platform.validate(candidate) {
                    Ok(()) => {
                        self.point = candidate;
                        Response::Ack
                    }
                    Err(e) => Response::Rejected {
                        reason: e.to_string(),
                    },
                }
            }
            Command::SetFrequency { frequency } => {
                let candidate = OperatingPoint {
                    frequency,
                    ..self.point
                };
                match self.platform.validate(candidate) {
                    Ok(()) => {
                        self.point = candidate;
                        Response::Ack
                    }
                    Err(e) => Response::Rejected {
                        reason: e.to_string(),
                    },
                }
            }
            Command::ReadSensors => {
                let power = self.power_model.total_power(self.point);
                Response::Sensors(SensorBlock {
                    pmd: self.point.pmd,
                    soc: self.point.soc,
                    frequency: self.point.frequency,
                    power,
                    die_temperature: self.thermal.die_temperature(power),
                })
            }
            Command::ReadHealthLog => Response::HealthLog(self.health_log.drain()),
        }
    }

    /// Convenience: drive the chip to a full operating point (the paper's
    /// session transitions), one validated command per knob.
    ///
    /// # Errors
    ///
    /// Returns the first rejection reason if any knob is refused; prior
    /// knobs keep their new values (exactly what a half-applied mailbox
    /// sequence does on real hardware — the caller re-reads the sensors).
    pub fn apply_point(&mut self, target: OperatingPoint) -> Result<(), String> {
        // Frequency first: raising voltage for a faster clock must precede
        // the clock change; we only ever descend in the campaign, so the
        // simple order is safe for its transitions.
        for command in [
            Command::SetFrequency {
                frequency: target.frequency,
            },
            Command::SetVoltage {
                domain: VoltageDomain::Pmd,
                level: target.pmd,
            },
            Command::SetVoltage {
                domain: VoltageDomain::Soc,
                level: target.soc,
            },
        ] {
            if let Response::Rejected { reason } = self.execute(command) {
                return Err(reason);
            }
        }
        Ok(())
    }
}

impl Default for SlimPro {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edac::EdacSeverity;
    use serscale_types::{ArrayKind, SimInstant};

    #[test]
    fn boots_at_nominal() {
        let sp = SlimPro::new();
        assert_eq!(sp.operating_point(), OperatingPoint::nominal());
    }

    #[test]
    fn campaign_transitions_apply() {
        let mut sp = SlimPro::new();
        for target in OperatingPoint::CAMPAIGN {
            sp.apply_point(target)
                .unwrap_or_else(|e| panic!("{}: {e}", target.label()));
            assert_eq!(sp.operating_point(), target);
        }
    }

    #[test]
    fn rejects_off_grid_voltage_without_side_effects() {
        let mut sp = SlimPro::new();
        let before = sp.operating_point();
        let r = sp.execute(Command::SetVoltage {
            domain: VoltageDomain::Pmd,
            level: Millivolts::new(923),
        });
        assert!(matches!(r, Response::Rejected { .. }), "{r:?}");
        assert_eq!(sp.operating_point(), before);
    }

    #[test]
    fn rejects_overvolting_and_standby_control() {
        let mut sp = SlimPro::new();
        let over = sp.execute(Command::SetVoltage {
            domain: VoltageDomain::Pmd,
            level: Millivolts::new(1005),
        });
        assert!(matches!(over, Response::Rejected { .. }));
        let standby = sp.execute(Command::SetVoltage {
            domain: VoltageDomain::Standby,
            level: Millivolts::new(900),
        });
        assert!(matches!(standby, Response::Rejected { .. }));
    }

    #[test]
    fn sensors_track_the_operating_point() {
        let mut sp = SlimPro::new();
        sp.apply_point(OperatingPoint::vmin_900()).unwrap();
        match sp.execute(Command::ReadSensors) {
            Response::Sensors(s) => {
                assert_eq!(s.pmd, Millivolts::new(790));
                assert_eq!(s.frequency, Megahertz::new(900));
                assert!(s.power.get() < 11.0, "power = {}", s.power);
                assert!(s.die_temperature < Celsius::new(45.0));
            }
            other => panic!("expected sensors, got {other:?}"),
        }
    }

    #[test]
    fn health_log_drains_once() {
        let mut sp = SlimPro::new();
        sp.report_health(EdacRecord {
            time: SimInstant::from_secs(1.0),
            array: ArrayKind::L3Shared,
            severity: EdacSeverity::Corrected,
        });
        match sp.execute(Command::ReadHealthLog) {
            Response::HealthLog(records) => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
        match sp.execute(Command::ReadHealthLog) {
            Response::HealthLog(records) => assert!(records.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zynq_slimpro_enforces_its_own_rails() {
        let spec = PlatformSpec::zynq_mpsoc();
        let mut sp = SlimPro::for_platform(&spec);
        assert_eq!(sp.operating_point(), spec.nominal_point());
        // 980 mV is legal on the X-Gene but above the Zynq 850 mV nominal.
        let r = sp.execute(Command::SetVoltage {
            domain: VoltageDomain::Pmd,
            level: Millivolts::new(980),
        });
        assert!(matches!(r, Response::Rejected { .. }), "{r:?}");
        for c in &spec.campaign {
            sp.apply_point(c.point)
                .unwrap_or_else(|e| panic!("{}: {e}", c.label));
        }
    }

    #[test]
    fn bad_frequency_rejected() {
        let mut sp = SlimPro::new();
        let r = sp.execute(Command::SetFrequency {
            frequency: Megahertz::new(1000),
        });
        assert!(matches!(r, Response::Rejected { .. }));
    }
}
