//! Declarative platform specifications.
//!
//! The die modelled by [`crate::platform`] used to be baked into a
//! constructor; this module turns it into *data*. A platform arrives as a
//! permissive [`RawPlatformSpec`] (every field optional, every number a raw
//! `f64` — the untrusted wire shape), and `TryFrom` narrows it into a
//! [`PlatformSpec`] whose every field is finite, on-grid, and mutually
//! consistent — or fails with a [`SpecError`] naming the offending field
//! (dotted path, e.g. `arrays[3].interleave`) and how to fix it. The same
//! two-stage pattern as `serscale-core`'s campaign specs.
//!
//! Two platforms ship built in: [`PlatformSpec::xgene2`], which reproduces
//! the paper's X-Gene 2 constructor bit-identically, and
//! [`PlatformSpec::zynq_mpsoc`], a Zynq UltraScale+ MPSoC profile after
//! Agiakatsikas et al.'s atmospheric-neutron assessment of the quad
//! Cortex-A53 APU.

use serde::{Deserialize, Serialize};

use serscale_ecc::ProtectionScheme;
use serscale_types::{ArrayKind, Bytes, Error, Megahertz, Millivolts, Result};

use crate::platform::OperatingPoint;

/// Largest f64 that still represents every integer exactly (2^53).
const EXACT_INT_MAX: f64 = 9_007_199_254_740_992.0;

/// A spec field that failed validation, with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending field (dotted path, e.g. `arrays[3].interleave`).
    pub field: String,
    /// What was wrong and what would be accepted.
    pub reason: String,
}

impl SpecError {
    /// Builds an error naming the offending `field` (dotted path) and why
    /// it was rejected. Public so wire-format front-ends (JSON parsing in
    /// `serscale-telemetry`) can speak the same error language as the
    /// schema itself.
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SpecError {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "platform spec field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// Checks that `value` is finite and integer-valued in `[min, max]`.
fn integer_in(field: &str, value: f64, min: f64, max: f64, hint: &str) -> Result2<u64> {
    if !value.is_finite() {
        return Err(SpecError::new(
            field,
            format!("{value} is not a finite number; {hint}"),
        ));
    }
    if value.fract() != 0.0 || !(min..=max).contains(&value) {
        return Err(SpecError::new(
            field,
            format!("{value} is not an integer in [{min}, {max}]; {hint}"),
        ));
    }
    Ok(value as u64)
}

/// Checks that `value` is finite and inside `[min, max]`.
fn finite_in(field: &str, value: f64, min: f64, max: f64, hint: &str) -> Result2<f64> {
    if !value.is_finite() || !(min..=max).contains(&value) {
        return Err(SpecError::new(
            field,
            format!("{value} is not a finite number in [{min}, {max}]; {hint}"),
        ));
    }
    Ok(value)
}

/// Checks a name-like identifier: 1–64 chars of `[A-Za-z0-9._-]`.
fn identifier(field: &str, value: &str) -> Result2<String> {
    let ok = !value.is_empty()
        && value.len() <= 64
        && value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(value.to_string())
    } else {
        Err(SpecError::new(
            field,
            format!("{value:?} is not a valid identifier; use 1-64 characters of [A-Za-z0-9._-]"),
        ))
    }
}

/// Checks a short human-readable label: 1–128 printable ASCII chars.
fn label(field: &str, value: &str) -> Result2<String> {
    let ok =
        !value.is_empty() && value.len() <= 128 && value.chars().all(|c| matches!(c, ' '..='~'));
    if ok {
        Ok(value.to_string())
    } else {
        Err(SpecError::new(
            field,
            format!("{value:?} is not a printable label of 1-128 ASCII characters"),
        ))
    }
}

type Result2<T> = std::result::Result<T, SpecError>;

/// A required raw field, or a structured "field is missing" error.
fn required<T: Clone>(field: &str, value: &Option<T>) -> Result2<T> {
    value
        .clone()
        .ok_or_else(|| SpecError::new(field, "required field is missing"))
}

// ---------------------------------------------------------------------------
// Raw (wire-side) carriers
// ---------------------------------------------------------------------------

/// The permissive wire-side carrier for a platform spec.
///
/// Every field is optional and every number a raw `f64`, so parsing a
/// document never fails on *values* — all judgment lives in the
/// [`TryFrom`] conversion to [`PlatformSpec`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawPlatformSpec {
    /// Platform identifier (sanitized, e.g. `xgene2`).
    pub name: Option<String>,
    /// One-line human description.
    pub description: Option<String>,
    /// ISA string for the Table 1 rendering (e.g. `Armv8 (AArch64)`).
    pub isa: Option<String>,
    /// Pipeline description, without the core count (e.g.
    /// `64-bit OoO (4-issue)`).
    pub pipeline: Option<String>,
    /// TDP / process string for Table 1 (e.g. `35 W / 28 nm`).
    pub technology: Option<String>,
    /// Number of cores on the die (integer ≥ 1).
    pub cores: Option<f64>,
    /// Cores per PMD / frequency-control cluster; must divide `cores`.
    pub cores_per_pmd: Option<f64>,
    /// Modelled bytes per TLB entry (tag + translation + attributes).
    pub tlb_entry_bytes: Option<f64>,
    /// SRAM array inventory.
    pub arrays: Option<Vec<RawArraySpec>>,
    /// PMD (core) voltage rail.
    pub pmd_rail: Option<RawRailSpec>,
    /// SoC (uncore) voltage rail.
    pub soc_rail: Option<RawRailSpec>,
    /// Standby-rail voltage in millivolts (defaults to the SoC nominal).
    pub standby_mv: Option<f64>,
    /// Lowest PLL frequency, MHz (on the 300 MHz grid).
    pub freq_min_mhz: Option<f64>,
    /// Highest PLL frequency, MHz (on the 300 MHz grid).
    pub freq_max_mhz: Option<f64>,
    /// The platform's reference beam-campaign schedule (first entry is the
    /// nominal point).
    pub campaign: Option<Vec<RawCampaignPointSpec>>,
    /// The two measured Vmin anchors the linear Vmin(f) rule interpolates.
    pub vmin: Option<RawVminAnchors>,
    /// Physics calibration (SRAM, MBU, logic, timing, detection).
    pub physics: Option<RawPhysicsSpec>,
    /// Power-model constants.
    pub power: Option<RawPowerSpec>,
    /// DVFS voltage-rule floor, millivolts.
    pub dvfs_floor_mv: Option<f64>,
    /// Undervolting-sweep backstop floor, millivolts.
    pub sweep_floor_mv: Option<f64>,
}

/// One SRAM array entry of the raw inventory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawArraySpec {
    /// Array kind token: `L1I`, `L1D`, `DTLB`, `ITLB`, `L2TLB`, `L2`, `L3`.
    pub kind: Option<String>,
    /// Owner scope: `core`, `pmd`, or `shared`.
    pub scope: Option<String>,
    /// Capacity in bytes (exclusive with `entries`).
    pub bytes: Option<f64>,
    /// Capacity in TLB entries of `tlb_entry_bytes` each (exclusive with
    /// `bytes`).
    pub entries: Option<f64>,
    /// Protection token: `none`, `parity`, or `secded`.
    pub protection: Option<String>,
    /// Physical interleaving degree (integer ≥ 1; 1 = none).
    pub interleave: Option<f64>,
    /// Table 1 annotation (e.g. `Write-Back`).
    pub note: Option<String>,
}

/// A raw voltage rail: nominal and validation floor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawRailSpec {
    /// Nominal voltage, millivolts (5 mV grid).
    pub nominal_mv: Option<f64>,
    /// Lowest voltage `validate` accepts, millivolts (5 mV grid).
    pub floor_mv: Option<f64>,
}

/// One raw campaign operating point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawCampaignPointSpec {
    /// Row label (e.g. `Nominal`, `Vmin 900 MHz`).
    pub label: Option<String>,
    /// PMD voltage, millivolts.
    pub pmd_mv: Option<f64>,
    /// SoC voltage, millivolts.
    pub soc_mv: Option<f64>,
    /// Clock frequency, MHz.
    pub freq_mhz: Option<f64>,
    /// Paper-reference beam minutes at this point.
    pub minutes: Option<f64>,
}

/// The raw two-anchor Vmin(f) rule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawVminAnchors {
    /// Low-frequency anchor, MHz.
    pub low_freq_mhz: Option<f64>,
    /// Measured Vmin at the low anchor, millivolts.
    pub low_mv: Option<f64>,
    /// High-frequency anchor, MHz.
    pub high_freq_mhz: Option<f64>,
    /// Measured Vmin at the high anchor, millivolts.
    pub high_mv: Option<f64>,
}

/// Raw physics calibration numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawPhysicsSpec {
    /// Per-bit SRAM cross-section at nominal voltage, cm².
    pub sram_sigma_bit_cm2: Option<f64>,
    /// Exponential voltage sensitivity of the SRAM cross-section.
    pub sram_voltage_sensitivity: Option<f64>,
    /// Extra-cell MBU probability at nominal voltage.
    pub mbu_p_extra: Option<f64>,
    /// Largest modelled MBU cluster (integer ≥ 1).
    pub mbu_max_cluster: Option<f64>,
    /// Control-logic cross-section at nominal, cm².
    pub logic_sigma_ctrl_cm2: Option<f64>,
    /// Datapath-logic cross-section at nominal, cm².
    pub logic_sigma_data_cm2: Option<f64>,
    /// Exponential voltage sensitivity of logic cross-sections.
    pub logic_voltage_sensitivity: Option<f64>,
    /// Near-Vmin amplification factor (§5's 13×).
    pub logic_amplification: Option<f64>,
    /// Margin decay constant of the amplification, millivolts.
    pub logic_margin_tau_mv: Option<f64>,
    /// Frequency exponent of the logic susceptibility.
    pub logic_frequency_gamma: Option<f64>,
    /// Timing-failure critical voltage at `freq_max`, millivolts.
    pub timing_vc_at_fmax_mv: Option<f64>,
    /// Critical-voltage slope, millivolts per MHz.
    pub timing_slope_mv_per_mhz: Option<f64>,
    /// Critical-voltage spread at `freq_max`, millivolts.
    pub timing_sigma_at_fmax_mv: Option<f64>,
    /// Spread growth per GHz below `freq_max`, millivolts.
    pub timing_sigma_slope_mv: Option<f64>,
    /// Observable-error detection efficiency, TLBs.
    pub detect_tlb: Option<f64>,
    /// Observable-error detection efficiency, L1 caches.
    pub detect_l1: Option<f64>,
    /// Observable-error detection efficiency, L2 caches.
    pub detect_l2: Option<f64>,
    /// Observable-error detection efficiency, L3 / shared arrays.
    pub detect_l3: Option<f64>,
}

/// Raw power-model constants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawPowerSpec {
    /// PMD-domain dynamic power at nominal V/f, watts.
    pub pmd_dynamic_w: Option<f64>,
    /// PMD-domain static power at nominal V, watts.
    pub pmd_static_w: Option<f64>,
    /// SoC-domain dynamic power at nominal V/f, watts.
    pub soc_dynamic_w: Option<f64>,
    /// SoC-domain static power at nominal V, watts.
    pub soc_static_w: Option<f64>,
}

// ---------------------------------------------------------------------------
// Validated spec
// ---------------------------------------------------------------------------

/// Which hardware block owns each instance of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayScope {
    /// One instance per core.
    PerCore,
    /// One instance per PMD / cluster.
    PerPmd,
    /// One die-shared instance.
    Shared,
}

impl ArrayScope {
    /// The wire token (`core` / `pmd` / `shared`).
    pub const fn token(self) -> &'static str {
        match self {
            ArrayScope::PerCore => "core",
            ArrayScope::PerPmd => "pmd",
            ArrayScope::Shared => "shared",
        }
    }
}

/// A validated SRAM array entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArraySpec {
    /// The array kind (fixes cache level and voltage domain).
    pub kind: ArrayKind,
    /// Owner scope (fixes the instance count).
    pub scope: ArrayScope,
    /// Capacity of one instance.
    pub capacity: Bytes,
    /// Protection scheme (fixes the word width: parity entries vs SECDED
    /// 64-bit words).
    pub protection: ProtectionScheme,
    /// Physical interleaving degree (1 = none).
    pub interleave: u32,
    /// Table 1 annotation (e.g. `Write-Back`), if any.
    pub note: Option<String>,
}

/// A validated voltage rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RailSpec {
    /// Nominal voltage.
    pub nominal: Millivolts,
    /// Lowest voltage `validate` accepts.
    pub floor: Millivolts,
}

/// One validated campaign operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPointSpec {
    /// Row label.
    pub label: String,
    /// The operating point.
    pub point: OperatingPoint,
    /// Paper-reference beam minutes at this point.
    pub minutes: f64,
}

/// The validated two-anchor Vmin(f) rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VminAnchors {
    /// Low-frequency anchor.
    pub low_freq: Megahertz,
    /// Measured Vmin at the low anchor, millivolts.
    pub low_mv: u32,
    /// High-frequency anchor.
    pub high_freq: Megahertz,
    /// Measured Vmin at the high anchor, millivolts.
    pub high_mv: u32,
}

/// Validated physics calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicsSpec {
    /// Per-bit SRAM cross-section at nominal voltage, cm².
    pub sram_sigma_bit_cm2: f64,
    /// Exponential voltage sensitivity of the SRAM cross-section.
    pub sram_voltage_sensitivity: f64,
    /// Extra-cell MBU probability at nominal voltage.
    pub mbu_p_extra: f64,
    /// Largest modelled MBU cluster.
    pub mbu_max_cluster: u32,
    /// Control-logic cross-section at nominal, cm².
    pub logic_sigma_ctrl_cm2: f64,
    /// Datapath-logic cross-section at nominal, cm².
    pub logic_sigma_data_cm2: f64,
    /// Exponential voltage sensitivity of logic cross-sections.
    pub logic_voltage_sensitivity: f64,
    /// Near-Vmin amplification factor.
    pub logic_amplification: f64,
    /// Margin decay constant of the amplification, millivolts.
    pub logic_margin_tau_mv: f64,
    /// Frequency exponent of the logic susceptibility.
    pub logic_frequency_gamma: f64,
    /// Timing-failure critical voltage at `freq_max`, millivolts.
    pub timing_vc_at_fmax_mv: f64,
    /// Critical-voltage slope, millivolts per MHz.
    pub timing_slope_mv_per_mhz: f64,
    /// Critical-voltage spread at `freq_max`, millivolts.
    pub timing_sigma_at_fmax_mv: f64,
    /// Spread growth per GHz below `freq_max`, millivolts.
    pub timing_sigma_slope_mv: f64,
    /// Observable-error detection efficiency, TLBs.
    pub detect_tlb: f64,
    /// Observable-error detection efficiency, L1 caches.
    pub detect_l1: f64,
    /// Observable-error detection efficiency, L2 caches.
    pub detect_l2: f64,
    /// Observable-error detection efficiency, L3 / shared arrays.
    pub detect_l3: f64,
}

/// Validated power-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// PMD-domain dynamic power at nominal V/f, watts.
    pub pmd_dynamic_w: f64,
    /// PMD-domain static power at nominal V, watts.
    pub pmd_static_w: f64,
    /// SoC-domain dynamic power at nominal V/f, watts.
    pub soc_dynamic_w: f64,
    /// SoC-domain static power at nominal V, watts.
    pub soc_static_w: f64,
}

/// A fully validated platform description: every field finite, on-grid,
/// and mutually consistent.
///
/// The spec is pure data — [`crate::platform::Platform::from_spec`] turns
/// it into a die, and the physics crates read their calibration from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Platform identifier.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// ISA string.
    pub isa: String,
    /// Pipeline description, without the core count.
    pub pipeline: String,
    /// TDP / process string.
    pub technology: String,
    /// Number of cores on the die.
    pub cores: u8,
    /// Cores per PMD / frequency-control cluster.
    pub cores_per_pmd: u8,
    /// Modelled bytes per TLB entry.
    pub tlb_entry_bytes: u64,
    /// SRAM array inventory, in build order.
    pub arrays: Vec<ArraySpec>,
    /// PMD (core) voltage rail.
    pub pmd_rail: RailSpec,
    /// SoC (uncore) voltage rail.
    pub soc_rail: RailSpec,
    /// Standby-rail voltage (never scaled).
    pub standby: Millivolts,
    /// Lowest PLL frequency.
    pub freq_min: Megahertz,
    /// Highest PLL frequency.
    pub freq_max: Megahertz,
    /// The reference beam-campaign schedule (first entry is nominal).
    pub campaign: Vec<CampaignPointSpec>,
    /// The two measured Vmin anchors.
    pub vmin: VminAnchors,
    /// Physics calibration.
    pub physics: PhysicsSpec,
    /// Power-model constants.
    pub power: PowerSpec,
    /// DVFS voltage-rule floor.
    pub dvfs_floor: Millivolts,
    /// Undervolting-sweep backstop floor.
    pub sweep_floor: Millivolts,
}

impl PlatformSpec {
    /// The names [`PlatformSpec::builtin`] resolves, in preference order.
    pub const BUILTIN_NAMES: [&'static str; 2] = ["xgene2", "zynq-mpsoc"];

    /// Resolves a built-in platform by name.
    pub fn builtin(name: &str) -> Option<PlatformSpec> {
        match name {
            "xgene2" => Some(Self::xgene2()),
            "zynq-mpsoc" => Some(Self::zynq_mpsoc()),
            _ => None,
        }
    }

    /// The paper's X-Gene 2: Table 1's arrays, §3.1's regulator grid, and
    /// the calibration constants used throughout the reproduction.
    ///
    /// [`crate::platform::Platform::from_spec`] on this spec is
    /// bit-identical to the historical `XGene2::new()` constructor.
    pub fn xgene2() -> PlatformSpec {
        let tlb = |kind: ArrayKind, entries: u64| ArraySpec {
            kind,
            scope: ArrayScope::PerCore,
            capacity: Bytes::new(entries * 16),
            protection: ProtectionScheme::Parity,
            interleave: 4,
            note: None,
        };
        PlatformSpec {
            name: "xgene2".into(),
            description: "AppliedMicro X-Gene 2: 8-core Armv8 server SoC (the paper's DUT)".into(),
            isa: "Armv8 (AArch64)".into(),
            pipeline: "64-bit OoO (4-issue)".into(),
            technology: "35 W / 28 nm".into(),
            cores: 8,
            cores_per_pmd: 2,
            tlb_entry_bytes: 16,
            arrays: vec![
                ArraySpec {
                    kind: ArrayKind::L1Instruction,
                    scope: ArrayScope::PerCore,
                    capacity: Bytes::kib(32),
                    protection: ProtectionScheme::Parity,
                    interleave: 4,
                    note: None,
                },
                ArraySpec {
                    kind: ArrayKind::L1Data,
                    scope: ArrayScope::PerCore,
                    capacity: Bytes::kib(32),
                    protection: ProtectionScheme::Parity,
                    interleave: 4,
                    note: Some("Write-Through".into()),
                },
                tlb(ArrayKind::DataTlb, 20),
                tlb(ArrayKind::InstructionTlb, 20),
                tlb(ArrayKind::UnifiedL2Tlb, 1024),
                ArraySpec {
                    kind: ArrayKind::L2Unified,
                    scope: ArrayScope::PerPmd,
                    capacity: Bytes::kib(256),
                    protection: ProtectionScheme::Secded,
                    interleave: 4,
                    note: Some("Write-Back".into()),
                },
                // The L3 is large, SECDED-protected and — per §4.3 — not
                // interleaved, which is why it alone reports uncorrectable
                // errors.
                ArraySpec {
                    kind: ArrayKind::L3Shared,
                    scope: ArrayScope::Shared,
                    capacity: Bytes::mib(8),
                    protection: ProtectionScheme::Secded,
                    interleave: 1,
                    note: Some("Write-Back".into()),
                },
            ],
            pmd_rail: RailSpec {
                nominal: Millivolts::new(980),
                floor: Millivolts::new(500),
            },
            soc_rail: RailSpec {
                nominal: Millivolts::new(950),
                floor: Millivolts::new(500),
            },
            standby: Millivolts::new(950),
            freq_min: Megahertz::new(300),
            freq_max: Megahertz::new(2400),
            campaign: vec![
                CampaignPointSpec {
                    label: "Nominal".into(),
                    point: OperatingPoint::nominal(),
                    minutes: 1651.0,
                },
                CampaignPointSpec {
                    label: "Safe".into(),
                    point: OperatingPoint::safe(),
                    minutes: 1618.0,
                },
                CampaignPointSpec {
                    label: "Vmin".into(),
                    point: OperatingPoint::vmin_2400(),
                    minutes: 453.0,
                },
                CampaignPointSpec {
                    label: "Vmin 900 MHz".into(),
                    point: OperatingPoint::vmin_900(),
                    minutes: 165.0,
                },
            ],
            vmin: VminAnchors {
                low_freq: Megahertz::new(900),
                low_mv: 790,
                high_freq: Megahertz::new(2400),
                high_mv: 920,
            },
            physics: PhysicsSpec {
                sram_sigma_bit_cm2: 1.0e-15,
                sram_voltage_sensitivity: 3.2,
                mbu_p_extra: 0.047,
                mbu_max_cluster: 8,
                logic_sigma_ctrl_cm2: 1.7e-10,
                logic_sigma_data_cm2: 4.76e-10,
                logic_voltage_sensitivity: 3.2,
                logic_amplification: 13.0,
                logic_margin_tau_mv: 3.3,
                logic_frequency_gamma: 4.7,
                timing_vc_at_fmax_mv: 910.0,
                timing_slope_mv_per_mhz: 126.0 / 1500.0,
                timing_sigma_at_fmax_mv: 2.2,
                timing_sigma_slope_mv: 0.8,
                detect_tlb: 0.172,
                detect_l1: 0.078,
                detect_l2: 0.219,
                detect_l3: 0.140,
            },
            power: PowerSpec {
                pmd_dynamic_w: 13.00,
                pmd_static_w: 0.00,
                soc_dynamic_w: 7.25,
                soc_static_w: 0.15,
            },
            dvfs_floor: Millivolts::new(850),
            sweep_floor: Millivolts::new(700),
        }
    }

    /// A Zynq UltraScale+ MPSoC profile: the quad Cortex-A53 APU of
    /// Agiakatsikas et al.'s atmospheric-neutron assessment, on a 16 nm
    /// FinFET node, with the 256 KB on-chip memory standing in as the
    /// shared SoC-domain array.
    pub fn zynq_mpsoc() -> PlatformSpec {
        let tlb = |kind: ArrayKind, entries: u64| ArraySpec {
            kind,
            scope: ArrayScope::PerCore,
            capacity: Bytes::new(entries * 16),
            protection: ProtectionScheme::Parity,
            interleave: 4,
            note: None,
        };
        PlatformSpec {
            name: "zynq-mpsoc".into(),
            description: "Xilinx Zynq UltraScale+ MPSoC: quad Cortex-A53 APU (Agiakatsikas et al.)"
                .into(),
            isa: "Armv8 (AArch64)".into(),
            pipeline: "64-bit in-order (2-issue)".into(),
            technology: "5 W / 16 nm FinFET".into(),
            cores: 4,
            cores_per_pmd: 4,
            tlb_entry_bytes: 16,
            arrays: vec![
                ArraySpec {
                    kind: ArrayKind::L1Instruction,
                    scope: ArrayScope::PerCore,
                    capacity: Bytes::kib(32),
                    protection: ProtectionScheme::Parity,
                    interleave: 4,
                    note: None,
                },
                ArraySpec {
                    kind: ArrayKind::L1Data,
                    scope: ArrayScope::PerCore,
                    capacity: Bytes::kib(32),
                    protection: ProtectionScheme::Parity,
                    interleave: 4,
                    note: Some("Write-Back".into()),
                },
                tlb(ArrayKind::DataTlb, 10),
                tlb(ArrayKind::InstructionTlb, 10),
                tlb(ArrayKind::UnifiedL2Tlb, 512),
                ArraySpec {
                    kind: ArrayKind::L2Unified,
                    scope: ArrayScope::PerPmd,
                    capacity: Bytes::mib(1),
                    protection: ProtectionScheme::Secded,
                    interleave: 4,
                    note: Some("Write-Back".into()),
                },
                // The 256 KB on-chip memory (OCM) sits on the SoC rail and
                // is SECDED-protected, like the X-Gene L3 it maps onto.
                ArraySpec {
                    kind: ArrayKind::L3Shared,
                    scope: ArrayScope::Shared,
                    capacity: Bytes::kib(256),
                    protection: ProtectionScheme::Secded,
                    interleave: 1,
                    note: Some("OCM".into()),
                },
            ],
            pmd_rail: RailSpec {
                nominal: Millivolts::new(850),
                floor: Millivolts::new(500),
            },
            soc_rail: RailSpec {
                nominal: Millivolts::new(850),
                floor: Millivolts::new(500),
            },
            standby: Millivolts::new(850),
            freq_min: Megahertz::new(300),
            freq_max: Megahertz::new(1500),
            campaign: vec![
                CampaignPointSpec {
                    label: "Nominal".into(),
                    point: OperatingPoint {
                        pmd: Millivolts::new(850),
                        soc: Millivolts::new(850),
                        frequency: Megahertz::new(1500),
                    },
                    minutes: 600.0,
                },
                CampaignPointSpec {
                    label: "Safe".into(),
                    point: OperatingPoint {
                        pmd: Millivolts::new(770),
                        soc: Millivolts::new(850),
                        frequency: Megahertz::new(1500),
                    },
                    minutes: 600.0,
                },
                CampaignPointSpec {
                    label: "Vmin".into(),
                    point: OperatingPoint {
                        pmd: Millivolts::new(750),
                        soc: Millivolts::new(850),
                        frequency: Megahertz::new(1500),
                    },
                    minutes: 240.0,
                },
                CampaignPointSpec {
                    label: "Vmin 600 MHz".into(),
                    point: OperatingPoint {
                        pmd: Millivolts::new(660),
                        soc: Millivolts::new(850),
                        frequency: Megahertz::new(600),
                    },
                    minutes: 120.0,
                },
            ],
            vmin: VminAnchors {
                low_freq: Megahertz::new(600),
                low_mv: 660,
                high_freq: Megahertz::new(1500),
                high_mv: 750,
            },
            physics: PhysicsSpec {
                // 16 nm FinFET node constants (serscale-sram's
                // `TechnologyNode::finfet_16nm`).
                sram_sigma_bit_cm2: 2.0e-16,
                sram_voltage_sensitivity: 4.5,
                mbu_p_extra: 0.12,
                mbu_max_cluster: 8,
                // Quad in-order A53s expose far less logic area than eight
                // 4-issue OoO cores.
                logic_sigma_ctrl_cm2: 4.0e-11,
                logic_sigma_data_cm2: 1.1e-10,
                logic_voltage_sensitivity: 4.5,
                logic_amplification: 13.0,
                logic_margin_tau_mv: 3.3,
                logic_frequency_gamma: 4.7,
                timing_vc_at_fmax_mv: 740.0,
                timing_slope_mv_per_mhz: 90.0 / 900.0,
                timing_sigma_at_fmax_mv: 2.0,
                timing_sigma_slope_mv: 0.8,
                detect_tlb: 0.160,
                detect_l1: 0.080,
                detect_l2: 0.200,
                detect_l3: 0.300,
            },
            power: PowerSpec {
                pmd_dynamic_w: 2.40,
                pmd_static_w: 0.10,
                soc_dynamic_w: 1.40,
                soc_static_w: 0.20,
            },
            dvfs_floor: Millivolts::new(700),
            sweep_floor: Millivolts::new(600),
        }
    }

    /// Number of PMDs / clusters on the die.
    pub fn pmds(&self) -> u8 {
        self.cores / self.cores_per_pmd
    }

    /// The platform's nominal operating point (the first campaign row).
    pub fn nominal_point(&self) -> OperatingPoint {
        self.campaign[0].point
    }

    /// The campaign operating points, in session order.
    pub fn campaign_points(&self) -> impl Iterator<Item = OperatingPoint> + '_ {
        self.campaign.iter().map(|c| c.point)
    }

    /// The linear Vmin(f) rule through the spec's two measured anchors,
    /// snapped *up* to the regulator grid.
    ///
    /// The interpolation is integer-exact (no floating-point rounding
    /// before the ceiling), so grid-edge frequencies can never snap to the
    /// wrong step — the double-rounding hazard the epsilon-guarded float
    /// path had to work around.
    pub fn vmin_at(&self, frequency: Megahertz) -> Millivolts {
        let step = Millivolts::STEP as i64;
        let f = frequency.get() as i64;
        let (f_lo, v_lo) = (self.vmin.low_freq.get() as i64, self.vmin.low_mv as i64);
        let (f_hi, v_hi) = (self.vmin.high_freq.get() as i64, self.vmin.high_mv as i64);
        let den = f_hi - f_lo;
        // vmin(f) = v_lo + (f − f_lo)·(v_hi − v_lo)/den, ceiled to the grid:
        // ceil(num / (den·step)) · step, all in integers.
        let num = v_lo * den + (f - f_lo) * (v_hi - v_lo);
        let steps = num.div_euclid(den * step) + i64::from(num.rem_euclid(den * step) != 0);
        Millivolts::new(steps.max(0) as u32 * Millivolts::STEP)
    }

    /// Validates an operating point against the platform's regulator/PLL
    /// constraints (rail nominals and floors, 5 mV step, frequency window
    /// and 300 MHz grid).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate_point(&self, point: OperatingPoint) -> Result<()> {
        let check_voltage = |what: &str, v: Millivolts, rail: RailSpec| -> Result<()> {
            if v > rail.nominal {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} exceeds the {} nominal", rail.nominal),
                });
            }
            if !v.is_step_aligned() {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} is not aligned to the 5 mV regulator step"),
                });
            }
            if v < rail.floor {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} is below the {} plausibility floor", rail.floor),
                });
            }
            Ok(())
        };
        check_voltage("pmd voltage", point.pmd, self.pmd_rail)?;
        check_voltage("soc voltage", point.soc, self.soc_rail)?;
        if point.frequency < self.freq_min || point.frequency > self.freq_max {
            return Err(Error::InvalidConfig {
                what: "frequency".into(),
                reason: format!(
                    "{} outside {} – {}",
                    point.frequency, self.freq_min, self.freq_max
                ),
            });
        }
        if !point.frequency.is_step_aligned() {
            return Err(Error::InvalidConfig {
                what: "frequency".into(),
                reason: format!("{} is not on the 300 MHz PLL grid", point.frequency),
            });
        }
        Ok(())
    }

    /// The Table 1-style specification rows, as `(parameter, value)`
    /// pairs, generated from the spec data.
    pub fn table1(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            ("ISA".to_string(), self.isa.clone()),
            (
                "Pipeline / CPU Cores".to_string(),
                format!("{} / {}", self.pipeline, self.cores),
            ),
            ("Clock Frequency".to_string(), self.freq_max.to_string()),
        ];
        let find = |kind: ArrayKind| self.arrays.iter().find(|a| a.kind == kind);
        // D/I TLBs share a row when their geometry matches (they do on
        // every shipped platform).
        if let (Some(d), Some(i)) = (find(ArrayKind::DataTlb), find(ArrayKind::InstructionTlb)) {
            let entries = d.capacity.get() / self.tlb_entry_bytes;
            if d.capacity == i.capacity && d.protection == i.protection {
                rows.push((
                    "D/I TLBs".to_string(),
                    format!(
                        "{entries} entries {} ({})",
                        self.scope_phrase(d.scope),
                        protection_name(d.protection)
                    ),
                ));
            } else {
                rows.push(("Data TLB".to_string(), self.tlb_value(d)));
                rows.push(("Instruction TLB".to_string(), self.tlb_value(i)));
            }
        }
        if let Some(a) = find(ArrayKind::UnifiedL2Tlb) {
            rows.push(("Unified L2 TLB".to_string(), self.tlb_value(a)));
        }
        for (kind, title) in [
            (ArrayKind::L1Instruction, "L1 Instruction Cache"),
            (ArrayKind::L1Data, "L1 Data Cache"),
            (ArrayKind::L2Unified, "L2 Cache"),
            (ArrayKind::L3Shared, "L3 Cache"),
        ] {
            if let Some(a) = find(kind) {
                rows.push((title.to_string(), self.cache_value(a)));
            }
        }
        rows.push(("TDP / Technology".to_string(), self.technology.clone()));
        rows.push((
            "PMD/SoC Nominal Voltage".to_string(),
            format!("{} / {}", self.pmd_rail.nominal, self.soc_rail.nominal),
        ));
        rows
    }

    fn scope_phrase(&self, scope: ArrayScope) -> String {
        match scope {
            ArrayScope::PerCore => "per core".to_string(),
            ArrayScope::PerPmd if self.cores_per_pmd == 2 => "per pair of cores".to_string(),
            ArrayScope::PerPmd => format!("per {}-core cluster", self.cores_per_pmd),
            ArrayScope::Shared => "Shared".to_string(),
        }
    }

    fn tlb_value(&self, a: &ArraySpec) -> String {
        format!(
            "{} entries {} ({})",
            a.capacity.get() / self.tlb_entry_bytes,
            self.scope_phrase(a.scope),
            protection_name(a.protection)
        )
    }

    fn cache_value(&self, a: &ArraySpec) -> String {
        let note = a.note.as_deref().map_or(String::new(), |n| format!(" {n}"));
        format!(
            "{}{note} {} ({})",
            decimal_size(a.capacity),
            self.scope_phrase(a.scope),
            protection_name(a.protection)
        )
    }
}

/// Formats a capacity the way datasheets quote cache sizes ("32 KB",
/// "8 MB") rather than with binary-prefix units.
fn decimal_size(bytes: Bytes) -> String {
    let b = bytes.get();
    if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
        format!("{} MB", b / (1024 * 1024))
    } else if b >= 1024 && b.is_multiple_of(1024) {
        format!("{} KB", b / 1024)
    } else {
        format!("{b} B")
    }
}

/// The protection-scheme name Table 1 prints.
fn protection_name(p: ProtectionScheme) -> &'static str {
    match p {
        ProtectionScheme::None => "Unprotected",
        ProtectionScheme::Parity => "Parity",
        ProtectionScheme::Secded => "SECDED",
    }
}

/// Parses an array-kind token (the `Display` form of [`ArrayKind`]).
fn array_kind(field: &str, token: &str) -> Result2<ArrayKind> {
    match token {
        "L1I" => Ok(ArrayKind::L1Instruction),
        "L1D" => Ok(ArrayKind::L1Data),
        "DTLB" => Ok(ArrayKind::DataTlb),
        "ITLB" => Ok(ArrayKind::InstructionTlb),
        "L2TLB" => Ok(ArrayKind::UnifiedL2Tlb),
        "L2" => Ok(ArrayKind::L2Unified),
        "L3" => Ok(ArrayKind::L3Shared),
        other => Err(SpecError::new(
            field,
            format!("unknown array kind {other:?}; use L1I, L1D, DTLB, ITLB, L2TLB, L2 or L3"),
        )),
    }
}

/// Parses an owner-scope token.
fn array_scope(field: &str, token: &str) -> Result2<ArrayScope> {
    match token {
        "core" => Ok(ArrayScope::PerCore),
        "pmd" => Ok(ArrayScope::PerPmd),
        "shared" => Ok(ArrayScope::Shared),
        other => Err(SpecError::new(
            field,
            format!("unknown array scope {other:?}; use core, pmd or shared"),
        )),
    }
}

/// Parses a protection token.
fn protection(field: &str, token: &str) -> Result2<ProtectionScheme> {
    match token {
        "none" => Ok(ProtectionScheme::None),
        "parity" => Ok(ProtectionScheme::Parity),
        "secded" => Ok(ProtectionScheme::Secded),
        other => Err(SpecError::new(
            field,
            format!("unknown protection {other:?}; use none, parity or secded"),
        )),
    }
}

/// Validates a millivolt value on the 5 mV regulator grid.
fn grid_millivolts(field: &str, value: f64, min: f64, max: f64) -> Result2<Millivolts> {
    let mv = integer_in(
        field,
        value,
        min,
        max,
        "voltages are whole millivolts on the 5 mV regulator grid",
    )?;
    let mv = Millivolts::new(mv as u32);
    if !mv.is_step_aligned() {
        return Err(SpecError::new(
            field,
            format!("{mv} is not aligned to the 5 mV regulator step"),
        ));
    }
    Ok(mv)
}

/// Validates a megahertz value on the 300 MHz PLL grid.
fn grid_megahertz(field: &str, value: f64) -> Result2<Megahertz> {
    let mhz = integer_in(
        field,
        value,
        f64::from(Megahertz::STEP),
        20_000.0,
        "frequencies are whole megahertz on the 300 MHz PLL grid",
    )?;
    let mhz = Megahertz::new(mhz as u32);
    if !mhz.is_step_aligned() {
        return Err(SpecError::new(
            field,
            format!("{mhz} is not on the 300 MHz PLL grid"),
        ));
    }
    Ok(mhz)
}

fn validated_rail(field: &str, raw: &RawRailSpec) -> Result2<RailSpec> {
    let nominal = grid_millivolts(
        &format!("{field}.nominal_mv"),
        required(&format!("{field}.nominal_mv"), &raw.nominal_mv)?,
        300.0,
        1400.0,
    )?;
    let floor = grid_millivolts(
        &format!("{field}.floor_mv"),
        required(&format!("{field}.floor_mv"), &raw.floor_mv)?,
        300.0,
        1400.0,
    )?;
    if floor > nominal {
        return Err(SpecError::new(
            format!("{field}.floor_mv"),
            format!("floor {floor} is above the {nominal} nominal"),
        ));
    }
    Ok(RailSpec { nominal, floor })
}

fn validated_arrays(raw: &[RawArraySpec], tlb_entry_bytes: u64) -> Result2<Vec<ArraySpec>> {
    if raw.is_empty() {
        return Err(SpecError::new(
            "arrays",
            "a platform needs at least one SRAM array",
        ));
    }
    if raw.len() > 64 {
        return Err(SpecError::new(
            "arrays",
            format!("{} entries exceed the 64-array cap", raw.len()),
        ));
    }
    let mut arrays: Vec<ArraySpec> = Vec::with_capacity(raw.len());
    for (at, entry) in raw.iter().enumerate() {
        let kind = array_kind(
            &format!("arrays[{at}].kind"),
            &required(&format!("arrays[{at}].kind"), &entry.kind)?,
        )?;
        let scope = array_scope(
            &format!("arrays[{at}].scope"),
            &required(&format!("arrays[{at}].scope"), &entry.scope)?,
        )?;
        let capacity = match (entry.bytes, entry.entries) {
            (Some(_), Some(_)) => {
                return Err(SpecError::new(
                    format!("arrays[{at}].bytes"),
                    "bytes and entries are mutually exclusive; give the capacity once",
                ));
            }
            (Some(bytes), None) => Bytes::new(integer_in(
                &format!("arrays[{at}].bytes"),
                bytes,
                1.0,
                1.0e12,
                "an array holds at least one byte",
            )?),
            (None, Some(entries)) => Bytes::new(
                integer_in(
                    &format!("arrays[{at}].entries"),
                    entries,
                    1.0,
                    1.0e9,
                    "a TLB holds at least one entry",
                )? * tlb_entry_bytes,
            ),
            (None, None) => {
                return Err(SpecError::new(
                    format!("arrays[{at}].bytes"),
                    "required field is missing; give the capacity in bytes or TLB entries",
                ));
            }
        };
        let protection = protection(
            &format!("arrays[{at}].protection"),
            &required(&format!("arrays[{at}].protection"), &entry.protection)?,
        )?;
        let interleave = integer_in(
            &format!("arrays[{at}].interleave"),
            entry.interleave.unwrap_or(1.0),
            1.0,
            64.0,
            "interleave degree 1 means no interleaving",
        )? as u32;
        let note = match &entry.note {
            Some(note) => Some(label(&format!("arrays[{at}].note"), note)?),
            None => None,
        };
        if let Some(earlier) = arrays.iter().position(|a| a.kind == kind) {
            return Err(SpecError::new(
                format!("arrays[{at}].kind"),
                format!(
                    "duplicates arrays[{earlier}]: both describe {kind}; rate bookkeeping indexes arrays by kind"
                ),
            ));
        }
        arrays.push(ArraySpec {
            kind,
            scope,
            capacity,
            protection,
            interleave,
            note,
        });
    }
    Ok(arrays)
}

fn validated_physics(raw: &RawPhysicsSpec) -> Result2<PhysicsSpec> {
    let f = |field: &str, v: &Option<f64>, min: f64, max: f64, hint: &str| -> Result2<f64> {
        finite_in(
            &format!("physics.{field}"),
            required(&format!("physics.{field}"), v)?,
            min,
            max,
            hint,
        )
    };
    Ok(PhysicsSpec {
        sram_sigma_bit_cm2: f(
            "sram_sigma_bit_cm2",
            &raw.sram_sigma_bit_cm2,
            1.0e-24,
            1.0e-6,
            "per-bit cross-sections are small positive areas",
        )?,
        sram_voltage_sensitivity: f(
            "sram_voltage_sensitivity",
            &raw.sram_voltage_sensitivity,
            0.0,
            100.0,
            "dimensionless exponential sensitivity",
        )?,
        mbu_p_extra: f(
            "mbu_p_extra",
            &raw.mbu_p_extra,
            0.0,
            0.999,
            "a probability below 1",
        )?,
        mbu_max_cluster: integer_in(
            "physics.mbu_max_cluster",
            required("physics.mbu_max_cluster", &raw.mbu_max_cluster)?,
            1.0,
            64.0,
            "the largest modelled MBU cluster",
        )? as u32,
        logic_sigma_ctrl_cm2: f(
            "logic_sigma_ctrl_cm2",
            &raw.logic_sigma_ctrl_cm2,
            0.0,
            1.0,
            "a chip-level cross-section area",
        )?,
        logic_sigma_data_cm2: f(
            "logic_sigma_data_cm2",
            &raw.logic_sigma_data_cm2,
            0.0,
            1.0,
            "a chip-level cross-section area",
        )?,
        logic_voltage_sensitivity: f(
            "logic_voltage_sensitivity",
            &raw.logic_voltage_sensitivity,
            0.0,
            100.0,
            "dimensionless exponential sensitivity",
        )?,
        logic_amplification: f(
            "logic_amplification",
            &raw.logic_amplification,
            1.0,
            1000.0,
            "the near-Vmin amplification factor (1 = none)",
        )?,
        logic_margin_tau_mv: f(
            "logic_margin_tau_mv",
            &raw.logic_margin_tau_mv,
            0.1,
            1000.0,
            "a positive decay constant in millivolts",
        )?,
        logic_frequency_gamma: f(
            "logic_frequency_gamma",
            &raw.logic_frequency_gamma,
            0.0,
            100.0,
            "the frequency exponent",
        )?,
        timing_vc_at_fmax_mv: f(
            "timing_vc_at_fmax_mv",
            &raw.timing_vc_at_fmax_mv,
            100.0,
            2000.0,
            "a critical voltage in millivolts",
        )?,
        timing_slope_mv_per_mhz: f(
            "timing_slope_mv_per_mhz",
            &raw.timing_slope_mv_per_mhz,
            0.0,
            10.0,
            "millivolts of critical-voltage per MHz",
        )?,
        timing_sigma_at_fmax_mv: f(
            "timing_sigma_at_fmax_mv",
            &raw.timing_sigma_at_fmax_mv,
            0.0,
            100.0,
            "a spread in millivolts",
        )?,
        timing_sigma_slope_mv: f(
            "timing_sigma_slope_mv",
            &raw.timing_sigma_slope_mv,
            0.0,
            100.0,
            "millivolts of spread growth per GHz",
        )?,
        detect_tlb: f(
            "detect_tlb",
            &raw.detect_tlb,
            0.0,
            1.0,
            "an efficiency in [0, 1]",
        )?,
        detect_l1: f(
            "detect_l1",
            &raw.detect_l1,
            0.0,
            1.0,
            "an efficiency in [0, 1]",
        )?,
        detect_l2: f(
            "detect_l2",
            &raw.detect_l2,
            0.0,
            1.0,
            "an efficiency in [0, 1]",
        )?,
        detect_l3: f(
            "detect_l3",
            &raw.detect_l3,
            0.0,
            1.0,
            "an efficiency in [0, 1]",
        )?,
    })
}

fn validated_power(raw: &RawPowerSpec) -> Result2<PowerSpec> {
    let f = |field: &str, v: &Option<f64>| -> Result2<f64> {
        finite_in(
            &format!("power.{field}"),
            required(&format!("power.{field}"), v)?,
            0.0,
            10_000.0,
            "a non-negative wattage",
        )
    };
    Ok(PowerSpec {
        pmd_dynamic_w: f("pmd_dynamic_w", &raw.pmd_dynamic_w)?,
        pmd_static_w: f("pmd_static_w", &raw.pmd_static_w)?,
        soc_dynamic_w: f("soc_dynamic_w", &raw.soc_dynamic_w)?,
        soc_static_w: f("soc_static_w", &raw.soc_static_w)?,
    })
}

impl TryFrom<RawPlatformSpec> for PlatformSpec {
    type Error = SpecError;

    fn try_from(raw: RawPlatformSpec) -> Result2<Self> {
        let name = identifier("name", &required("name", &raw.name)?)?;
        let description = match &raw.description {
            Some(d) => label("description", d)?,
            None => name.clone(),
        };
        let isa = label("isa", &raw.isa.clone().unwrap_or_else(|| "unknown".into()))?;
        let pipeline = label(
            "pipeline",
            &raw.pipeline.clone().unwrap_or_else(|| "unknown".into()),
        )?;
        let technology = label(
            "technology",
            &raw.technology.clone().unwrap_or_else(|| "unknown".into()),
        )?;
        let cores = integer_in(
            "cores",
            required("cores", &raw.cores)?,
            1.0,
            64.0,
            "the number of cores on the die",
        )? as u8;
        let cores_per_pmd = integer_in(
            "cores_per_pmd",
            required("cores_per_pmd", &raw.cores_per_pmd)?,
            1.0,
            f64::from(cores),
            "the cluster size sharing an L2 and a PLL",
        )? as u8;
        if !cores.is_multiple_of(cores_per_pmd) {
            return Err(SpecError::new(
                "cores_per_pmd",
                format!("{cores_per_pmd} does not divide the {cores} cores evenly"),
            ));
        }
        let tlb_entry_bytes = integer_in(
            "tlb_entry_bytes",
            raw.tlb_entry_bytes.unwrap_or(16.0),
            1.0,
            256.0,
            "modelled bytes per TLB entry",
        )?;
        let arrays = validated_arrays(&required("arrays", &raw.arrays)?, tlb_entry_bytes)?;
        let pmd_rail = validated_rail("pmd_rail", &required("pmd_rail", &raw.pmd_rail)?)?;
        let soc_rail = validated_rail("soc_rail", &required("soc_rail", &raw.soc_rail)?)?;
        let standby = match raw.standby_mv {
            Some(mv) => grid_millivolts("standby_mv", mv, 300.0, 1400.0)?,
            None => soc_rail.nominal,
        };
        let freq_min =
            grid_megahertz("freq_min_mhz", required("freq_min_mhz", &raw.freq_min_mhz)?)?;
        let freq_max =
            grid_megahertz("freq_max_mhz", required("freq_max_mhz", &raw.freq_max_mhz)?)?;
        if freq_min > freq_max {
            return Err(SpecError::new(
                "freq_min_mhz",
                format!("{freq_min} is above the {freq_max} maximum"),
            ));
        }
        let vmin = {
            let raw_vmin = required("vmin", &raw.vmin)?;
            let low_freq = grid_megahertz(
                "vmin.low_freq_mhz",
                required("vmin.low_freq_mhz", &raw_vmin.low_freq_mhz)?,
            )?;
            let high_freq = grid_megahertz(
                "vmin.high_freq_mhz",
                required("vmin.high_freq_mhz", &raw_vmin.high_freq_mhz)?,
            )?;
            if low_freq >= high_freq {
                return Err(SpecError::new(
                    "vmin.low_freq_mhz",
                    format!("low anchor {low_freq} must sit below the high anchor {high_freq}"),
                ));
            }
            let low_mv = integer_in(
                "vmin.low_mv",
                required("vmin.low_mv", &raw_vmin.low_mv)?,
                100.0,
                2000.0,
                "a measured Vmin in millivolts",
            )? as u32;
            let high_mv = integer_in(
                "vmin.high_mv",
                required("vmin.high_mv", &raw_vmin.high_mv)?,
                100.0,
                2000.0,
                "a measured Vmin in millivolts",
            )? as u32;
            if low_mv > high_mv {
                return Err(SpecError::new(
                    "vmin.low_mv",
                    format!("{low_mv} mV at the low anchor exceeds {high_mv} mV at the high one"),
                ));
            }
            VminAnchors {
                low_freq,
                low_mv,
                high_freq,
                high_mv,
            }
        };
        let physics = validated_physics(&required("physics", &raw.physics)?)?;
        let power = validated_power(&required("power", &raw.power)?)?;
        let dvfs_floor = match raw.dvfs_floor_mv {
            Some(mv) => grid_millivolts("dvfs_floor_mv", mv, 300.0, 1400.0)?,
            None => pmd_rail.floor,
        };
        if dvfs_floor > pmd_rail.nominal {
            return Err(SpecError::new(
                "dvfs_floor_mv",
                format!(
                    "floor {dvfs_floor} is above the {} PMD nominal",
                    pmd_rail.nominal
                ),
            ));
        }
        let sweep_floor = match raw.sweep_floor_mv {
            Some(mv) => grid_millivolts("sweep_floor_mv", mv, 300.0, 1400.0)?,
            None => pmd_rail.floor,
        };
        if sweep_floor > pmd_rail.nominal {
            return Err(SpecError::new(
                "sweep_floor_mv",
                format!(
                    "floor {sweep_floor} is above the {} PMD nominal",
                    pmd_rail.nominal
                ),
            ));
        }
        let spec = PlatformSpec {
            name,
            description,
            isa,
            pipeline,
            technology,
            cores,
            cores_per_pmd,
            tlb_entry_bytes,
            arrays,
            pmd_rail,
            soc_rail,
            standby,
            freq_min,
            freq_max,
            campaign: Vec::new(),
            vmin,
            physics,
            power,
            dvfs_floor,
            sweep_floor,
        };
        // Campaign points validate against the rails/grid above, so the
        // spec carrier is assembled first and the schedule folded in last.
        let raw_campaign = required("campaign", &raw.campaign)?;
        if raw_campaign.is_empty() {
            return Err(SpecError::new(
                "campaign",
                "a platform needs at least one campaign operating point",
            ));
        }
        if raw_campaign.len() > 16 {
            return Err(SpecError::new(
                "campaign",
                format!("{} points exceed the 16-session cap", raw_campaign.len()),
            ));
        }
        let mut campaign: Vec<CampaignPointSpec> = Vec::with_capacity(raw_campaign.len());
        for (at, entry) in raw_campaign.iter().enumerate() {
            let point = OperatingPoint {
                pmd: grid_millivolts(
                    &format!("campaign[{at}].pmd_mv"),
                    required(&format!("campaign[{at}].pmd_mv"), &entry.pmd_mv)?,
                    0.0,
                    2000.0,
                )?,
                soc: grid_millivolts(
                    &format!("campaign[{at}].soc_mv"),
                    required(&format!("campaign[{at}].soc_mv"), &entry.soc_mv)?,
                    0.0,
                    2000.0,
                )?,
                frequency: grid_megahertz(
                    &format!("campaign[{at}].freq_mhz"),
                    required(&format!("campaign[{at}].freq_mhz"), &entry.freq_mhz)?,
                )?,
            };
            if let Err(e) = spec.validate_point(point) {
                return Err(SpecError::new(format!("campaign[{at}]"), e.to_string()));
            }
            let minutes = required(&format!("campaign[{at}].minutes"), &entry.minutes)?;
            if !minutes.is_finite() || minutes <= 0.0 || minutes > 10_000.0 {
                return Err(SpecError::new(
                    format!("campaign[{at}].minutes"),
                    format!("{minutes} is outside (0, 10000] minutes"),
                ));
            }
            let label_text = match &entry.label {
                Some(text) => label(&format!("campaign[{at}].label"), text)?,
                None => format!("Session {at}"),
            };
            if let Some(earlier) = campaign.iter().position(|c| c.point == point) {
                return Err(SpecError::new(
                    format!("campaign[{at}]"),
                    format!(
                        "overlaps campaign[{earlier}]: both run {}; reports index sessions by operating point",
                        point.label()
                    ),
                ));
            }
            campaign.push(CampaignPointSpec {
                label: label_text,
                point,
                minutes,
            });
        }
        let _ = EXACT_INT_MAX; // bounds above are far below 2^53 already
        Ok(PlatformSpec { campaign, ..spec })
    }
}

impl From<&PlatformSpec> for RawPlatformSpec {
    /// The normalization inverse: lowering a validated spec back to the
    /// wire shape. `PlatformSpec::try_from(RawPlatformSpec::from(&spec))`
    /// returns `spec` exactly, which is what the JSON round-trip tests
    /// pin.
    fn from(spec: &PlatformSpec) -> RawPlatformSpec {
        RawPlatformSpec {
            name: Some(spec.name.clone()),
            description: Some(spec.description.clone()),
            isa: Some(spec.isa.clone()),
            pipeline: Some(spec.pipeline.clone()),
            technology: Some(spec.technology.clone()),
            cores: Some(f64::from(spec.cores)),
            cores_per_pmd: Some(f64::from(spec.cores_per_pmd)),
            tlb_entry_bytes: Some(spec.tlb_entry_bytes as f64),
            arrays: Some(
                spec.arrays
                    .iter()
                    .map(|a| RawArraySpec {
                        kind: Some(a.kind.to_string()),
                        scope: Some(a.scope.token().to_string()),
                        bytes: Some(a.capacity.get() as f64),
                        entries: None,
                        protection: Some(
                            match a.protection {
                                ProtectionScheme::None => "none",
                                ProtectionScheme::Parity => "parity",
                                ProtectionScheme::Secded => "secded",
                            }
                            .to_string(),
                        ),
                        interleave: Some(f64::from(a.interleave)),
                        note: a.note.clone(),
                    })
                    .collect(),
            ),
            pmd_rail: Some(RawRailSpec {
                nominal_mv: Some(f64::from(spec.pmd_rail.nominal.get())),
                floor_mv: Some(f64::from(spec.pmd_rail.floor.get())),
            }),
            soc_rail: Some(RawRailSpec {
                nominal_mv: Some(f64::from(spec.soc_rail.nominal.get())),
                floor_mv: Some(f64::from(spec.soc_rail.floor.get())),
            }),
            standby_mv: Some(f64::from(spec.standby.get())),
            freq_min_mhz: Some(f64::from(spec.freq_min.get())),
            freq_max_mhz: Some(f64::from(spec.freq_max.get())),
            campaign: Some(
                spec.campaign
                    .iter()
                    .map(|c| RawCampaignPointSpec {
                        label: Some(c.label.clone()),
                        pmd_mv: Some(f64::from(c.point.pmd.get())),
                        soc_mv: Some(f64::from(c.point.soc.get())),
                        freq_mhz: Some(f64::from(c.point.frequency.get())),
                        minutes: Some(c.minutes),
                    })
                    .collect(),
            ),
            vmin: Some(RawVminAnchors {
                low_freq_mhz: Some(f64::from(spec.vmin.low_freq.get())),
                low_mv: Some(f64::from(spec.vmin.low_mv)),
                high_freq_mhz: Some(f64::from(spec.vmin.high_freq.get())),
                high_mv: Some(f64::from(spec.vmin.high_mv)),
            }),
            physics: Some(RawPhysicsSpec {
                sram_sigma_bit_cm2: Some(spec.physics.sram_sigma_bit_cm2),
                sram_voltage_sensitivity: Some(spec.physics.sram_voltage_sensitivity),
                mbu_p_extra: Some(spec.physics.mbu_p_extra),
                mbu_max_cluster: Some(f64::from(spec.physics.mbu_max_cluster)),
                logic_sigma_ctrl_cm2: Some(spec.physics.logic_sigma_ctrl_cm2),
                logic_sigma_data_cm2: Some(spec.physics.logic_sigma_data_cm2),
                logic_voltage_sensitivity: Some(spec.physics.logic_voltage_sensitivity),
                logic_amplification: Some(spec.physics.logic_amplification),
                logic_margin_tau_mv: Some(spec.physics.logic_margin_tau_mv),
                logic_frequency_gamma: Some(spec.physics.logic_frequency_gamma),
                timing_vc_at_fmax_mv: Some(spec.physics.timing_vc_at_fmax_mv),
                timing_slope_mv_per_mhz: Some(spec.physics.timing_slope_mv_per_mhz),
                timing_sigma_at_fmax_mv: Some(spec.physics.timing_sigma_at_fmax_mv),
                timing_sigma_slope_mv: Some(spec.physics.timing_sigma_slope_mv),
                detect_tlb: Some(spec.physics.detect_tlb),
                detect_l1: Some(spec.physics.detect_l1),
                detect_l2: Some(spec.physics.detect_l2),
                detect_l3: Some(spec.physics.detect_l3),
            }),
            power: Some(RawPowerSpec {
                pmd_dynamic_w: Some(spec.power.pmd_dynamic_w),
                pmd_static_w: Some(spec.power.pmd_static_w),
                soc_dynamic_w: Some(spec.power.soc_dynamic_w),
                soc_static_w: Some(spec.power.soc_static_w),
            }),
            dvfs_floor_mv: Some(f64::from(spec.dvfs_floor.get())),
            sweep_floor_mv: Some(f64::from(spec.sweep_floor.get())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_round_trip_through_the_raw_carrier() {
        for name in PlatformSpec::BUILTIN_NAMES {
            let spec = PlatformSpec::builtin(name).expect("builtin");
            let raw = RawPlatformSpec::from(&spec);
            let back = PlatformSpec::try_from(raw).expect("round-trip validates");
            assert_eq!(back, spec, "{name} must normalize to itself");
        }
    }

    #[test]
    fn builtin_lookup() {
        assert!(PlatformSpec::builtin("xgene2").is_some());
        assert!(PlatformSpec::builtin("zynq-mpsoc").is_some());
        assert!(PlatformSpec::builtin("pentium").is_none());
    }

    #[test]
    fn xgene2_vmin_rule_matches_the_paper_anchors() {
        let spec = PlatformSpec::xgene2();
        assert_eq!(spec.vmin_at(Megahertz::new(900)), Millivolts::new(790));
        assert_eq!(spec.vmin_at(Megahertz::new(2400)), Millivolts::new(920));
        // Mid-grid frequencies snap *up* to the 5 mV step.
        assert_eq!(spec.vmin_at(Megahertz::new(1200)), Millivolts::new(820));
        assert_eq!(spec.vmin_at(Megahertz::new(1650)), Millivolts::new(855));
    }

    #[test]
    fn vmin_is_integer_exact_on_every_grid_frequency() {
        // The exact integer oracle for the X-Gene rule
        // vmin(f) = 790 + (f − 900)·130/1500, ceiled to the 5 mV grid.
        let spec = PlatformSpec::xgene2();
        for f in (300i64..=2400).step_by(300) {
            let num = 790 * 150 + (f - 900) * 13;
            let expected = num.div_euclid(750) + i64::from(num.rem_euclid(750) != 0);
            assert_eq!(
                spec.vmin_at(Megahertz::new(f as u32)),
                Millivolts::new(expected as u32 * 5),
                "f = {f}"
            );
        }
    }

    #[test]
    fn zynq_vmin_rule_spans_its_anchors() {
        let spec = PlatformSpec::zynq_mpsoc();
        assert_eq!(spec.vmin_at(Megahertz::new(600)), Millivolts::new(660));
        assert_eq!(spec.vmin_at(Megahertz::new(1500)), Millivolts::new(750));
        // 0.1 mV/MHz slope: 900 MHz → 690 mV exactly on the grid.
        assert_eq!(spec.vmin_at(Megahertz::new(900)), Millivolts::new(690));
    }

    #[test]
    fn xgene2_table1_is_the_paper_table() {
        let rows = PlatformSpec::xgene2().table1();
        let expected: Vec<(String, String)> = vec![
            ("ISA".into(), "Armv8 (AArch64)".into()),
            (
                "Pipeline / CPU Cores".into(),
                "64-bit OoO (4-issue) / 8".into(),
            ),
            ("Clock Frequency".into(), "2.4 GHz".into()),
            ("D/I TLBs".into(), "20 entries per core (Parity)".into()),
            (
                "Unified L2 TLB".into(),
                "1024 entries per core (Parity)".into(),
            ),
            (
                "L1 Instruction Cache".into(),
                "32 KB per core (Parity)".into(),
            ),
            (
                "L1 Data Cache".into(),
                "32 KB Write-Through per core (Parity)".into(),
            ),
            (
                "L2 Cache".into(),
                "256 KB Write-Back per pair of cores (SECDED)".into(),
            ),
            ("L3 Cache".into(), "8 MB Write-Back Shared (SECDED)".into()),
            ("TDP / Technology".into(), "35 W / 28 nm".into()),
            ("PMD/SoC Nominal Voltage".into(), "980 mV / 950 mV".into()),
        ];
        assert_eq!(rows, expected);
    }

    #[test]
    fn zynq_table1_reports_the_cluster_scope() {
        let rows = PlatformSpec::zynq_mpsoc().table1();
        assert!(rows
            .iter()
            .any(|(k, v)| k == "L2 Cache" && v == "1 MB Write-Back per 4-core cluster (SECDED)"));
        assert!(rows
            .iter()
            .any(|(k, v)| k == "L3 Cache" && v == "256 KB OCM Shared (SECDED)"));
    }

    #[test]
    fn campaign_points_validate_on_both_builtins() {
        for name in PlatformSpec::BUILTIN_NAMES {
            let spec = PlatformSpec::builtin(name).expect("builtin");
            for c in &spec.campaign {
                spec.validate_point(c.point)
                    .unwrap_or_else(|e| panic!("{name} {}: {e}", c.label));
            }
        }
    }

    #[test]
    fn validate_point_accepts_the_exact_grid_edges() {
        let spec = PlatformSpec::xgene2();
        // Exactly at the rail floor and nominal, on the grid: legal.
        let edge = |pmd, soc, f| OperatingPoint {
            pmd: Millivolts::new(pmd),
            soc: Millivolts::new(soc),
            frequency: Megahertz::new(f),
        };
        assert!(spec.validate_point(edge(500, 500, 300)).is_ok());
        assert!(spec.validate_point(edge(980, 950, 2400)).is_ok());
        // One step past either edge: rejected.
        assert!(spec.validate_point(edge(495, 500, 300)).is_err());
        assert!(spec.validate_point(edge(985, 950, 2400)).is_err());
        assert!(spec.validate_point(edge(980, 955, 2400)).is_err());
        assert!(spec.validate_point(edge(980, 950, 2700)).is_err());
    }

    #[test]
    fn rejections_name_the_offending_field() {
        let base = || RawPlatformSpec::from(&PlatformSpec::xgene2());
        let cases: Vec<(RawPlatformSpec, &str)> = vec![
            (RawPlatformSpec::default(), "name"),
            (
                RawPlatformSpec {
                    cores: Some(7.0),
                    cores_per_pmd: Some(2.0),
                    ..base()
                },
                "cores_per_pmd",
            ),
            (
                RawPlatformSpec {
                    arrays: Some(vec![]),
                    ..base()
                },
                "arrays",
            ),
            (
                {
                    let mut raw = base();
                    let arrays = raw.arrays.as_mut().unwrap();
                    arrays[0].bytes = Some(0.0);
                    raw
                },
                "arrays[0].bytes",
            ),
            (
                {
                    let mut raw = base();
                    let arrays = raw.arrays.as_mut().unwrap();
                    arrays[0].interleave = Some(0.0);
                    raw
                },
                "arrays[0].interleave",
            ),
            (
                {
                    let mut raw = base();
                    let arrays = raw.arrays.as_mut().unwrap();
                    let dup = arrays[0].clone();
                    arrays.push(dup);
                    raw
                },
                "arrays[7].kind",
            ),
            (
                {
                    let mut raw = base();
                    raw.pmd_rail.as_mut().unwrap().floor_mv = Some(990.0);
                    raw
                },
                "pmd_rail.floor_mv",
            ),
            (
                {
                    let mut raw = base();
                    raw.vmin.as_mut().unwrap().low_freq_mhz = Some(2400.0);
                    raw
                },
                "vmin.low_freq_mhz",
            ),
            (
                {
                    let mut raw = base();
                    raw.campaign = Some(vec![]);
                    raw
                },
                "campaign",
            ),
            (
                {
                    let mut raw = base();
                    raw.campaign.as_mut().unwrap()[0].pmd_mv = Some(993.0);
                    raw
                },
                "campaign[0].pmd_mv",
            ),
            (
                {
                    let mut raw = base();
                    raw.physics.as_mut().unwrap().sram_sigma_bit_cm2 = Some(f64::NAN);
                    raw
                },
                "physics.sram_sigma_bit_cm2",
            ),
        ];
        for (raw, field) in cases {
            let err = PlatformSpec::try_from(raw).expect_err(&format!("{field} must be rejected"));
            assert_eq!(err.field, field, "{err}");
            assert!(!err.reason.is_empty());
        }
    }
}
