//! The DVFS operating table the paper deliberately *disabled*.
//!
//! §3.1: "the Dynamic Voltage and Frequency Scaling (DVFS) of the
//! microprocessor is not enabled during our experiments. DVFS uses nominal
//! voltage levels for each different frequency." Modelling the table
//! anyway buys two things: the platform model is complete, and the
//! undervolting story can be quantified *against* DVFS — the paper's
//! implicit comparison (guardband harvesting beats frequency throttling
//! when performance matters).
//!
//! The table assigns each PLL step its conservative nominal voltage on a
//! linear V/f rule anchored at the platform's specified corners (for the
//! X-Gene 2, 980 mV @ 2.4 GHz) with a retention-ish floor for the slowest
//! states, both read from the [`PlatformSpec`]. The characterized *safe*
//! voltage at each frequency sits well below the DVFS nominal — that gap
//! is the guardband of §4.1.

use serde::{Deserialize, Serialize};

use serscale_types::{Megahertz, Millivolts};

use crate::platform::OperatingPoint;
use crate::spec::PlatformSpec;

/// One DVFS performance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PState {
    /// The state's clock frequency.
    pub frequency: Megahertz,
    /// The conservative (nominal) PMD voltage DVFS would apply.
    pub voltage: Millivolts,
}

impl PState {
    /// The operating point DVFS would set for this state, given the SoC
    /// rail nominal (DVFS never scales the SoC domain on the modelled
    /// platforms).
    pub fn operating_point_with(&self, soc_nominal: Millivolts) -> OperatingPoint {
        OperatingPoint {
            pmd: self.voltage,
            soc: soc_nominal,
            frequency: self.frequency,
        }
    }

    /// The operating point DVFS would set for this state on the X-Gene 2
    /// (SoC rail at its 950 mV nominal). Platform-aware callers should
    /// use [`PState::operating_point_with`] or
    /// [`DvfsTable::operating_point_at`].
    pub fn operating_point(&self) -> OperatingPoint {
        self.operating_point_with(Millivolts::new(950))
    }
}

/// A platform's DVFS table: every PLL grid step from the spec's minimum
/// to its maximum frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    states: Vec<PState>,
    soc_nominal: Millivolts,
}

impl DvfsTable {
    /// Builds a platform's table: one P-state per PLL grid step, nominal
    /// voltage linear in frequency with slope `(Vnom − floor) / (f_max −
    /// f_lowanchor)`, clamped to the spec's DVFS floor, top state at the
    /// PMD rail nominal.
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        let nominal = f64::from(spec.pmd_rail.nominal.get());
        let floor = f64::from(spec.dvfs_floor.get());
        let f_max = f64::from(spec.freq_max.get());
        let f_anchor = f64::from(spec.vmin.low_freq.get());
        let slope = (nominal - floor) / (f_max - f_anchor);
        let steps = spec.freq_min.get() / Megahertz::STEP..=spec.freq_max.get() / Megahertz::STEP;
        let states = steps
            .map(|i| {
                let frequency = Megahertz::new(i * Megahertz::STEP);
                let raw = nominal - (f_max - f64::from(frequency.get())) * slope;
                let clamped = raw.max(floor);
                // Snap up to the 5 mV regulator grid (nominal must be
                // safe).
                let step = f64::from(Millivolts::STEP);
                let mv = ((clamped / step).ceil() * step) as u32;
                PState {
                    frequency,
                    voltage: Millivolts::new(mv),
                }
            })
            .collect();
        DvfsTable {
            states,
            soc_nominal: spec.soc_rail.nominal,
        }
    }

    /// The X-Gene 2 table: 8 P-states, 300 MHz → 2.4 GHz.
    pub fn xgene2() -> Self {
        Self::for_platform(&PlatformSpec::xgene2())
    }

    /// All P-states, slowest first.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// The state for an exact grid frequency.
    pub fn state_at(&self, frequency: Megahertz) -> Option<PState> {
        self.states
            .iter()
            .copied()
            .find(|s| s.frequency == frequency)
    }

    /// The DVFS nominal voltage for a grid frequency.
    pub fn nominal_voltage(&self, frequency: Megahertz) -> Option<Millivolts> {
        self.state_at(frequency).map(|s| s.voltage)
    }

    /// The full operating point DVFS would set at a grid frequency, with
    /// the SoC rail at the platform's nominal.
    pub fn operating_point_at(&self, frequency: Megahertz) -> Option<OperatingPoint> {
        self.state_at(frequency)
            .map(|s| s.operating_point_with(self.soc_nominal))
    }

    /// The guardband DVFS leaves on the table at a frequency: the gap
    /// between its conservative nominal and a characterized safe Vmin.
    ///
    /// Returns `None` for off-grid frequencies; `Some(0)` if the
    /// characterization somehow sits above the nominal.
    pub fn guardband_at(&self, frequency: Megahertz, safe_vmin: Millivolts) -> Option<u32> {
        self.nominal_voltage(frequency)
            .map(|nominal| nominal.get().saturating_sub(safe_vmin.get()))
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        Self::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::XGene2;

    fn table() -> DvfsTable {
        DvfsTable::xgene2()
    }

    #[test]
    fn eight_states_on_the_pll_grid() {
        let t = table();
        assert_eq!(t.states().len(), 8);
        for (i, s) in t.states().iter().enumerate() {
            assert_eq!(s.frequency.get(), (i as u32 + 1) * 300);
            assert!(s.frequency.is_step_aligned());
            assert!(s.voltage.is_step_aligned());
        }
    }

    #[test]
    fn top_state_is_the_chip_nominal() {
        let t = table();
        assert_eq!(
            t.nominal_voltage(Megahertz::new(2400)),
            Some(Millivolts::new(980))
        );
    }

    #[test]
    fn voltages_monotone_in_frequency() {
        let t = table();
        for pair in t.states().windows(2) {
            assert!(pair[0].voltage <= pair[1].voltage);
        }
    }

    #[test]
    fn slow_states_hit_the_floor() {
        let t = table();
        assert_eq!(
            t.nominal_voltage(Megahertz::new(300)),
            Some(Millivolts::new(850))
        );
    }

    #[test]
    fn dvfs_nominal_at_900mhz_leaves_a_big_guardband() {
        // DVFS would run 900 MHz at ~850–855 mV? No: 980 − 1500·0.0867 =
        // 850 floor-adjacent… and the characterized safe Vmin is 790 mV.
        let t = table();
        let nominal = t.nominal_voltage(Megahertz::new(900)).unwrap();
        assert!(nominal >= Millivolts::new(850), "nominal = {nominal}");
        let guardband = t
            .guardband_at(Megahertz::new(900), Millivolts::new(790))
            .unwrap();
        assert!(guardband >= 60, "guardband = {guardband} mV");
    }

    #[test]
    fn dvfs_points_validate_against_the_regulator() {
        let soc = XGene2::new();
        for s in table().states() {
            soc.validate(s.operating_point())
                .unwrap_or_else(|e| panic!("{}: {e}", s.frequency));
        }
    }

    #[test]
    fn zynq_table_spans_its_own_grid() {
        let spec = PlatformSpec::zynq_mpsoc();
        let t = DvfsTable::for_platform(&spec);
        assert_eq!(t.states().len(), 5); // 300 MHz → 1.5 GHz
        assert_eq!(
            t.nominal_voltage(Megahertz::new(1500)),
            Some(Millivolts::new(850))
        );
        let soc = crate::platform::Platform::from_spec(&spec);
        for s in t.states() {
            let point = t.operating_point_at(s.frequency).unwrap();
            soc.validate(point)
                .unwrap_or_else(|e| panic!("{}: {e}", s.frequency));
        }
    }

    #[test]
    fn off_grid_lookup_is_none() {
        assert_eq!(table().state_at(Megahertz::new(1000)), None);
    }
}
