//! The DVFS operating table the paper deliberately *disabled*.
//!
//! §3.1: "the Dynamic Voltage and Frequency Scaling (DVFS) of the
//! microprocessor is not enabled during our experiments. DVFS uses nominal
//! voltage levels for each different frequency." Modelling the table
//! anyway buys two things: the platform model is complete, and the
//! undervolting story can be quantified *against* DVFS — the paper's
//! implicit comparison (guardband harvesting beats frequency throttling
//! when performance matters).
//!
//! The table assigns each PLL step its conservative nominal voltage on a
//! linear V/f rule anchored at the chip's specified corners (980 mV @
//! 2.4 GHz) with a retention-ish floor for the slowest states. The
//! characterized *safe* voltage at each frequency sits well below the
//! DVFS nominal — that gap is the guardband of §4.1.

use serde::{Deserialize, Serialize};

use serscale_types::{Megahertz, Millivolts};

use crate::platform::{OperatingPoint, XGene2};

/// One DVFS performance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PState {
    /// The state's clock frequency.
    pub frequency: Megahertz,
    /// The conservative (nominal) PMD voltage DVFS would apply.
    pub voltage: Millivolts,
}

impl PState {
    /// The operating point DVFS would set for this state (SoC rail at its
    /// nominal; DVFS never scales the SoC domain on this platform).
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint {
            pmd: self.voltage,
            soc: XGene2::SOC_NOMINAL,
            frequency: self.frequency,
        }
    }
}

/// The platform's DVFS table: 300 MHz → 2.4 GHz in 300 MHz steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    states: Vec<PState>,
}

impl DvfsTable {
    /// The voltage floor of the slowest states (retention + margin).
    const FLOOR_MV: u32 = 850;
    /// Linear V/f slope above the floor region, in mV per MHz.
    const SLOPE_MV_PER_MHZ: f64 = 130.0 / 1500.0;

    /// Builds the default table: 8 P-states on the PLL grid, nominal
    /// voltage linear in frequency, clamped to the floor, top state at
    /// the 980 mV chip nominal.
    pub fn xgene2() -> Self {
        let states = (1..=8u32)
            .map(|i| {
                let frequency = Megahertz::new(i * Megahertz::STEP);
                DvfsTable { states: vec![] }.nominal_voltage_rule(frequency)
            })
            .collect();
        DvfsTable { states }
    }

    fn nominal_voltage_rule(&self, frequency: Megahertz) -> PState {
        let f = f64::from(frequency.get());
        let raw = 980.0 - (2400.0 - f) * Self::SLOPE_MV_PER_MHZ;
        let clamped = raw.max(f64::from(Self::FLOOR_MV));
        // Snap up to the 5 mV regulator grid (nominal must be safe).
        let step = f64::from(Millivolts::STEP);
        let mv = ((clamped / step).ceil() * step) as u32;
        PState {
            frequency,
            voltage: Millivolts::new(mv),
        }
    }

    /// All P-states, slowest first.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// The state for an exact grid frequency.
    pub fn state_at(&self, frequency: Megahertz) -> Option<PState> {
        self.states
            .iter()
            .copied()
            .find(|s| s.frequency == frequency)
    }

    /// The DVFS nominal voltage for a grid frequency.
    pub fn nominal_voltage(&self, frequency: Megahertz) -> Option<Millivolts> {
        self.state_at(frequency).map(|s| s.voltage)
    }

    /// The guardband DVFS leaves on the table at a frequency: the gap
    /// between its conservative nominal and a characterized safe Vmin.
    ///
    /// Returns `None` for off-grid frequencies; `Some(0)` if the
    /// characterization somehow sits above the nominal.
    pub fn guardband_at(&self, frequency: Megahertz, safe_vmin: Millivolts) -> Option<u32> {
        self.nominal_voltage(frequency)
            .map(|nominal| nominal.get().saturating_sub(safe_vmin.get()))
    }
}

impl Default for DvfsTable {
    fn default() -> Self {
        Self::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DvfsTable {
        DvfsTable::xgene2()
    }

    #[test]
    fn eight_states_on_the_pll_grid() {
        let t = table();
        assert_eq!(t.states().len(), 8);
        for (i, s) in t.states().iter().enumerate() {
            assert_eq!(s.frequency.get(), (i as u32 + 1) * 300);
            assert!(s.frequency.is_step_aligned());
            assert!(s.voltage.is_step_aligned());
        }
    }

    #[test]
    fn top_state_is_the_chip_nominal() {
        let t = table();
        assert_eq!(
            t.nominal_voltage(Megahertz::new(2400)),
            Some(Millivolts::new(980))
        );
    }

    #[test]
    fn voltages_monotone_in_frequency() {
        let t = table();
        for pair in t.states().windows(2) {
            assert!(pair[0].voltage <= pair[1].voltage);
        }
    }

    #[test]
    fn slow_states_hit_the_floor() {
        let t = table();
        assert_eq!(
            t.nominal_voltage(Megahertz::new(300)),
            Some(Millivolts::new(850))
        );
    }

    #[test]
    fn dvfs_nominal_at_900mhz_leaves_a_big_guardband() {
        // DVFS would run 900 MHz at ~850–855 mV? No: 980 − 1500·0.0867 =
        // 850 floor-adjacent… and the characterized safe Vmin is 790 mV.
        let t = table();
        let nominal = t.nominal_voltage(Megahertz::new(900)).unwrap();
        assert!(nominal >= Millivolts::new(850), "nominal = {nominal}");
        let guardband = t
            .guardband_at(Megahertz::new(900), Millivolts::new(790))
            .unwrap();
        assert!(guardband >= 60, "guardband = {guardband} mV");
    }

    #[test]
    fn dvfs_points_validate_against_the_regulator() {
        let soc = XGene2::new();
        for s in table().states() {
            soc.validate(s.operating_point())
                .unwrap_or_else(|e| panic!("{}: {e}", s.frequency));
        }
    }

    #[test]
    fn off_grid_lookup_is_none() {
        assert_eq!(table().state_at(Megahertz::new(1000)), None);
    }
}
