//! The package power model.
//!
//! Per voltage domain, `P(V, f) = P_dyn·(V/V₀)²·(f/f₀) + P_static·(V/V₀)`
//! — the standard `αCV²f` dynamic term (§1 of the paper) plus a
//! supply-proportional static term. The four constants are least-squares
//! fitted (with non-negativity) against the four package-power measurements
//! Figure 9 reports:
//!
//! | operating point | paper | model |
//! |---|---|---|
//! | 980 mV / 950 mV @ 2.4 GHz | 20.40 W | 20.40 W |
//! | 930 mV / 925 mV @ 2.4 GHz | 18.63 W | 18.73 W |
//! | 920 mV / 920 mV @ 2.4 GHz | 18.15 W | 18.40 W |
//! | 790 mV / 950 mV @ 900 MHz | 10.59 W | 10.57 W |
//!
//! The fit attributes the PMD draw almost entirely to the dynamic term at
//! these near-nominal, full-utilization operating points (the 900 MHz point
//! pins the frequency scaling, the three 2.4 GHz points the voltage curve).

use serde::{Deserialize, Serialize};

use serscale_types::{Megahertz, Millivolts, Watts};

use crate::platform::{OperatingPoint, XGene2};
use crate::spec::PlatformSpec;

/// The calibrated two-domain power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    pmd_dynamic: f64,
    pmd_static: f64,
    soc_dynamic: f64,
    soc_static: f64,
    pmd_nominal: Millivolts,
    soc_nominal: Millivolts,
    freq_nominal: Megahertz,
}

impl PowerModel {
    /// The model fitted to the paper's Figure 9 measurements (see module
    /// docs).
    pub fn xgene2() -> Self {
        PowerModel {
            pmd_dynamic: 13.00,
            pmd_static: 0.00,
            soc_dynamic: 7.25,
            soc_static: 0.15,
            pmd_nominal: XGene2::PMD_NOMINAL,
            soc_nominal: XGene2::SOC_NOMINAL,
            freq_nominal: XGene2::FREQ_MAX,
        }
    }

    /// Builds a model from a platform spec's power block, anchored at the
    /// spec's rail nominals and maximum frequency.
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        Self::new(
            spec.power.pmd_dynamic_w,
            spec.power.pmd_static_w,
            spec.power.soc_dynamic_w,
            spec.power.soc_static_w,
            spec.pmd_rail.nominal,
            spec.soc_rail.nominal,
            spec.freq_max,
        )
    }

    /// Creates a model from explicit constants (all in watts at nominal).
    ///
    /// # Panics
    ///
    /// Panics if any constant is negative or non-finite.
    pub fn new(
        pmd_dynamic: f64,
        pmd_static: f64,
        soc_dynamic: f64,
        soc_static: f64,
        pmd_nominal: Millivolts,
        soc_nominal: Millivolts,
        freq_nominal: Megahertz,
    ) -> Self {
        for (name, v) in [
            ("pmd_dynamic", pmd_dynamic),
            ("pmd_static", pmd_static),
            ("soc_dynamic", soc_dynamic),
            ("soc_static", soc_static),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and non-negative"
            );
        }
        PowerModel {
            pmd_dynamic,
            pmd_static,
            soc_dynamic,
            soc_static,
            pmd_nominal,
            soc_nominal,
            freq_nominal,
        }
    }

    /// PMD-domain power at the given operating point.
    pub fn pmd_power(&self, point: OperatingPoint) -> Watts {
        let rv = point.pmd.ratio_to(self.pmd_nominal);
        let rf = point.frequency.ratio_to(self.freq_nominal);
        Watts::new(self.pmd_dynamic * rv * rv * rf + self.pmd_static * rv)
    }

    /// SoC-domain power at the given operating point (the SoC clock is not
    /// scaled in the experiments, so only voltage enters).
    pub fn soc_power(&self, point: OperatingPoint) -> Watts {
        let rv = point.soc.ratio_to(self.soc_nominal);
        Watts::new(self.soc_dynamic * rv * rv + self.soc_static * rv)
    }

    /// Total package power (both scaled domains).
    ///
    /// ```
    /// use serscale_soc::{platform::OperatingPoint, PowerModel};
    ///
    /// let model = PowerModel::xgene2();
    /// let p = model.total_power(OperatingPoint::nominal());
    /// assert!((p.get() - 20.40).abs() < 0.05);
    /// ```
    pub fn total_power(&self, point: OperatingPoint) -> Watts {
        self.pmd_power(point) + self.soc_power(point)
    }

    /// Total power scaled by a per-workload factor (Fig. 9 averages the six
    /// benchmarks; individual kernels draw a few percent more or less).
    pub fn workload_power(&self, point: OperatingPoint, power_factor: f64) -> Watts {
        assert!(power_factor > 0.0, "power factor must be positive");
        self.total_power(point) * power_factor
    }

    /// Fractional power savings of `point` relative to `baseline`
    /// (Figure 10's y-axis).
    pub fn savings(&self, point: OperatingPoint, baseline: OperatingPoint) -> f64 {
        self.total_power(point)
            .savings_vs(self.total_power(baseline))
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_POINTS: [(OperatingPoint, f64); 4] = [
        (OperatingPoint::nominal(), 20.40),
        (OperatingPoint::safe(), 18.63),
        (OperatingPoint::vmin_2400(), 18.15),
        (OperatingPoint::vmin_900(), 10.59),
    ];

    #[test]
    fn calibration_matches_figure9_within_300mw() {
        let model = PowerModel::xgene2();
        for (point, paper) in PAPER_POINTS {
            let p = model.total_power(point).get();
            assert!(
                (p - paper).abs() < 0.30,
                "{}: {p} vs {paper}",
                point.label()
            );
        }
    }

    #[test]
    fn savings_match_figure10() {
        let model = PowerModel::xgene2();
        let base = OperatingPoint::nominal();
        // Paper: 8.7%, 11.0%, 48.1%. The model's smooth fit lands within
        // ~1.5 percentage points.
        let s930 = model.savings(OperatingPoint::safe(), base);
        let s920 = model.savings(OperatingPoint::vmin_2400(), base);
        let s790 = model.savings(OperatingPoint::vmin_900(), base);
        assert!((s930 - 0.087).abs() < 0.015, "s930 = {s930}");
        assert!((s920 - 0.110).abs() < 0.015, "s920 = {s920}");
        assert!((s790 - 0.481).abs() < 0.015, "s790 = {s790}");
        assert!(s930 < s920 && s920 < s790);
    }

    #[test]
    fn power_monotone_in_voltage() {
        let model = PowerModel::xgene2();
        let mut prev = f64::INFINITY;
        for mv in [980u32, 960, 940, 920, 900] {
            let point = OperatingPoint {
                pmd: Millivolts::new(mv),
                soc: Millivolts::new(920),
                frequency: Megahertz::new(2400),
            };
            let p = model.total_power(point).get();
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let model = PowerModel::xgene2();
        let at = |f: u32| {
            model
                .pmd_power(OperatingPoint {
                    pmd: Millivolts::new(980),
                    soc: Millivolts::new(950),
                    frequency: Megahertz::new(f),
                })
                .get()
        };
        // Pure dynamic PMD: halving f halves PMD power.
        assert!((at(1200) / at(2400) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn soc_power_ignores_frequency() {
        let model = PowerModel::xgene2();
        let mut p = OperatingPoint::nominal();
        let a = model.soc_power(p);
        p.frequency = Megahertz::new(300);
        assert_eq!(model.soc_power(p), a);
    }

    #[test]
    fn spec_built_model_matches_the_calibrated_one() {
        assert_eq!(
            PowerModel::for_platform(&PlatformSpec::xgene2()),
            PowerModel::xgene2()
        );
    }

    #[test]
    fn zynq_model_draws_mpsoc_scale_power() {
        let spec = PlatformSpec::zynq_mpsoc();
        let model = PowerModel::for_platform(&spec);
        let p = model.total_power(spec.nominal_point()).get();
        assert!(p > 2.0 && p < 6.0, "p = {p} W");
        // Undervolting the APU rail still saves power.
        let vmin = spec.campaign[2].point;
        assert!(model.savings(vmin, spec.nominal_point()) > 0.0);
    }

    #[test]
    fn workload_factor_scales_total() {
        let model = PowerModel::xgene2();
        let base = model.total_power(OperatingPoint::nominal());
        let heavy = model.workload_power(OperatingPoint::nominal(), 1.04);
        assert!((heavy.get() / base.get() - 1.04).abs() < 1e-9);
    }
}
