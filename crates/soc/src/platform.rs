//! The die: cores, PMDs, SRAM arrays, voltage domains and operating points.

use serde::{Deserialize, Serialize};

use serscale_ecc::ProtectionScheme;
use serscale_sram::SramArray;
use serscale_types::{
    ArrayKind, Bits, Bytes, CoreId, Error, Megahertz, Millivolts, PmdId, Result, VoltageDomain,
};

/// Which hardware block owns an array instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayOwner {
    /// A private per-core array.
    Core(CoreId),
    /// A per-core-pair array (the unified L2).
    Pmd(PmdId),
    /// A die-shared array (the L3).
    Shared,
}

/// One physical array instance on the die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayInstance {
    array: SramArray,
    owner: ArrayOwner,
}

impl ArrayInstance {
    /// The array's geometry/protection descriptor.
    pub const fn array(&self) -> &SramArray {
        &self.array
    }

    /// Which block owns this instance.
    pub const fn owner(&self) -> ArrayOwner {
        self.owner
    }

    /// Shorthand for the array kind.
    pub const fn kind(&self) -> ArrayKind {
        self.array.kind()
    }

    /// Shorthand for the data capacity in bits.
    pub const fn data_bits(&self) -> Bits {
        self.array.data_bits()
    }
}

/// A complete voltage/frequency setting of the chip — one column of
/// Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// PMD-domain (cores, L1/L2, TLBs) supply voltage.
    pub pmd: Millivolts,
    /// SoC-domain (L3, DRAM controllers) supply voltage.
    pub soc: Millivolts,
    /// Core clock frequency (all PMDs set together in the experiments).
    pub frequency: Megahertz,
}

impl OperatingPoint {
    /// Nominal conditions: 980 mV / 950 mV at 2.4 GHz (Table 3 row 1).
    pub const fn nominal() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(980),
            soc: Millivolts::new(950),
            frequency: Megahertz::new(2400),
        }
    }

    /// The "safe" reduced setting: 930 mV / 925 mV at 2.4 GHz (row 2).
    pub const fn safe() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(930),
            soc: Millivolts::new(925),
            frequency: Megahertz::new(2400),
        }
    }

    /// The 2.4 GHz Vmin: 920 mV / 920 mV (row 3).
    pub const fn vmin_2400() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(920),
            soc: Millivolts::new(920),
            frequency: Megahertz::new(2400),
        }
    }

    /// The 900 MHz Vmin: 790 mV PMD with the SoC held at its 950 mV
    /// nominal (row 4).
    pub const fn vmin_900() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(790),
            soc: Millivolts::new(950),
            frequency: Megahertz::new(900),
        }
    }

    /// The four operating points of the paper's campaign, in Table 2/3
    /// session order.
    pub const CAMPAIGN: [OperatingPoint; 4] = [
        Self::nominal(),
        Self::safe(),
        Self::vmin_2400(),
        Self::vmin_900(),
    ];

    /// The supply voltage of the given domain at this operating point.
    /// The standby domain is never scaled and reports its 950 mV nominal.
    pub const fn voltage_of(&self, domain: VoltageDomain) -> Millivolts {
        match domain {
            VoltageDomain::Pmd => self.pmd,
            VoltageDomain::Soc => self.soc,
            VoltageDomain::Standby => Millivolts::new(950),
        }
    }

    /// A short label like `"980mV@2.4GHz"`.
    pub fn label(&self) -> String {
        format!("{}mV@{}", self.pmd.get(), self.frequency)
    }
}

/// The modelled 8-core Armv8 server SoC.
///
/// Geometry and protection are Table 1's; regulator floors and step sizes
/// are §3.1's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XGene2 {
    instances: Vec<ArrayInstance>,
}

impl XGene2 {
    /// Number of cores.
    pub const CORES: u8 = 8;
    /// Number of dual-core PMDs.
    pub const PMDS: u8 = 4;
    /// The PMD-domain nominal voltage.
    pub const PMD_NOMINAL: Millivolts = Millivolts::new(980);
    /// The SoC-domain nominal voltage.
    pub const SOC_NOMINAL: Millivolts = Millivolts::new(950);
    /// Lowest PLL frequency.
    pub const FREQ_MIN: Megahertz = Megahertz::new(300);
    /// Highest PLL frequency.
    pub const FREQ_MAX: Megahertz = Megahertz::new(2400);
    /// Interleaving degree of the smaller (per-core / per-pair) arrays.
    const SMALL_ARRAY_INTERLEAVE: u32 = 4;
    /// Assumed bytes per TLB entry (tag + translation + attributes).
    const TLB_ENTRY_BYTES: u64 = 16;

    /// Builds the die with Table 1's array inventory.
    pub fn new() -> Self {
        let mut instances = Vec::new();
        for c in 0..Self::CORES {
            let core = CoreId::new(c);
            let mut per_core = |kind: ArrayKind, capacity: Bytes| {
                instances.push(ArrayInstance {
                    array: SramArray::new(
                        kind,
                        capacity,
                        ProtectionScheme::Parity,
                        Self::SMALL_ARRAY_INTERLEAVE,
                    ),
                    owner: ArrayOwner::Core(core),
                });
            };
            per_core(ArrayKind::L1Instruction, Bytes::kib(32));
            per_core(ArrayKind::L1Data, Bytes::kib(32));
            per_core(ArrayKind::DataTlb, Bytes::new(20 * Self::TLB_ENTRY_BYTES));
            per_core(
                ArrayKind::InstructionTlb,
                Bytes::new(20 * Self::TLB_ENTRY_BYTES),
            );
            per_core(
                ArrayKind::UnifiedL2Tlb,
                Bytes::new(1024 * Self::TLB_ENTRY_BYTES),
            );
        }
        for p in 0..Self::PMDS {
            instances.push(ArrayInstance {
                array: SramArray::new(
                    ArrayKind::L2Unified,
                    Bytes::kib(256),
                    ProtectionScheme::Secded,
                    Self::SMALL_ARRAY_INTERLEAVE,
                ),
                owner: ArrayOwner::Pmd(PmdId::new(p)),
            });
        }
        // The L3 is large, SECDED-protected and — per §4.3 — not
        // interleaved, which is why it alone reports uncorrectable errors.
        instances.push(ArrayInstance {
            array: SramArray::new(
                ArrayKind::L3Shared,
                Bytes::mib(8),
                ProtectionScheme::Secded,
                1,
            ),
            owner: ArrayOwner::Shared,
        });
        XGene2 { instances }
    }

    /// Number of cores on the die.
    pub const fn cores(&self) -> u8 {
        Self::CORES
    }

    /// Iterates over every array instance on the die.
    pub fn arrays(&self) -> impl Iterator<Item = &ArrayInstance> {
        self.instances.iter()
    }

    /// Total protected SRAM capacity (the ~10 MB of §3.3).
    pub fn total_sram(&self) -> Bits {
        self.instances.iter().map(|i| i.data_bits()).sum()
    }

    /// Validates an operating point against the regulator/PLL constraints
    /// of §3.1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a voltage is above its domain
    /// nominal, not aligned to the 5 mV step, or implausibly low
    /// (< 500 mV), or when the frequency is outside 300–2400 MHz or not on
    /// the 300 MHz grid.
    pub fn validate(&self, point: OperatingPoint) -> Result<()> {
        let check_voltage = |what: &str, v: Millivolts, nominal: Millivolts| -> Result<()> {
            if v > nominal {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} exceeds the {nominal} nominal"),
                });
            }
            if !v.is_step_aligned() {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} is not aligned to the 5 mV regulator step"),
                });
            }
            if v < Millivolts::new(500) {
                return Err(Error::InvalidConfig {
                    what: what.into(),
                    reason: format!("{v} is below the 500 mV plausibility floor"),
                });
            }
            Ok(())
        };
        check_voltage("pmd voltage", point.pmd, Self::PMD_NOMINAL)?;
        check_voltage("soc voltage", point.soc, Self::SOC_NOMINAL)?;
        if point.frequency < Self::FREQ_MIN || point.frequency > Self::FREQ_MAX {
            return Err(Error::InvalidConfig {
                what: "frequency".into(),
                reason: format!("{} outside 300 MHz – 2.4 GHz", point.frequency),
            });
        }
        if !point.frequency.is_step_aligned() {
            return Err(Error::InvalidConfig {
                what: "frequency".into(),
                reason: format!("{} is not on the 300 MHz PLL grid", point.frequency),
            });
        }
        Ok(())
    }

    /// The Table 1 specification rows, as `(parameter, value)` pairs —
    /// what `repro --table 1` prints.
    pub fn spec(&self) -> Vec<(String, String)> {
        vec![
            ("ISA".into(), "Armv8 (AArch64)".into()),
            (
                "Pipeline / CPU Cores".into(),
                "64-bit OoO (4-issue) / 8".into(),
            ),
            ("Clock Frequency".into(), "2.4 GHz".into()),
            ("D/I TLBs".into(), "20 entries per core (Parity)".into()),
            (
                "Unified L2 TLB".into(),
                "1024 entries per core (Parity)".into(),
            ),
            (
                "L1 Instruction Cache".into(),
                "32 KB per core (Parity)".into(),
            ),
            (
                "L1 Data Cache".into(),
                "32 KB Write-Through per core (Parity)".into(),
            ),
            (
                "L2 Cache".into(),
                "256 KB Write-Back per pair of cores (SECDED)".into(),
            ),
            ("L3 Cache".into(), "8 MB Write-Back Shared (SECDED)".into()),
            ("TDP / Technology".into(), "35 W / 28 nm".into()),
            ("PMD/SoC Nominal Voltage".into(), "980 mV / 950 mV".into()),
        ]
    }
}

impl Default for XGene2 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::CacheLevel;

    #[test]
    fn array_inventory_matches_table1() {
        let soc = XGene2::new();
        let count = |kind: ArrayKind| soc.arrays().filter(|a| a.kind() == kind).count();
        assert_eq!(count(ArrayKind::L1Instruction), 8);
        assert_eq!(count(ArrayKind::L1Data), 8);
        assert_eq!(count(ArrayKind::DataTlb), 8);
        assert_eq!(count(ArrayKind::InstructionTlb), 8);
        assert_eq!(count(ArrayKind::UnifiedL2Tlb), 8);
        assert_eq!(count(ArrayKind::L2Unified), 4);
        assert_eq!(count(ArrayKind::L3Shared), 1);
    }

    #[test]
    fn total_sram_is_about_10_megabytes() {
        // §3.3 assumes ~10 MB of on-chip SRAM.
        let total_mb = XGene2::new().total_sram().get() as f64 / 8.0 / 1.0e6;
        assert!(total_mb > 9.0 && total_mb < 11.0, "total = {total_mb} MB");
    }

    #[test]
    fn protection_assignment() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            let expected = match inst.kind().cache_level() {
                CacheLevel::L2 | CacheLevel::L3 => ProtectionScheme::Secded,
                _ => ProtectionScheme::Parity,
            };
            assert_eq!(inst.array().protection(), expected, "{:?}", inst.kind());
        }
    }

    #[test]
    fn only_l3_lacks_interleaving() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            if inst.kind() == ArrayKind::L3Shared {
                assert_eq!(inst.array().interleave_degree(), 1);
            } else {
                assert!(inst.array().interleave_degree() > 1, "{:?}", inst.kind());
            }
        }
    }

    #[test]
    fn l2_owned_by_pmds_l1_by_cores() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            match inst.kind() {
                ArrayKind::L2Unified => assert!(matches!(inst.owner(), ArrayOwner::Pmd(_))),
                ArrayKind::L3Shared => assert_eq!(inst.owner(), ArrayOwner::Shared),
                _ => assert!(matches!(inst.owner(), ArrayOwner::Core(_))),
            }
        }
    }

    #[test]
    fn campaign_operating_points_validate() {
        let soc = XGene2::new();
        for point in OperatingPoint::CAMPAIGN {
            soc.validate(point)
                .unwrap_or_else(|e| panic!("{}: {e}", point.label()));
        }
    }

    #[test]
    fn validation_rejects_bad_points() {
        let soc = XGene2::new();
        // Above nominal.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(1000);
        assert!(soc.validate(p).is_err());
        // Off-grid voltage.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(977);
        assert!(soc.validate(p).is_err());
        // Implausibly low.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(400);
        assert!(soc.validate(p).is_err());
        // Off-grid frequency.
        let mut p = OperatingPoint::nominal();
        p.frequency = Megahertz::new(1000);
        assert!(soc.validate(p).is_err());
        // Too fast.
        let mut p = OperatingPoint::nominal();
        p.frequency = Megahertz::new(2700);
        assert!(soc.validate(p).is_err());
    }

    #[test]
    fn operating_point_domain_lookup() {
        let p = OperatingPoint::vmin_900();
        assert_eq!(p.voltage_of(VoltageDomain::Pmd), Millivolts::new(790));
        assert_eq!(p.voltage_of(VoltageDomain::Soc), Millivolts::new(950));
        assert_eq!(p.voltage_of(VoltageDomain::Standby), Millivolts::new(950));
    }

    #[test]
    fn labels() {
        assert_eq!(OperatingPoint::nominal().label(), "980mV@2.4 GHz");
        assert_eq!(OperatingPoint::vmin_900().label(), "790mV@900 MHz");
    }

    #[test]
    fn spec_covers_table1() {
        let spec = XGene2::new().spec();
        assert_eq!(spec.len(), 11);
        assert!(spec
            .iter()
            .any(|(k, v)| k == "L3 Cache" && v.contains("SECDED")));
    }
}
