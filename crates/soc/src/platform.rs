//! The die: cores, PMDs, SRAM arrays, voltage domains and operating points.
//!
//! Since the platform-spec refactor the die is *data*: [`Platform`] is
//! built from a validated [`PlatformSpec`] and owns no platform-specific
//! constants of its own. [`XGene2`] remains as the constants-and-builder
//! namespace for the paper's machine; `XGene2::new()` now returns a
//! [`Platform`] built from [`PlatformSpec::xgene2`], bit-identical to the
//! historical hand-rolled constructor.

use serde::{Deserialize, Serialize};

use serscale_sram::SramArray;
use serscale_types::{
    ArrayKind, Bits, CoreId, Megahertz, Millivolts, PmdId, Result, VoltageDomain,
};

use crate::spec::{ArrayScope, PlatformSpec};

/// Which hardware block owns an array instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayOwner {
    /// A private per-core array.
    Core(CoreId),
    /// A per-cluster array (the unified L2).
    Pmd(PmdId),
    /// A die-shared array (the L3).
    Shared,
}

/// One physical array instance on the die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayInstance {
    array: SramArray,
    owner: ArrayOwner,
}

impl ArrayInstance {
    /// The array's geometry/protection descriptor.
    pub const fn array(&self) -> &SramArray {
        &self.array
    }

    /// Which block owns this instance.
    pub const fn owner(&self) -> ArrayOwner {
        self.owner
    }

    /// Shorthand for the array kind.
    pub const fn kind(&self) -> ArrayKind {
        self.array.kind()
    }

    /// Shorthand for the data capacity in bits.
    pub const fn data_bits(&self) -> Bits {
        self.array.data_bits()
    }
}

/// A complete voltage/frequency setting of the chip — one column of
/// Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// PMD-domain (cores, L1/L2, TLBs) supply voltage.
    pub pmd: Millivolts,
    /// SoC-domain (L3, DRAM controllers) supply voltage.
    pub soc: Millivolts,
    /// Core clock frequency (all PMDs set together in the experiments).
    pub frequency: Megahertz,
}

impl OperatingPoint {
    /// Nominal conditions: 980 mV / 950 mV at 2.4 GHz (Table 3 row 1).
    pub const fn nominal() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(980),
            soc: Millivolts::new(950),
            frequency: Megahertz::new(2400),
        }
    }

    /// The "safe" reduced setting: 930 mV / 925 mV at 2.4 GHz (row 2).
    pub const fn safe() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(930),
            soc: Millivolts::new(925),
            frequency: Megahertz::new(2400),
        }
    }

    /// The 2.4 GHz Vmin: 920 mV / 920 mV (row 3).
    pub const fn vmin_2400() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(920),
            soc: Millivolts::new(920),
            frequency: Megahertz::new(2400),
        }
    }

    /// The 900 MHz Vmin: 790 mV PMD with the SoC held at its 950 mV
    /// nominal (row 4).
    pub const fn vmin_900() -> Self {
        OperatingPoint {
            pmd: Millivolts::new(790),
            soc: Millivolts::new(950),
            frequency: Megahertz::new(900),
        }
    }

    /// The four operating points of the paper's campaign, in Table 2/3
    /// session order.
    pub const CAMPAIGN: [OperatingPoint; 4] = [
        Self::nominal(),
        Self::safe(),
        Self::vmin_2400(),
        Self::vmin_900(),
    ];

    /// The supply voltage of the given domain at this operating point,
    /// with the (never scaled) standby-rail voltage supplied by the
    /// caller's platform spec.
    pub const fn voltage_of_with(&self, domain: VoltageDomain, standby: Millivolts) -> Millivolts {
        match domain {
            VoltageDomain::Pmd => self.pmd,
            VoltageDomain::Soc => self.soc,
            VoltageDomain::Standby => standby,
        }
    }

    /// The supply voltage of the given domain at this operating point.
    /// The standby domain is never scaled and reports the X-Gene 2's
    /// 950 mV nominal; platform-aware callers should use
    /// [`Platform::domain_voltage`] instead.
    pub const fn voltage_of(&self, domain: VoltageDomain) -> Millivolts {
        self.voltage_of_with(domain, Millivolts::new(950))
    }

    /// A short label like `"980mV@2.4GHz"`.
    pub fn label(&self) -> String {
        format!("{}mV@{}", self.pmd.get(), self.frequency)
    }
}

/// A modelled die, built from a declarative [`PlatformSpec`].
///
/// Geometry and protection come from the spec's array inventory;
/// regulator floors, step grids and the PLL window from its rails and
/// frequency block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    spec: PlatformSpec,
    instances: Vec<ArrayInstance>,
}

impl Platform {
    /// Builds the die a spec describes.
    ///
    /// Instances are laid out in the deterministic order rate bookkeeping
    /// and traces depend on: every per-core array (in spec order) for
    /// core 0, then core 1, …; then every per-PMD array for PMD 0, …;
    /// then the shared arrays. For [`PlatformSpec::xgene2`] this
    /// reproduces the historical constructor bit-for-bit.
    pub fn from_spec(spec: &PlatformSpec) -> Self {
        let mut instances = Vec::new();
        let build = |a: &crate::spec::ArraySpec| {
            SramArray::new(a.kind, a.capacity, a.protection, a.interleave)
        };
        for c in 0..spec.cores {
            for a in spec
                .arrays
                .iter()
                .filter(|a| a.scope == ArrayScope::PerCore)
            {
                instances.push(ArrayInstance {
                    array: build(a),
                    owner: ArrayOwner::Core(CoreId::new(c)),
                });
            }
        }
        for p in 0..spec.pmds() {
            for a in spec.arrays.iter().filter(|a| a.scope == ArrayScope::PerPmd) {
                instances.push(ArrayInstance {
                    array: build(a),
                    owner: ArrayOwner::Pmd(PmdId::new(p)),
                });
            }
        }
        for a in spec.arrays.iter().filter(|a| a.scope == ArrayScope::Shared) {
            instances.push(ArrayInstance {
                array: build(a),
                owner: ArrayOwner::Shared,
            });
        }
        Platform {
            spec: spec.clone(),
            instances,
        }
    }

    /// The declarative spec this die was built from.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The platform identifier (e.g. `xgene2`).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of cores on the die.
    pub fn cores(&self) -> u8 {
        self.spec.cores
    }

    /// Number of PMDs / clusters on the die.
    pub fn pmds(&self) -> u8 {
        self.spec.pmds()
    }

    /// Iterates over every array instance on the die.
    pub fn arrays(&self) -> impl Iterator<Item = &ArrayInstance> {
        self.instances.iter()
    }

    /// Total protected SRAM capacity (the ~10 MB of §3.3 on the X-Gene).
    pub fn total_sram(&self) -> Bits {
        self.instances.iter().map(|i| i.data_bits()).sum()
    }

    /// The platform's nominal operating point (the first campaign row).
    pub fn nominal_point(&self) -> OperatingPoint {
        self.spec.nominal_point()
    }

    /// The supply voltage of a domain at an operating point, with the
    /// standby rail read from the spec instead of hardcoded.
    pub fn domain_voltage(&self, point: OperatingPoint, domain: VoltageDomain) -> Millivolts {
        point.voltage_of_with(domain, self.spec.standby)
    }

    /// The platform's linear Vmin(f) rule (integer-exact grid snap).
    pub fn vmin_at(&self, frequency: Megahertz) -> Millivolts {
        self.spec.vmin_at(frequency)
    }

    /// Validates an operating point against the platform's regulator/PLL
    /// constraints (rail nominals and floors, 5 mV step, PLL window and
    /// grid).
    ///
    /// # Errors
    ///
    /// Returns [`serscale_types::Error::InvalidConfig`] naming the
    /// offending parameter.
    pub fn validate(&self, point: OperatingPoint) -> Result<()> {
        self.spec.validate_point(point)
    }

    /// The Table 1-style specification rows, as `(parameter, value)`
    /// pairs — what `repro --table 1` prints.
    pub fn table1(&self) -> Vec<(String, String)> {
        self.spec.table1()
    }
}

impl Default for Platform {
    fn default() -> Self {
        XGene2::new()
    }
}

/// Constants-and-builder namespace for the paper's X-Gene 2.
///
/// The die itself is data now ([`PlatformSpec::xgene2`]); this type keeps
/// the §3.1 constants callers pin against and the classic `new()`
/// entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XGene2;

impl XGene2 {
    /// Number of cores.
    pub const CORES: u8 = 8;
    /// Number of dual-core PMDs.
    pub const PMDS: u8 = 4;
    /// The PMD-domain nominal voltage.
    pub const PMD_NOMINAL: Millivolts = Millivolts::new(980);
    /// The SoC-domain nominal voltage.
    pub const SOC_NOMINAL: Millivolts = Millivolts::new(950);
    /// Lowest PLL frequency.
    pub const FREQ_MIN: Megahertz = Megahertz::new(300);
    /// Highest PLL frequency.
    pub const FREQ_MAX: Megahertz = Megahertz::new(2400);

    /// Builds the X-Gene 2 die with Table 1's array inventory.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Platform {
        Platform::from_spec(&PlatformSpec::xgene2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_ecc::ProtectionScheme;
    use serscale_types::CacheLevel;

    #[test]
    fn array_inventory_matches_table1() {
        let soc = XGene2::new();
        let count = |kind: ArrayKind| soc.arrays().filter(|a| a.kind() == kind).count();
        assert_eq!(count(ArrayKind::L1Instruction), 8);
        assert_eq!(count(ArrayKind::L1Data), 8);
        assert_eq!(count(ArrayKind::DataTlb), 8);
        assert_eq!(count(ArrayKind::InstructionTlb), 8);
        assert_eq!(count(ArrayKind::UnifiedL2Tlb), 8);
        assert_eq!(count(ArrayKind::L2Unified), 4);
        assert_eq!(count(ArrayKind::L3Shared), 1);
    }

    #[test]
    fn total_sram_is_about_10_megabytes() {
        // §3.3 assumes ~10 MB of on-chip SRAM.
        let total_mb = XGene2::new().total_sram().get() as f64 / 8.0 / 1.0e6;
        assert!(total_mb > 9.0 && total_mb < 11.0, "total = {total_mb} MB");
    }

    #[test]
    fn protection_assignment() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            let expected = match inst.kind().cache_level() {
                CacheLevel::L2 | CacheLevel::L3 => ProtectionScheme::Secded,
                _ => ProtectionScheme::Parity,
            };
            assert_eq!(inst.array().protection(), expected, "{:?}", inst.kind());
        }
    }

    #[test]
    fn only_l3_lacks_interleaving() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            if inst.kind() == ArrayKind::L3Shared {
                assert_eq!(inst.array().interleave_degree(), 1);
            } else {
                assert!(inst.array().interleave_degree() > 1, "{:?}", inst.kind());
            }
        }
    }

    #[test]
    fn l2_owned_by_pmds_l1_by_cores() {
        let soc = XGene2::new();
        for inst in soc.arrays() {
            match inst.kind() {
                ArrayKind::L2Unified => assert!(matches!(inst.owner(), ArrayOwner::Pmd(_))),
                ArrayKind::L3Shared => assert_eq!(inst.owner(), ArrayOwner::Shared),
                _ => assert!(matches!(inst.owner(), ArrayOwner::Core(_))),
            }
        }
    }

    #[test]
    fn instance_order_is_core_then_pmd_then_shared() {
        // Trace and rate bookkeeping depend on this exact layout — it is
        // the order the historical constructor produced.
        let soc = XGene2::new();
        let kinds: Vec<ArrayKind> = soc.arrays().map(|a| a.kind()).collect();
        let per_core = [
            ArrayKind::L1Instruction,
            ArrayKind::L1Data,
            ArrayKind::DataTlb,
            ArrayKind::InstructionTlb,
            ArrayKind::UnifiedL2Tlb,
        ];
        for c in 0..8 {
            assert_eq!(&kinds[c * 5..c * 5 + 5], &per_core, "core {c}");
        }
        assert!(kinds[40..44].iter().all(|k| *k == ArrayKind::L2Unified));
        assert_eq!(kinds[44], ArrayKind::L3Shared);
        assert_eq!(kinds.len(), 45);
    }

    #[test]
    fn campaign_operating_points_validate() {
        let soc = XGene2::new();
        for point in OperatingPoint::CAMPAIGN {
            soc.validate(point)
                .unwrap_or_else(|e| panic!("{}: {e}", point.label()));
        }
    }

    #[test]
    fn validation_rejects_bad_points() {
        let soc = XGene2::new();
        // Above nominal.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(1000);
        assert!(soc.validate(p).is_err());
        // Off-grid voltage.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(977);
        assert!(soc.validate(p).is_err());
        // Implausibly low.
        let mut p = OperatingPoint::nominal();
        p.pmd = Millivolts::new(400);
        assert!(soc.validate(p).is_err());
        // Off-grid frequency.
        let mut p = OperatingPoint::nominal();
        p.frequency = Megahertz::new(1000);
        assert!(soc.validate(p).is_err());
        // Too fast.
        let mut p = OperatingPoint::nominal();
        p.frequency = Megahertz::new(2700);
        assert!(soc.validate(p).is_err());
    }

    #[test]
    fn zynq_platform_builds_and_validates_its_campaign() {
        let soc = Platform::from_spec(&PlatformSpec::zynq_mpsoc());
        assert_eq!(soc.cores(), 4);
        assert_eq!(soc.pmds(), 1);
        // 4×(32+32+L2TLB…) KB L1/TLB + 1 MB L2 + 256 KB OCM.
        let kinds: Vec<ArrayKind> = soc.arrays().map(|a| a.kind()).collect();
        assert_eq!(kinds.len(), 4 * 5 + 1 + 1);
        for c in soc.spec().campaign.clone() {
            soc.validate(c.point)
                .unwrap_or_else(|e| panic!("{}: {e}", c.label));
        }
        assert_eq!(soc.nominal_point().pmd, Millivolts::new(850));
    }

    #[test]
    fn validation_edges_are_integer_exact_on_both_platforms() {
        // Exactly at the rail floor / nominal / PLL window edges, on the
        // grid, each platform accepts; one 5 mV or 300 MHz step past any
        // edge it rejects. No floating point is involved anywhere.
        for spec in [PlatformSpec::xgene2(), PlatformSpec::zynq_mpsoc()] {
            let soc = Platform::from_spec(&spec);
            let edge = |pmd: Millivolts, soc_mv: Millivolts, f: Megahertz| OperatingPoint {
                pmd,
                soc: soc_mv,
                frequency: f,
            };
            let s = &spec;
            let ok = [
                edge(s.pmd_rail.floor, s.soc_rail.floor, s.freq_min),
                edge(s.pmd_rail.nominal, s.soc_rail.nominal, s.freq_max),
            ];
            for p in ok {
                soc.validate(p)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            }
            let step = Millivolts::new(Millivolts::STEP);
            let bad = [
                edge(
                    Millivolts::new(s.pmd_rail.floor.get() - step.get()),
                    s.soc_rail.floor,
                    s.freq_min,
                ),
                edge(
                    Millivolts::new(s.pmd_rail.nominal.get() + step.get()),
                    s.soc_rail.nominal,
                    s.freq_max,
                ),
                edge(
                    s.pmd_rail.nominal,
                    s.soc_rail.nominal,
                    Megahertz::new(s.freq_max.get() + Megahertz::STEP),
                ),
                edge(
                    s.pmd_rail.nominal,
                    s.soc_rail.nominal,
                    Megahertz::new(s.freq_min.get() - Megahertz::STEP),
                ),
            ];
            for p in bad {
                assert!(soc.validate(p).is_err(), "{}: {p:?}", spec.name);
            }
        }
    }

    #[test]
    fn operating_point_domain_lookup() {
        let p = OperatingPoint::vmin_900();
        assert_eq!(p.voltage_of(VoltageDomain::Pmd), Millivolts::new(790));
        assert_eq!(p.voltage_of(VoltageDomain::Soc), Millivolts::new(950));
        assert_eq!(p.voltage_of(VoltageDomain::Standby), Millivolts::new(950));
        // The Zynq standby rail differs — the platform-aware lookup
        // reads it from the spec.
        let zynq = Platform::from_spec(&PlatformSpec::zynq_mpsoc());
        let zp = zynq.nominal_point();
        assert_eq!(
            zynq.domain_voltage(zp, VoltageDomain::Standby),
            Millivolts::new(850)
        );
    }

    #[test]
    fn labels() {
        assert_eq!(OperatingPoint::nominal().label(), "980mV@2.4 GHz");
        assert_eq!(OperatingPoint::vmin_900().label(), "790mV@900 MHz");
    }

    #[test]
    fn spec_covers_table1() {
        let spec = XGene2::new().table1();
        assert_eq!(spec.len(), 11);
        assert!(spec
            .iter()
            .any(|(k, v)| k == "L3 Cache" && v.contains("SECDED")));
    }
}
