//! The EDAC (Error Detection And Correction) log.
//!
//! The paper harvests cache/TLB upset counts through the Linux EDAC driver:
//! every parity or SECDED event the hardware handles is reported to
//! software as a *corrected* (CE) or *uncorrected* (UE) error attributed to
//! a specific array (\[2\] in the paper, §4.2). [`EdacLog`] is the simulated
//! equivalent: the SoC pushes records, the campaign harness drains them and
//! aggregates per cache level — producing exactly the data behind
//! Figures 5, 6 and 7.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use serscale_types::{ArrayKind, CacheLevel, SimInstant};

/// Whether the hardware corrected the reported event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdacSeverity {
    /// A corrected error (CE): parity-detected-and-refilled, or SECDED
    /// single-bit correction. Includes deceptive corrections of aliased
    /// multi-bit errors — hardware cannot tell the difference.
    Corrected,
    /// An uncorrected error (UE): detected but unrecoverable (SECDED
    /// double-bit).
    Uncorrected,
}

impl fmt::Display for EdacSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdacSeverity::Corrected => "CE",
            EdacSeverity::Uncorrected => "UE",
        })
    }
}

/// One EDAC log record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdacRecord {
    /// When the event was reported.
    pub time: SimInstant,
    /// Which array reported it.
    pub array: ArrayKind,
    /// Corrected or uncorrected.
    pub severity: EdacSeverity,
}

impl EdacRecord {
    /// The cache level this record aggregates under in Figures 6–7.
    pub fn cache_level(&self) -> CacheLevel {
        self.array.cache_level()
    }

    /// Renders the record in a dmesg-like line.
    pub fn to_dmesg_line(&self) -> String {
        format!(
            "[{:12.6}] EDAC {}: 1 {} error(s) detected",
            self.time.as_secs(),
            self.array,
            self.severity
        )
    }

    /// Parses a line produced by [`EdacRecord::to_dmesg_line`] — the
    /// campaign harness scrapes the DUT's kernel log exactly like the
    /// paper's Control-PC scrapes dmesg over the serial link.
    ///
    /// Returns `None` for lines that are not EDAC reports (a real dmesg
    /// is full of other traffic).
    pub fn from_dmesg_line(line: &str) -> Option<EdacRecord> {
        let rest = line.trim().strip_prefix('[')?;
        let (ts, rest) = rest.split_once(']')?;
        let time = SimInstant::from_secs(ts.trim().parse::<f64>().ok()?.max(0.0));
        let rest = rest.trim().strip_prefix("EDAC ")?;
        let (array_str, rest) = rest.split_once(':')?;
        let array = ArrayKind::ALL
            .into_iter()
            .find(|a| a.to_string() == array_str)?;
        let severity = if rest.contains(" CE ") {
            EdacSeverity::Corrected
        } else if rest.contains(" UE ") {
            EdacSeverity::Uncorrected
        } else {
            return None;
        };
        Some(EdacRecord {
            time,
            array,
            severity,
        })
    }
}

/// Per-(level, severity) aggregate counts.
pub type LevelCounts = BTreeMap<(CacheLevel, EdacSeverity), u64>;

/// The in-memory EDAC event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EdacLog {
    records: Vec<EdacRecord>,
}

impl EdacLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: EdacRecord) {
        self.records.push(record);
    }

    /// Appends `count` identical records (a multi-word strike reports once
    /// per affected word).
    pub fn push_many(&mut self, record: EdacRecord, count: usize) {
        for _ in 0..count {
            self.records.push(record);
        }
    }

    /// All records in arrival order.
    pub fn records(&self) -> &[EdacRecord] {
        &self.records
    }

    /// The total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total corrected-error count.
    pub fn corrected_count(&self) -> u64 {
        self.count_severity(EdacSeverity::Corrected)
    }

    /// Total uncorrected-error count.
    pub fn uncorrected_count(&self) -> u64 {
        self.count_severity(EdacSeverity::Uncorrected)
    }

    fn count_severity(&self, severity: EdacSeverity) -> u64 {
        self.records
            .iter()
            .filter(|r| r.severity == severity)
            .count() as u64
    }

    /// Aggregates counts per (cache level, severity) — the shape of
    /// Figures 6 and 7.
    pub fn counts_per_level(&self) -> LevelCounts {
        let mut counts = LevelCounts::new();
        for r in &self.records {
            *counts.entry((r.cache_level(), r.severity)).or_insert(0) += 1;
        }
        counts
    }

    /// Drains all records, leaving the log empty (the harness collects
    /// between runs).
    pub fn drain(&mut self) -> Vec<EdacRecord> {
        std::mem::take(&mut self.records)
    }

    /// Renders the whole log dmesg-style.
    pub fn to_dmesg(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_dmesg_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, array: ArrayKind, severity: EdacSeverity) -> EdacRecord {
        EdacRecord {
            time: SimInstant::from_secs(t),
            array,
            severity,
        }
    }

    #[test]
    fn push_and_count() {
        let mut log = EdacLog::new();
        assert!(log.is_empty());
        log.push(rec(1.0, ArrayKind::L1Data, EdacSeverity::Corrected));
        log.push(rec(2.0, ArrayKind::L3Shared, EdacSeverity::Corrected));
        log.push(rec(3.0, ArrayKind::L3Shared, EdacSeverity::Uncorrected));
        assert_eq!(log.len(), 3);
        assert_eq!(log.corrected_count(), 2);
        assert_eq!(log.uncorrected_count(), 1);
    }

    #[test]
    fn aggregation_per_level() {
        let mut log = EdacLog::new();
        log.push(rec(1.0, ArrayKind::L1Data, EdacSeverity::Corrected));
        log.push(rec(1.5, ArrayKind::L1Instruction, EdacSeverity::Corrected));
        log.push(rec(2.0, ArrayKind::DataTlb, EdacSeverity::Corrected));
        log.push(rec(2.5, ArrayKind::L3Shared, EdacSeverity::Uncorrected));
        let counts = log.counts_per_level();
        assert_eq!(counts[&(CacheLevel::L1, EdacSeverity::Corrected)], 2);
        assert_eq!(counts[&(CacheLevel::Tlb, EdacSeverity::Corrected)], 1);
        assert_eq!(counts[&(CacheLevel::L3, EdacSeverity::Uncorrected)], 1);
        assert!(!counts.contains_key(&(CacheLevel::L2, EdacSeverity::Corrected)));
    }

    #[test]
    fn push_many_replicates() {
        let mut log = EdacLog::new();
        log.push_many(rec(1.0, ArrayKind::L2Unified, EdacSeverity::Corrected), 4);
        assert_eq!(log.corrected_count(), 4);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut log = EdacLog::new();
        log.push(rec(1.0, ArrayKind::L1Data, EdacSeverity::Corrected));
        let drained = log.drain();
        assert_eq!(drained.len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn dmesg_roundtrip() {
        for array in ArrayKind::ALL {
            for severity in [EdacSeverity::Corrected, EdacSeverity::Uncorrected] {
                let r = EdacRecord {
                    time: SimInstant::from_secs(33.25),
                    array,
                    severity,
                };
                let parsed = EdacRecord::from_dmesg_line(&r.to_dmesg_line())
                    .unwrap_or_else(|| panic!("unparseable: {}", r.to_dmesg_line()));
                assert_eq!(parsed, r);
            }
        }
    }

    #[test]
    fn dmesg_parser_rejects_noise() {
        for line in [
            "",
            "[    1.000000] usb 1-1: new high-speed USB device",
            "[    2.000000] EDAC MC0: something unrelated",
            "not even a bracket",
        ] {
            assert_eq!(EdacRecord::from_dmesg_line(line), None, "{line}");
        }
    }

    #[test]
    fn dmesg_rendering() {
        let r = rec(12.5, ArrayKind::L3Shared, EdacSeverity::Uncorrected);
        let line = r.to_dmesg_line();
        assert!(line.contains("L3"), "{line}");
        assert!(line.contains("UE"), "{line}");
        let mut log = EdacLog::new();
        log.push(r);
        log.push(r);
        assert_eq!(log.to_dmesg().lines().count(), 2);
    }
}
