//! Soft-error susceptibility of the *unprotected* core logic.
//!
//! Parity and SECDED cover the SRAM arrays; flip-flops, pipeline latches
//! and combinational paths in the cores have no protection, and faults
//! there are what the paper concludes drives its SDC explosion at low
//! voltage (Design implication #4: "SDCs are probably not caused by upsets
//! in SRAM structures when the microprocessor operates at a reduced supply
//! voltage").
//!
//! ## Model
//!
//! Two fault populations, both per-chip cross-sections under beam flux:
//!
//! * **Control-path faults** (fetch/branch/MMU state machines): corrupting
//!   one typically derails execution — an application or system crash.
//!   Scales with voltage like any stored bit:
//!   `σ_ctrl(V) = σ_c0 · exp(k·(1 − V/V₀))`.
//! * **Datapath faults** (ALU results, bypass latches, computation state):
//!   corrupting one silently alters data — an SDC if consumed. Besides the
//!   Qcrit term, these see a *timing-margin amplification* near the safe
//!   Vmin: as the supply approaches the lowest voltage at which the logic
//!   still meets timing, radiation-induced transients on critical paths
//!   that would have evaporated harmlessly at nominal voltage get latched.
//!   The amplification is exponential in the margin-to-Vmin and strongly
//!   frequency dependent (shorter cycles leave less slack to absorb a
//!   transient):
//!
//!   ```text
//!   σ_data(V, f) = σ_d0 · exp(k·(1 − V/V₀)) · (1 + A·(f/f₀)^γ · exp(−(V − Vmin(f))/τ))
//!   ```
//!
//! Calibration (`DESIGN.md` §3): the observed SDC event rates of the
//! campaign — 1.05/h at 980 mV, 2.0/h at 930 mV, 17.2/h at 920 mV
//! (all 2.4 GHz), and 2.2/h at 790 mV / 900 MHz — pin `A ≈ 13`,
//! `τ ≈ 3.3 mV` and `γ ≈ 4.7`. The same constants then *predict* the
//! paper's headline 16× SDC-FIT ratio and the near-absence of the
//! amplification at 900 MHz (Fig. 13), which is the model's built-in
//! explanation of Observation #6 (frequency does not matter — except
//! through this latching window).

use serde::{Deserialize, Serialize};

use serscale_types::{CrossSection, Megahertz, Millivolts};

use crate::spec::PlatformSpec;

/// The unprotected-logic susceptibility model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogicSusceptibility {
    /// Control-path cross-section at nominal voltage (cm²).
    sigma_ctrl_nominal: CrossSection,
    /// Datapath cross-section at nominal voltage, before amplification
    /// (cm²).
    sigma_data_nominal: CrossSection,
    /// The nominal (calibration) voltage.
    nominal_voltage: Millivolts,
    /// The Qcrit voltage sensitivity, shared with the SRAM model.
    voltage_sensitivity: f64,
    /// Amplification ceiling at full frequency, right at Vmin.
    amplification: f64,
    /// Amplification decay constant vs. margin above Vmin (mV).
    margin_tau_mv: f64,
    /// Frequency exponent of the amplification.
    frequency_gamma: f64,
    /// The frequency the amplification ceiling refers to.
    nominal_frequency: Megahertz,
}

impl LogicSusceptibility {
    /// Control-path cross-section at nominal voltage. Calibrated so
    /// control faults add ≈0.9 events/h on top of the UE-driven crashes,
    /// matching the campaign's 2.4 crashes/h at nominal conditions.
    pub const SIGMA_CTRL_NOMINAL_CM2: f64 = 1.7e-10;

    /// Datapath cross-section at nominal voltage. Calibrated so consumed
    /// datapath faults yield the campaign's ≈1.05 SDC/h at nominal
    /// conditions (mean consume probability ≈ 0.41 across the suite).
    pub const SIGMA_DATA_NOMINAL_CM2: f64 = 4.76e-10;

    /// Amplification ceiling `A` (dimensionless).
    pub const DEFAULT_AMPLIFICATION: f64 = 13.0;

    /// Margin decay constant `τ` in mV.
    pub const DEFAULT_MARGIN_TAU_MV: f64 = 3.3;

    /// Frequency exponent `γ`.
    pub const DEFAULT_FREQUENCY_GAMMA: f64 = 4.7;

    /// The calibrated X-Gene-2-class model (see constants).
    pub fn xgene2() -> Self {
        LogicSusceptibility {
            sigma_ctrl_nominal: CrossSection::cm2(Self::SIGMA_CTRL_NOMINAL_CM2),
            sigma_data_nominal: CrossSection::cm2(Self::SIGMA_DATA_NOMINAL_CM2),
            nominal_voltage: Millivolts::new(980),
            voltage_sensitivity: 3.2,
            amplification: Self::DEFAULT_AMPLIFICATION,
            margin_tau_mv: Self::DEFAULT_MARGIN_TAU_MV,
            frequency_gamma: Self::DEFAULT_FREQUENCY_GAMMA,
            nominal_frequency: Megahertz::new(2400),
        }
    }

    /// Builds a model from a platform spec's logic-physics block,
    /// anchored at the spec's PMD rail nominal and maximum frequency.
    ///
    /// For [`PlatformSpec::xgene2`] this is identical to
    /// [`LogicSusceptibility::xgene2`].
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        LogicSusceptibility {
            sigma_ctrl_nominal: CrossSection::cm2(spec.physics.logic_sigma_ctrl_cm2),
            sigma_data_nominal: CrossSection::cm2(spec.physics.logic_sigma_data_cm2),
            nominal_voltage: spec.pmd_rail.nominal,
            voltage_sensitivity: spec.physics.logic_voltage_sensitivity,
            amplification: spec.physics.logic_amplification,
            margin_tau_mv: spec.physics.logic_margin_tau_mv,
            frequency_gamma: spec.physics.logic_frequency_gamma,
            nominal_frequency: spec.freq_max,
        }
    }

    /// The shared Qcrit scaling factor `exp(k·(1 − V/V₀))`.
    fn qcrit_factor(&self, voltage: Millivolts) -> f64 {
        (self.voltage_sensitivity * (1.0 - voltage.ratio_to(self.nominal_voltage))).exp()
    }

    /// The timing-margin amplification factor `1 + A·(f/f₀)^γ·e^(−m/τ)`,
    /// where `m` is the margin above the safe Vmin at this frequency.
    pub fn margin_amplification(
        &self,
        voltage: Millivolts,
        frequency: Megahertz,
        vmin: Millivolts,
    ) -> f64 {
        let margin_mv = f64::from(voltage.get().saturating_sub(vmin.get()));
        let freq_term = frequency
            .ratio_to(self.nominal_frequency)
            .powf(self.frequency_gamma);
        1.0 + self.amplification * freq_term * (-margin_mv / self.margin_tau_mv).exp()
    }

    /// Control-path cross-section at the given voltage.
    pub fn sigma_control(&self, voltage: Millivolts) -> CrossSection {
        CrossSection::cm2(self.sigma_ctrl_nominal.as_cm2() * self.qcrit_factor(voltage))
    }

    /// Datapath cross-section at the given operating conditions, given the
    /// characterized safe Vmin for this frequency.
    ///
    /// ```
    /// use serscale_soc::LogicSusceptibility;
    /// use serscale_types::{Megahertz, Millivolts};
    ///
    /// let logic = LogicSusceptibility::xgene2();
    /// let f = Megahertz::new(2400);
    /// let vmin = Millivolts::new(920);
    /// let at_nominal = logic.sigma_data(Millivolts::new(980), f, vmin);
    /// let at_vmin = logic.sigma_data(vmin, f, vmin);
    /// // The paper's ≈16× SDC explosion at the lowest safe voltage.
    /// let ratio = at_vmin.as_cm2() / at_nominal.as_cm2();
    /// assert!(ratio > 12.0 && ratio < 22.0);
    /// ```
    pub fn sigma_data(
        &self,
        voltage: Millivolts,
        frequency: Megahertz,
        vmin: Millivolts,
    ) -> CrossSection {
        CrossSection::cm2(
            self.sigma_data_nominal.as_cm2()
                * self.qcrit_factor(voltage)
                * self.margin_amplification(voltage, frequency, vmin),
        )
    }
}

impl Default for LogicSusceptibility {
    fn default() -> Self {
        Self::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logic() -> LogicSusceptibility {
        LogicSusceptibility::xgene2()
    }

    const F24: Megahertz = Megahertz::new(2400);
    const F09: Megahertz = Megahertz::new(900);
    const VMIN24: Millivolts = Millivolts::new(920);
    const VMIN09: Millivolts = Millivolts::new(790);

    #[test]
    fn amplification_negligible_at_nominal() {
        let m = logic().margin_amplification(Millivolts::new(980), F24, VMIN24);
        assert!((m - 1.0).abs() < 1e-6, "m = {m}");
    }

    #[test]
    fn amplification_moderate_10mv_above_vmin() {
        // At 930 mV (10 mV margin): 1 + 13·e^(−10/3.3) ≈ 1.63.
        let m = logic().margin_amplification(Millivolts::new(930), F24, VMIN24);
        assert!((m - 1.63).abs() < 0.05, "m = {m}");
    }

    #[test]
    fn amplification_full_at_vmin() {
        let m = logic().margin_amplification(VMIN24, F24, VMIN24);
        assert!((m - 14.0).abs() < 0.01, "m = {m}");
    }

    #[test]
    fn amplification_suppressed_at_low_frequency() {
        // At 900 MHz the latching window shrinks: A·(900/2400)^4.7 ≈ 0.13.
        let m = logic().margin_amplification(VMIN09, F09, VMIN09);
        assert!((m - 1.13).abs() < 0.02, "m = {m}");
    }

    #[test]
    fn sdc_rate_ratios_match_campaign() {
        // σ_data ratios vs nominal should track the observed SDC event-rate
        // ratios: ~1.9 at 930 mV, ~16 at 920 mV, ~2.1 at 790/900.
        let l = logic();
        let base = l.sigma_data(Millivolts::new(980), F24, VMIN24).as_cm2();
        let r930 = l.sigma_data(Millivolts::new(930), F24, VMIN24).as_cm2() / base;
        let r920 = l.sigma_data(VMIN24, F24, VMIN24).as_cm2() / base;
        let r790 = l.sigma_data(VMIN09, F09, VMIN09).as_cm2() / base;
        assert!((r930 - 1.9).abs() < 0.3, "r930 = {r930}");
        assert!((r920 - 16.5).abs() < 2.5, "r920 = {r920}");
        assert!((r790 - 2.1).abs() < 0.4, "r790 = {r790}");
    }

    #[test]
    fn control_path_has_no_vmin_cliff() {
        let l = logic();
        let base = l.sigma_control(Millivolts::new(980)).as_cm2();
        let at_vmin = l.sigma_control(VMIN24).as_cm2();
        // Only the gentle Qcrit slope: ~+22%, no explosion.
        assert!((at_vmin / base - 1.22).abs() < 0.05);
    }

    #[test]
    fn below_vmin_margin_saturates() {
        // Margin uses saturating subtraction: below Vmin (never a valid
        // campaign point, but reachable in exploration sweeps) the
        // amplification stays at its ceiling rather than exploding further.
        let l = logic();
        let at = l.margin_amplification(Millivolts::new(900), F24, VMIN24);
        let at_vmin = l.margin_amplification(VMIN24, F24, VMIN24);
        assert_eq!(at, at_vmin);
    }

    #[test]
    fn spec_built_model_matches_the_calibrated_one() {
        assert_eq!(
            LogicSusceptibility::for_platform(&PlatformSpec::xgene2()),
            LogicSusceptibility::xgene2()
        );
    }

    #[test]
    fn datapath_dominates_control_at_vmin() {
        let l = logic();
        let data = l.sigma_data(VMIN24, F24, VMIN24).as_cm2();
        let ctrl = l.sigma_control(VMIN24).as_cm2();
        assert!(data / ctrl > 20.0, "data/ctrl = {}", data / ctrl);
    }
}
