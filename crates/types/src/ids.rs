//! Structural identifiers of the modelled platform: cores, core-pairs (PMDs),
//! threads, SRAM array kinds, and voltage domains.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hardware core index on the 8-core die.
///
/// ```
/// use serscale_types::{CoreId, PmdId};
///
/// let c5 = CoreId::new(5);
/// assert_eq!(c5.pmd(), PmdId::new(2)); // cores 4,5 share PMD 2
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core id.
    pub const fn new(id: u8) -> Self {
        CoreId(id)
    }

    /// Returns the raw index.
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The dual-core processor module (PMD) this core belongs to: cores are
    /// paired `{0,1} → PMD0`, `{2,3} → PMD1`, …
    pub const fn pmd(self) -> PmdId {
        PmdId(self.0 / 2)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A dual-core processor-module index (the unit of frequency control and the
/// unit sharing an L2 cache on the modelled platform).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PmdId(u8);

impl PmdId {
    /// Creates a PMD id.
    pub const fn new(id: u8) -> Self {
        PmdId(id)
    }

    /// Returns the raw index.
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The two core ids belonging to this PMD.
    pub const fn cores(self) -> [CoreId; 2] {
        [CoreId(self.0 * 2), CoreId(self.0 * 2 + 1)]
    }
}

impl fmt::Display for PmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pmd{}", self.0)
    }
}

/// A software thread index within a multithreaded benchmark run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ThreadId(u16);

impl ThreadId {
    /// Creates a thread id.
    pub const fn new(id: u16) -> Self {
        ThreadId(id)
    }

    /// Returns the raw index.
    pub const fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// The cache-hierarchy levels whose upset rates the paper reports
/// (Figures 6 and 7 group TLBs, L1, L2 and L3 separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Instruction/data TLBs and the unified L2 TLB (parity protected).
    Tlb,
    /// L1 instruction + data caches (parity protected, write-through).
    L1,
    /// Per-core-pair unified L2 (SECDED protected, write-back).
    L2,
    /// Shared L3 (SECDED protected, write-back).
    L3,
}

impl CacheLevel {
    /// All levels in hierarchy order.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::Tlb,
        CacheLevel::L1,
        CacheLevel::L2,
        CacheLevel::L3,
    ];
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheLevel::Tlb => "TLBs",
            CacheLevel::L1 => "L1 Cache",
            CacheLevel::L2 => "L2 Cache",
            CacheLevel::L3 => "L3 Cache",
        };
        f.write_str(s)
    }
}

/// The specific SRAM array kinds instantiated on the die.
///
/// [`CacheLevel`] is the reporting granularity; `ArrayKind` is the
/// structural granularity (an L1I and an L1D are distinct arrays that both
/// report as [`CacheLevel::L1`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ArrayKind {
    /// Per-core L1 instruction cache.
    L1Instruction,
    /// Per-core L1 data cache (write-through).
    L1Data,
    /// Per-core instruction/data TLBs.
    DataTlb,
    /// Per-core instruction TLB.
    InstructionTlb,
    /// Per-core unified L2 TLB.
    UnifiedL2Tlb,
    /// Per-pair unified L2 cache.
    L2Unified,
    /// Shared L3 cache.
    L3Shared,
}

impl ArrayKind {
    /// All array kinds.
    pub const ALL: [ArrayKind; 7] = [
        ArrayKind::L1Instruction,
        ArrayKind::L1Data,
        ArrayKind::DataTlb,
        ArrayKind::InstructionTlb,
        ArrayKind::UnifiedL2Tlb,
        ArrayKind::L2Unified,
        ArrayKind::L3Shared,
    ];

    /// The reporting level this array contributes to in Figures 6–7.
    pub const fn cache_level(self) -> CacheLevel {
        match self {
            ArrayKind::L1Instruction | ArrayKind::L1Data => CacheLevel::L1,
            ArrayKind::DataTlb | ArrayKind::InstructionTlb | ArrayKind::UnifiedL2Tlb => {
                CacheLevel::Tlb
            }
            ArrayKind::L2Unified => CacheLevel::L2,
            ArrayKind::L3Shared => CacheLevel::L3,
        }
    }

    /// The voltage domain supplying this array: L3 sits in the SoC domain,
    /// everything else in the PMD domain.
    pub const fn voltage_domain(self) -> VoltageDomain {
        match self {
            ArrayKind::L3Shared => VoltageDomain::Soc,
            _ => VoltageDomain::Pmd,
        }
    }
}

impl fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArrayKind::L1Instruction => "L1I",
            ArrayKind::L1Data => "L1D",
            ArrayKind::DataTlb => "DTLB",
            ArrayKind::InstructionTlb => "ITLB",
            ArrayKind::UnifiedL2Tlb => "L2TLB",
            ArrayKind::L2Unified => "L2",
            ArrayKind::L3Shared => "L3",
        };
        f.write_str(s)
    }
}

/// The independently regulated voltage domains of the modelled SoC
/// (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VoltageDomain {
    /// Processor Module Domain: the 8 cores, their L1s/TLBs and L2s.
    Pmd,
    /// System-on-Chip domain: L3 cache and DRAM controllers.
    Soc,
    /// Standby power domain (management processors). Not scaled in the
    /// experiments; carried for structural completeness.
    Standby,
}

impl VoltageDomain {
    /// The domains whose voltage the experiments scale.
    pub const SCALED: [VoltageDomain; 2] = [VoltageDomain::Pmd, VoltageDomain::Soc];
}

impl fmt::Display for VoltageDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VoltageDomain::Pmd => "PMD",
            VoltageDomain::Soc => "SoC",
            VoltageDomain::Standby => "Standby",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_pair_into_pmds() {
        assert_eq!(CoreId::new(0).pmd(), PmdId::new(0));
        assert_eq!(CoreId::new(1).pmd(), PmdId::new(0));
        assert_eq!(CoreId::new(6).pmd(), PmdId::new(3));
        assert_eq!(PmdId::new(2).cores(), [CoreId::new(4), CoreId::new(5)]);
    }

    #[test]
    fn pmd_core_roundtrip() {
        for c in 0..8u8 {
            let core = CoreId::new(c);
            assert!(core.pmd().cores().contains(&core));
        }
    }

    #[test]
    fn array_reporting_levels() {
        assert_eq!(ArrayKind::L1Instruction.cache_level(), CacheLevel::L1);
        assert_eq!(ArrayKind::L1Data.cache_level(), CacheLevel::L1);
        assert_eq!(ArrayKind::DataTlb.cache_level(), CacheLevel::Tlb);
        assert_eq!(ArrayKind::UnifiedL2Tlb.cache_level(), CacheLevel::Tlb);
        assert_eq!(ArrayKind::L2Unified.cache_level(), CacheLevel::L2);
        assert_eq!(ArrayKind::L3Shared.cache_level(), CacheLevel::L3);
    }

    #[test]
    fn l3_is_in_soc_domain() {
        // Key to Figure 7: at 790 mV only the PMD domain drops; the L3 stays
        // at the SoC domain's nominal voltage.
        assert_eq!(ArrayKind::L3Shared.voltage_domain(), VoltageDomain::Soc);
        for kind in ArrayKind::ALL {
            if kind != ArrayKind::L3Shared {
                assert_eq!(kind.voltage_domain(), VoltageDomain::Pmd, "{kind}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CacheLevel::Tlb.to_string(), "TLBs");
        assert_eq!(ArrayKind::L3Shared.to_string(), "L3");
        assert_eq!(VoltageDomain::Pmd.to_string(), "PMD");
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(PmdId::new(1).to_string(), "pmd1");
        assert_eq!(ThreadId::new(7).to_string(), "thread7");
    }
}
