//! Memory-capacity newtypes.
//!
//! Cache sizes in the modelled platform span 32 KB (L1) to 8 MB (L3); SER is
//! reported per Mbit (Table 2); per-bit cross-sections are per bit. [`Bits`]
//! and [`Bytes`] keep those scales straight.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// A memory capacity in bits.
///
/// ```
/// use serscale_types::{Bits, Bytes};
///
/// let l3 = Bytes::mib(8).as_bits();
/// assert_eq!(l3, Bits::new(8 * 1024 * 1024 * 8));
/// assert!((l3.as_mbit() - 67.108864).abs() < 1e-6);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Bits(u64);

impl Bits {
    /// The zero capacity.
    pub const ZERO: Bits = Bits(0);

    /// Creates a capacity from a raw bit count.
    pub const fn new(bits: u64) -> Self {
        Bits(bits)
    }

    /// Returns the raw bit count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the capacity in megabits (10⁶ bits, the SI-style "Mbit" used
    /// by FIT/Mbit SER figures).
    pub fn as_mbit(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Returns the capacity as a floating-point bit count, for
    /// cross-section arithmetic (`σ_array = bits × σ_bit`).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, Add::add)
    }
}

impl From<Bytes> for Bits {
    fn from(b: Bytes) -> Bits {
        b.as_bits()
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bits", self.0)
    }
}

/// A memory capacity in bytes, with binary-prefix constructors matching how
/// cache sizes are quoted (32 KB, 256 KB, 8 MB).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Creates a capacity from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a capacity of `n` KiB.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a capacity of `n` MiB.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to a bit count.
    pub const fn as_bits(self) -> Bits {
        Bits(self.0 * 8)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::new(0), Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{} MiB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{} KiB", self.0 / 1024)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A convenience pairing of a human-readable size with its bit capacity,
/// used by platform spec tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemSize {
    bytes: Bytes,
}

impl MemSize {
    /// Creates a size from bytes.
    pub const fn from_bytes(bytes: Bytes) -> Self {
        MemSize { bytes }
    }

    /// The size in bytes.
    pub const fn bytes(self) -> Bytes {
        self.bytes
    }

    /// The size in bits.
    pub const fn bits(self) -> Bits {
        self.bytes.as_bits()
    }
}

impl From<Bytes> for MemSize {
    fn from(bytes: Bytes) -> Self {
        MemSize { bytes }
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.bytes.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_prefixes() {
        assert_eq!(Bytes::kib(32).get(), 32768);
        assert_eq!(Bytes::mib(8).get(), 8 * 1024 * 1024);
    }

    #[test]
    fn bytes_to_bits() {
        assert_eq!(Bytes::kib(1).as_bits(), Bits::new(8192));
        let b: Bits = Bytes::new(3).into();
        assert_eq!(b, Bits::new(24));
    }

    #[test]
    fn mbit_is_decimal() {
        // "FIT per Mbit" in SER literature uses 10^6 bits.
        assert!((Bits::new(1_000_000).as_mbit() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xgene2_total_sram_is_about_10_mb() {
        // 8×(32+32) KB L1 + 4×256 KB L2 + 8 MB L3 ≈ 9.5 MiB: the paper's
        // "assuming 10 MB of on-chip SRAM" in §3.3.
        let total: Bytes = [
            Bytes::kib(32 * 8),
            Bytes::kib(32 * 8),
            Bytes::kib(256 * 4),
            Bytes::mib(8),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, Bytes::kib(512 + 1024 + 8192));
        let mbit = total.as_bits().as_mbit();
        assert!(mbit > 70.0 && mbit < 90.0, "mbit = {mbit}");
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::kib(256).to_string(), "256 KiB");
        assert_eq!(Bytes::mib(8).to_string(), "8 MiB");
        assert_eq!(Bytes::new(100).to_string(), "100 B");
        assert_eq!(MemSize::from_bytes(Bytes::kib(32)).to_string(), "32 KiB");
    }

    #[test]
    fn bits_sum() {
        let total: Bits = [Bits::new(8), Bits::new(16)].into_iter().sum();
        assert_eq!(total.get(), 24);
    }
}
