//! Radiation-environment units: particle flux, accumulated fluence,
//! cross-sections, and the FIT failure-rate unit, plus the JEDEC JESD89B
//! reference constants used throughout the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// The JESD89B reference neutron flux at New York City sea level for
/// energies above 10 MeV: ~13 neutrons/cm²/hour (§2.1, Eq. 2 of the paper).
pub const NYC_SEA_LEVEL_FLUX: Flux = Flux(13.0 / 3600.0);

/// The number of device-hours over which a FIT rate is defined (10⁹ h).
pub const FIT_HOURS: f64 = 1.0e9;

/// A neutron kinetic energy in MeV.
///
/// The TNF spectrum and the JEDEC atmospheric reference are both quoted for
/// the integrated flux above a 10 MeV threshold; thermal neutrons
/// (≲ 0.025 eV ≈ 2.5e-8 MeV) are tracked separately.
///
/// ```
/// use serscale_types::NeutronEnergy;
///
/// assert!(NeutronEnergy::mev(14.0) > NeutronEnergy::SEE_THRESHOLD);
/// assert!(NeutronEnergy::THERMAL < NeutronEnergy::SEE_THRESHOLD);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct NeutronEnergy(f64);

impl NeutronEnergy {
    /// The >10 MeV threshold used for single-event-effect flux accounting.
    pub const SEE_THRESHOLD: NeutronEnergy = NeutronEnergy(10.0);

    /// A representative thermal-neutron energy (0.025 eV).
    pub const THERMAL: NeutronEnergy = NeutronEnergy(2.5e-8);

    /// Creates an energy in MeV.
    ///
    /// # Panics
    ///
    /// Panics if `mev` is negative or non-finite.
    pub fn mev(mev: f64) -> Self {
        assert!(
            mev.is_finite() && mev >= 0.0,
            "energy must be finite and non-negative"
        );
        NeutronEnergy(mev)
    }

    /// Returns the energy in MeV.
    pub const fn as_mev(self) -> f64 {
        self.0
    }

    /// True when this energy is above the >10 MeV SEE accounting threshold.
    pub fn is_see_relevant(self) -> bool {
        self >= Self::SEE_THRESHOLD
    }
}

impl fmt::Display for NeutronEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MeV", self.0)
    }
}

/// A particle flux in neutrons per cm² per second.
///
/// ```
/// use serscale_types::{Flux, SimDuration};
///
/// // TNF beam-center flux is 2–3 × 10⁶ n/cm²/s; the paper's halo position
/// // receives 0.60% of it.
/// let center = Flux::per_cm2_s(2.5e6);
/// let halo = center.scaled(0.006);
/// assert!((halo.as_per_cm2_s() - 1.5e4).abs() < 1.0);
/// let fluence = halo * SimDuration::from_secs(100.0);
/// assert!((fluence.as_per_cm2() - 1.5e6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Flux(f64);

impl Flux {
    /// Creates a flux from a `neutrons/cm²/s` value.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or non-finite.
    pub fn per_cm2_s(f: f64) -> Self {
        assert!(
            f.is_finite() && f >= 0.0,
            "flux must be finite and non-negative, got {f}"
        );
        Flux(f)
    }

    /// Creates a flux from a `neutrons/cm²/hour` value (the unit JESD89B
    /// quotes the NYC reference in).
    pub fn per_cm2_hour(f: f64) -> Self {
        Self::per_cm2_s(f / 3600.0)
    }

    /// Returns the flux in neutrons/cm²/s.
    pub const fn as_per_cm2_s(&self) -> f64 {
        self.0
    }

    /// Returns the flux in neutrons/cm²/hour.
    pub fn as_per_cm2_hour(self) -> f64 {
        self.0 * 3600.0
    }

    /// Returns this flux attenuated (or amplified) by a dimensionless factor,
    /// e.g. the 0.60% halo transmission measured with the dosimeter.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(self, factor: f64) -> Flux {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        Flux(self.0 * factor)
    }

    /// The acceleration factor of this flux over a natural environment:
    /// how many hours of natural exposure one second under this flux is
    /// worth.
    pub fn acceleration_over(self, natural: Flux) -> f64 {
        self.0 / natural.0
    }
}

impl Mul<SimDuration> for Flux {
    type Output = Fluence;
    fn mul(self, rhs: SimDuration) -> Fluence {
        Fluence(self.0 * rhs.as_secs())
    }
}

impl fmt::Display for Flux {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} n/cm²/s", self.0)
    }
}

/// An accumulated particle fluence in neutrons per cm².
///
/// A test session in the paper stops when fluence reaches 10¹¹ n/cm² (or 100
/// error events accumulate, whichever is first).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Fluence(f64);

impl Fluence {
    /// The zero fluence.
    pub const ZERO: Fluence = Fluence(0.0);

    /// The ESCC-25100 rule-of-thumb fluence for statistically significant
    /// radiation-test results: 10¹¹ n/cm² (§3.5).
    pub const SIGNIFICANCE_THRESHOLD: Fluence = Fluence(1.0e11);

    /// Creates a fluence from a `neutrons/cm²` value.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or non-finite.
    pub fn per_cm2(f: f64) -> Self {
        assert!(
            f.is_finite() && f >= 0.0,
            "fluence must be finite and non-negative, got {f}"
        );
        Fluence(f)
    }

    /// Returns the fluence in neutrons/cm².
    pub const fn as_per_cm2(&self) -> f64 {
        self.0
    }

    /// The equivalent calendar time a device in the `natural` environment
    /// would need to accumulate this fluence (Table 2's "years of NYC
    /// equivalent radiation" row).
    pub fn natural_equivalent(self, natural: Flux) -> SimDuration {
        SimDuration::from_secs(self.0 / natural.as_per_cm2_s())
    }
}

impl Add for Fluence {
    type Output = Fluence;
    fn add(self, rhs: Fluence) -> Fluence {
        Fluence(self.0 + rhs.0)
    }
}

impl AddAssign for Fluence {
    fn add_assign(&mut self, rhs: Fluence) {
        self.0 += rhs.0;
    }
}

impl Sum for Fluence {
    fn sum<I: Iterator<Item = Fluence>>(iter: I) -> Fluence {
        iter.fold(Fluence::ZERO, Add::add)
    }
}

impl fmt::Display for Fluence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} n/cm²", self.0)
    }
}

/// A radiation-event cross-section in cm².
///
/// The *dynamic cross-section* of the paper (Eq. 1) is
/// `events / fluence`; multiplied by an environment flux it yields an event
/// rate, and via [`CrossSection::fit_at`] the FIT rate of Eq. 2.
///
/// ```
/// use serscale_types::{CrossSection, Fluence, NYC_SEA_LEVEL_FLUX};
///
/// // 95 events over 1.49e11 n/cm² (Table 2, session 1).
/// let dcs = CrossSection::from_events(95.0, Fluence::per_cm2(1.49e11));
/// let fit = dcs.fit_at(NYC_SEA_LEVEL_FLUX);
/// assert!((fit.get() - 8.29).abs() < 0.05); // paper: total FIT ≈ 8.31
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct CrossSection(f64);

impl CrossSection {
    /// The zero cross-section.
    pub const ZERO: CrossSection = CrossSection(0.0);

    /// Creates a cross-section from a `cm²` value.
    ///
    /// # Panics
    ///
    /// Panics if `cm2` is negative or non-finite.
    pub fn cm2(cm2: f64) -> Self {
        assert!(
            cm2.is_finite() && cm2 >= 0.0,
            "cross-section must be finite and non-negative, got {cm2}"
        );
        CrossSection(cm2)
    }

    /// Computes a dynamic cross-section from an observed event count and the
    /// fluence over which it was accumulated (Eq. 1 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `fluence` is zero (no exposure, cross-section undefined) or
    /// `events` is negative.
    pub fn from_events(events: f64, fluence: Fluence) -> Self {
        assert!(
            fluence.as_per_cm2() > 0.0,
            "cross-section undefined at zero fluence"
        );
        assert!(events >= 0.0, "event count must be non-negative");
        CrossSection(events / fluence.as_per_cm2())
    }

    /// Returns the cross-section in cm².
    pub const fn as_cm2(&self) -> f64 {
        self.0
    }

    /// The expected event rate (events/s) of a device with this
    /// cross-section in an environment with the given flux.
    pub fn event_rate(self, flux: Flux) -> f64 {
        self.0 * flux.as_per_cm2_s()
    }

    /// The FIT rate (failures per 10⁹ device-hours) of a device with this
    /// cross-section in an environment with the given flux — Eq. 2 of the
    /// paper.
    pub fn fit_at(self, flux: Flux) -> Fit {
        Fit::new(self.0 * flux.as_per_cm2_hour() * FIT_HOURS)
    }
}

impl Add for CrossSection {
    type Output = CrossSection;
    fn add(self, rhs: CrossSection) -> CrossSection {
        CrossSection(self.0 + rhs.0)
    }
}

impl Sum for CrossSection {
    fn sum<I: Iterator<Item = CrossSection>>(iter: I) -> CrossSection {
        iter.fold(CrossSection::ZERO, Add::add)
    }
}

impl Mul<f64> for CrossSection {
    type Output = CrossSection;
    fn mul(self, rhs: f64) -> CrossSection {
        CrossSection(self.0 * rhs)
    }
}

impl fmt::Display for CrossSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} cm²", self.0)
    }
}

/// A failure rate in FIT: failures per 10⁹ device-hours.
///
/// ```
/// use serscale_types::Fit;
///
/// let sdc_nominal = Fit::new(2.54);
/// let sdc_vmin = Fit::new(41.43);
/// assert!((sdc_vmin / sdc_nominal - 16.3).abs() < 0.05); // the paper's 16×
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Fit(f64);

impl Fit {
    /// The zero failure rate.
    pub const ZERO: Fit = Fit(0.0);

    /// Creates a FIT rate.
    ///
    /// # Panics
    ///
    /// Panics if `fit` is negative or non-finite.
    pub fn new(fit: f64) -> Self {
        assert!(
            fit.is_finite() && fit >= 0.0,
            "FIT must be finite and non-negative, got {fit}"
        );
        Fit(fit)
    }

    /// Returns the raw FIT value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The mean time to failure implied by this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn mttf(self) -> SimDuration {
        assert!(self.0 > 0.0, "MTTF undefined at zero FIT");
        SimDuration::from_hours(FIT_HOURS / self.0)
    }

    /// FIT normalized per Mbit of a memory of `mbits` megabits (the
    /// "FIT per Mbit" SER unit of Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `mbits` is not positive.
    pub fn per_mbit(self, mbits: f64) -> Fit {
        assert!(mbits > 0.0, "memory size must be positive");
        Fit(self.0 / mbits)
    }
}

impl Add for Fit {
    type Output = Fit;
    fn add(self, rhs: Fit) -> Fit {
        Fit(self.0 + rhs.0)
    }
}

impl AddAssign for Fit {
    fn add_assign(&mut self, rhs: Fit) {
        self.0 += rhs.0;
    }
}

impl Sum for Fit {
    fn sum<I: Iterator<Item = Fit>>(iter: I) -> Fit {
        iter.fold(Fit::ZERO, Add::add)
    }
}

impl Div for Fit {
    type Output = f64;
    fn div(self, rhs: Fit) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} FIT", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyc_flux_matches_jedec_value() {
        assert!((NYC_SEA_LEVEL_FLUX.as_per_cm2_hour() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn flux_times_duration_is_fluence() {
        let f = Flux::per_cm2_s(1.5e6);
        let fl = f * SimDuration::from_minutes(1651.0);
        assert!((fl.as_per_cm2() - 1.5e6 * 1651.0 * 60.0).abs() < 1.0);
    }

    #[test]
    fn table2_session1_fluence_is_reachable() {
        // Session 1: 1651 minutes at the halo flux gives ≈1.49e11 n/cm².
        let fl = Flux::per_cm2_s(1.5e6) * SimDuration::from_minutes(1651.0);
        assert!((fl.as_per_cm2() - 1.49e11).abs() / 1.49e11 < 0.01);
        assert!(fl >= Fluence::SIGNIFICANCE_THRESHOLD);
    }

    #[test]
    fn nyc_equivalent_years_matches_table2() {
        // Table 2 row 5: 1.49e11 n/cm² ≡ 1.30e6 years of NYC exposure.
        let years = Fluence::per_cm2(1.49e11)
            .natural_equivalent(NYC_SEA_LEVEL_FLUX)
            .as_hours()
            / (24.0 * 365.25);
        assert!(
            (years - 1.30e6).abs() / 1.30e6 < 0.02,
            "years = {years:.3e}"
        );
    }

    #[test]
    fn halo_attenuation() {
        let center = Flux::per_cm2_s(2.5e6);
        let halo = center.scaled(0.006);
        assert!((halo.as_per_cm2_s() - 15000.0).abs() < 1e-6);
        assert!((halo.acceleration_over(NYC_SEA_LEVEL_FLUX) - 15000.0 * 3600.0 / 13.0).abs() < 1.0);
    }

    #[test]
    fn dynamic_cross_section_eq1() {
        let dcs = CrossSection::from_events(1669.0, Fluence::per_cm2(1.49e11));
        assert!((dcs.as_cm2() - 1.12e-8).abs() / 1.12e-8 < 0.01);
    }

    #[test]
    fn fit_eq2_roundtrip() {
        // FIT = DCS × 13 n/cm²/h × 1e9 h.
        let dcs = CrossSection::cm2(1.0e-9);
        let fit = dcs.fit_at(NYC_SEA_LEVEL_FLUX);
        assert!((fit.get() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn memory_ser_fit_per_mbit_matches_table2() {
        // Session 1: 1669 upsets / 1.49e11 n/cm², 80 Mbit of SRAM → 2.08
        // FIT/Mbit at NYC (Table 2 row 10 gives 2.08).
        let dcs = CrossSection::from_events(1669.0, Fluence::per_cm2(1.49e11));
        let fit = dcs.fit_at(NYC_SEA_LEVEL_FLUX).per_mbit(70.0);
        assert!((fit.get() - 2.08).abs() < 0.1, "fit/mbit = {fit}");
    }

    #[test]
    fn fit_ratio_division() {
        assert!((Fit::new(41.43) / Fit::new(2.54) - 16.31).abs() < 0.01);
    }

    #[test]
    fn mttf_inverse_of_fit() {
        let fit = Fit::new(1000.0);
        assert!((fit.mttf().as_hours() - 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn fluence_sum_and_accumulate() {
        let mut total = Fluence::ZERO;
        total += Fluence::per_cm2(5.0e10);
        total += Fluence::per_cm2(5.0e10);
        assert!(total >= Fluence::SIGNIFICANCE_THRESHOLD);
        let s: Fluence = [Fluence::per_cm2(1.0), Fluence::per_cm2(2.0)]
            .into_iter()
            .sum();
        assert!((s.as_per_cm2() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_thresholds() {
        assert!(NeutronEnergy::mev(14.0).is_see_relevant());
        assert!(!NeutronEnergy::THERMAL.is_see_relevant());
    }

    #[test]
    #[should_panic(expected = "zero fluence")]
    fn cross_section_rejects_zero_fluence() {
        let _ = CrossSection::from_events(1.0, Fluence::ZERO);
    }
}
