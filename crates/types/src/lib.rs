//! # serscale-types
//!
//! Strongly-typed units and identifiers shared across the `serscale`
//! workspace — a simulation-based reproduction of *"Impact of Voltage Scaling
//! on Soft Errors Susceptibility of Multicore Server CPUs"* (MICRO 2023).
//!
//! Every physical quantity that crosses a crate boundary in this workspace is
//! a newtype ([`Millivolts`], [`Fluence`], [`Fit`], …) so that, e.g., a
//! neutron flux can never be passed where a fluence is expected and a PMD
//! voltage can never be confused with a frequency. The paper's analysis mixes
//! many unit systems (mV, MHz, n/cm²/s, FIT/Mbit, W); getting one conversion
//! wrong silently corrupts every downstream figure, which is exactly the kind
//! of bug newtypes rule out statically.
//!
//! ## Example
//!
//! ```
//! use serscale_types::{Flux, SimDuration, Millivolts};
//!
//! // The TNF halo flux used in the paper's campaign.
//! let flux = Flux::per_cm2_s(1.5e6);
//! let session = SimDuration::from_minutes(1651.0);
//! let fluence = flux * session;
//! assert!((fluence.as_per_cm2() - 1.486e11).abs() / 1.486e11 < 1e-3);
//!
//! let nominal = Millivolts::new(980);
//! let vmin = Millivolts::new(920);
//! assert_eq!(nominal - vmin, 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod memory;
mod radiation;
mod time;
mod units;

pub use error::{Error, Result};
pub use ids::{ArrayKind, CacheLevel, CoreId, PmdId, ThreadId, VoltageDomain};
pub use memory::{Bits, Bytes, MemSize};
pub use radiation::{
    CrossSection, Fit, Fluence, Flux, NeutronEnergy, FIT_HOURS, NYC_SEA_LEVEL_FLUX,
};
pub use time::{SimDuration, SimInstant};
pub use units::{Celsius, Megahertz, Millivolts, Watts};
