//! Simulated-time types.
//!
//! The simulator advances a virtual clock entirely decoupled from wall-clock
//! time: a 27-hour beam session replays in milliseconds. `f64` seconds give
//! ample precision for the dynamic range involved (sub-millisecond watchdog
//! polls up to the 10¹⁵-hour scale of FIT arithmetic).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time.
///
/// ```
/// use serscale_types::SimDuration;
///
/// let session = SimDuration::from_minutes(1651.0);
/// assert!((session.as_hours() - 27.5).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    pub fn from_minutes(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1000.0)
    }

    /// Returns the duration in seconds.
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Returns the duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the duration in Julian years (365.25 days).
    pub fn as_years(self) -> f64 {
        self.as_hours() / (24.0 * 365.25)
    }

    /// True when the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction: a duration can never be negative.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.2} min", self.as_minutes())
        } else {
            write!(f, "{:.3} s", self.0)
        }
    }
}

/// An instant on the simulated clock, measured from the start of the
/// simulation.
///
/// ```
/// use serscale_types::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::EPOCH;
/// let t1 = t0 + SimDuration::from_secs(5.0);
/// assert!((t1.elapsed_since(t0).as_secs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimInstant(f64);

impl SimInstant {
    /// The simulation start.
    pub const EPOCH: SimInstant = SimInstant(0.0);

    /// Creates an instant at `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "instant must be finite and non-negative"
        );
        SimInstant(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration elapsed since an `earlier` instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn elapsed_since(self, earlier: SimInstant) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "elapsed_since called with a later instant"
        );
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDuration::from_hours(27.5);
        assert!((d.as_minutes() - 1650.0).abs() < 1e-9);
        assert!((d.as_secs() - 99000.0).abs() < 1e-9);
        assert!((SimDuration::from_millis(1500.0).as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn years_conversion() {
        let d = SimDuration::from_hours(24.0 * 365.25);
        assert!((d.as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_subtraction() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!((a - b).as_secs(), 0.0);
        assert!(((b - a).as_secs()) - 1.0 < 1e-12);
    }

    #[test]
    fn instant_advance() {
        let mut t = SimInstant::EPOCH;
        t += SimDuration::from_minutes(1.0);
        t += SimDuration::from_minutes(2.0);
        assert!((t.as_secs() - 180.0).abs() < 1e-12);
        assert!((t.elapsed_since(SimInstant::EPOCH).as_minutes() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (0..10).map(|_| SimDuration::from_secs(0.5)).sum();
        assert!((total.as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_scales_unit() {
        assert_eq!(SimDuration::from_secs(5.0).to_string(), "5.000 s");
        assert_eq!(SimDuration::from_minutes(5.0).to_string(), "5.00 min");
        assert_eq!(SimDuration::from_hours(5.0).to_string(), "5.00 h");
    }
}
