//! Electrical and thermal unit newtypes: voltage, frequency, power,
//! temperature.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A supply voltage in millivolts.
///
/// The X-Gene 2 regulates its PMD domain in 5 mV steps from a 980 mV nominal
/// and its SoC domain from a 950 mV nominal, so an integer millivolt
/// representation is exact for every level the platform can express.
///
/// ```
/// use serscale_types::Millivolts;
///
/// let nominal = Millivolts::new(980);
/// let vmin = nominal.stepped_down(12); // 12 × 5 mV
/// assert_eq!(vmin, Millivolts::new(920));
/// assert_eq!(nominal - vmin, 60);
/// assert!((vmin.as_volts() - 0.92).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Millivolts(u32);

impl Millivolts {
    /// The voltage-regulator step granularity of the modelled platform (5 mV).
    pub const STEP: u32 = 5;

    /// Creates a voltage from a raw millivolt count.
    pub const fn new(mv: u32) -> Self {
        Millivolts(mv)
    }

    /// Returns the raw millivolt count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the voltage in volts.
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Returns this voltage lowered by `steps` regulator steps of
    /// [`Millivolts::STEP`] mV, saturating at 0 mV.
    pub const fn stepped_down(self, steps: u32) -> Self {
        Millivolts(self.0.saturating_sub(steps * Self::STEP))
    }

    /// Returns this voltage raised by `steps` regulator steps.
    pub const fn stepped_up(self, steps: u32) -> Self {
        Millivolts(self.0 + steps * Self::STEP)
    }

    /// Returns the ratio of `self` to `other` as a dimensionless factor.
    ///
    /// Used by the power model (`P ∝ V²`) and the critical-charge model
    /// (`Qcrit ∝ V`).
    pub fn ratio_to(self, other: Millivolts) -> f64 {
        f64::from(self.0) / f64::from(other.0)
    }

    /// True when this voltage is aligned to the regulator step granularity.
    pub const fn is_step_aligned(self) -> bool {
        self.0.is_multiple_of(Self::STEP)
    }
}

impl Sub for Millivolts {
    type Output = u32;

    /// The (non-negative) margin between two voltages in mV.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use explicit ordering checks
    /// when the sign of a margin is not known statically.
    fn sub(self, rhs: Millivolts) -> u32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

impl std::str::FromStr for Millivolts {
    type Err = crate::Error;

    /// Parses `"980 mV"` (the [`Display`](fmt::Display) form) or a bare
    /// millivolt count `"980"` — the textual round-trip the config and
    /// report formats rely on.
    ///
    /// ```
    /// use serscale_types::Millivolts;
    ///
    /// let v = Millivolts::new(920);
    /// assert_eq!(v.to_string().parse::<Millivolts>().unwrap(), v);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.trim().strip_suffix("mV").unwrap_or(s.trim()).trim();
        digits
            .parse::<u32>()
            .map(Millivolts::new)
            .map_err(|_| crate::Error::InvalidConfig {
                what: "voltage".into(),
                reason: format!("cannot parse {s:?} as millivolts"),
            })
    }
}

/// A clock frequency in megahertz.
///
/// The modelled platform steps each dual-core PMD from 300 MHz to 2400 MHz in
/// 300 MHz increments.
///
/// ```
/// use serscale_types::Megahertz;
///
/// let top = Megahertz::new(2400);
/// assert!((top.as_ghz() - 2.4).abs() < 1e-12);
/// assert!(Megahertz::new(900) < top);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Megahertz(u32);

impl Megahertz {
    /// The PMD PLL step granularity of the modelled platform (300 MHz).
    pub const STEP: u32 = 300;

    /// Creates a frequency from a raw megahertz count.
    pub const fn new(mhz: u32) -> Self {
        Megahertz(mhz)
    }

    /// Returns the raw megahertz count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Returns the frequency in Hz.
    pub fn as_hz(self) -> f64 {
        f64::from(self.0) * 1.0e6
    }

    /// Returns the ratio of `self` to `other` as a dimensionless factor,
    /// used by the dynamic-power model (`P ∝ f`).
    pub fn ratio_to(self, other: Megahertz) -> f64 {
        f64::from(self.0) / f64::from(other.0)
    }

    /// True when this frequency is aligned to the PLL step granularity.
    pub const fn is_step_aligned(self) -> bool {
        self.0.is_multiple_of(Self::STEP)
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{} GHz", f64::from(self.0) / 1000.0)
        } else {
            write!(f, "{} MHz", self.0)
        }
    }
}

impl std::str::FromStr for Megahertz {
    type Err = crate::Error;

    /// Parses `"900 MHz"`, `"2.4 GHz"` (both [`Display`](fmt::Display)
    /// forms) or a bare megahertz count `"900"`. GHz values must land on
    /// a whole megahertz.
    ///
    /// ```
    /// use serscale_types::Megahertz;
    ///
    /// let f = Megahertz::new(2400);
    /// assert_eq!(f.to_string().parse::<Megahertz>().unwrap(), f);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason: String| crate::Error::InvalidConfig {
            what: "frequency".into(),
            reason,
        };
        let t = s.trim();
        if let Some(g) = t.strip_suffix("GHz") {
            let ghz: f64 = g
                .trim()
                .parse()
                .map_err(|_| bad(format!("cannot parse {s:?} as gigahertz")))?;
            let mhz = ghz * 1000.0;
            if !(mhz.is_finite() && mhz >= 0.0 && (mhz - mhz.round()).abs() < 1e-6) {
                return Err(bad(format!("{s:?} is not a whole number of megahertz")));
            }
            return Ok(Megahertz::new(mhz.round() as u32));
        }
        let digits = t.strip_suffix("MHz").unwrap_or(t).trim();
        digits
            .parse::<u32>()
            .map(Megahertz::new)
            .map_err(|_| bad(format!("cannot parse {s:?} as megahertz")))
    }
}

/// Electrical power in watts.
///
/// ```
/// use serscale_types::Watts;
///
/// let pmd = Watts::new(14.2);
/// let soc = Watts::new(6.2);
/// assert!((pmd + soc).get() > 20.0);
/// let savings = (Watts::new(20.40) - Watts::new(18.63)).get() / 20.40;
/// assert!((savings - 0.0868).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Watts(f64);

impl Watts {
    /// Creates a power value.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or non-finite; power draw is physical.
    pub fn new(w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative, got {w}"
        );
        Watts(w)
    }

    /// Returns the power in watts.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Fractional savings of `self` relative to a `baseline` power draw.
    ///
    /// Returns `(baseline − self) / baseline`; positive when `self` draws
    /// less than the baseline.
    pub fn savings_vs(self, baseline: Watts) -> f64 {
        (baseline.0 - self.0) / baseline.0
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Div<Watts> for Watts {
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

/// A temperature in degrees Celsius.
///
/// The beam campaign ran the DUT at 40–45 °C and verified the safe Vmin was
/// stable up to 50 °C; the simulator carries temperature so the same check is
/// expressible.
///
/// ```
/// use serscale_types::Celsius;
///
/// let dut = Celsius::new(42.5);
/// assert!(dut.is_within(Celsius::new(40.0), Celsius::new(45.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature.
    ///
    /// # Panics
    ///
    /// Panics if `c` is non-finite.
    pub fn new(c: f64) -> Self {
        assert!(c.is_finite(), "temperature must be finite");
        Celsius(c)
    }

    /// Returns the temperature in °C.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// True when the temperature lies in the closed interval `[lo, hi]`.
    pub fn is_within(self, lo: Celsius, hi: Celsius) -> bool {
        self >= lo && self <= hi
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} °C", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolts_step_arithmetic() {
        let v = Millivolts::new(980);
        assert_eq!(v.stepped_down(10), Millivolts::new(930));
        assert_eq!(v.stepped_down(0), v);
        assert_eq!(v.stepped_up(2), Millivolts::new(990));
        assert!(v.is_step_aligned());
        assert!(!Millivolts::new(982).is_step_aligned());
    }

    #[test]
    fn unit_parsing_accepts_display_and_bare_forms() {
        assert_eq!(
            "980 mV".parse::<Millivolts>().unwrap(),
            Millivolts::new(980)
        );
        assert_eq!("790".parse::<Millivolts>().unwrap(), Millivolts::new(790));
        assert_eq!(
            "2.4 GHz".parse::<Megahertz>().unwrap(),
            Megahertz::new(2400)
        );
        assert_eq!("900 MHz".parse::<Megahertz>().unwrap(), Megahertz::new(900));
        assert_eq!("300".parse::<Megahertz>().unwrap(), Megahertz::new(300));
    }

    #[test]
    fn unit_parsing_rejects_garbage() {
        assert!("volts".parse::<Millivolts>().is_err());
        assert!("-5 mV".parse::<Millivolts>().is_err());
        assert!("2.4005 GHz".parse::<Megahertz>().is_err());
        assert!("fast".parse::<Megahertz>().is_err());
    }

    #[test]
    fn millivolts_saturating_floor() {
        assert_eq!(Millivolts::new(10).stepped_down(100), Millivolts::new(0));
    }

    #[test]
    fn millivolts_ordering_and_margin() {
        let nominal = Millivolts::new(980);
        let vmin = Millivolts::new(920);
        assert!(vmin < nominal);
        assert_eq!(nominal - vmin, 60);
    }

    #[test]
    fn millivolts_ratio() {
        let r = Millivolts::new(490).ratio_to(Millivolts::new(980));
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn megahertz_display_and_conversion() {
        assert_eq!(Megahertz::new(2400).to_string(), "2.4 GHz");
        assert_eq!(Megahertz::new(900).to_string(), "900 MHz");
        assert!((Megahertz::new(900).as_ghz() - 0.9).abs() < 1e-12);
        assert!((Megahertz::new(1).as_hz() - 1.0e6).abs() < 1e-6);
        assert!(Megahertz::new(900).is_step_aligned());
        assert!(!Megahertz::new(1000).is_step_aligned());
    }

    #[test]
    fn watts_arithmetic() {
        let a = Watts::new(10.0);
        let b = Watts::new(4.0);
        assert!(((a + b).get() - 14.0).abs() < 1e-12);
        assert!(((a - b).get() - 6.0).abs() < 1e-12);
        // Subtraction clamps at zero rather than producing negative power.
        assert_eq!((b - a).get(), 0.0);
        assert!(((a * 0.5).get() - 5.0).abs() < 1e-12);
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn watts_savings_matches_paper_arithmetic() {
        // Fig. 9/10: 980 mV → 930 mV cuts 20.40 W to 18.63 W, an 8.7% saving.
        let saving = Watts::new(18.63).savings_vs(Watts::new(20.40));
        assert!((saving - 0.087).abs() < 5e-4, "saving = {saving}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn watts_rejects_negative() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    fn celsius_window() {
        let t = Celsius::new(44.0);
        assert!(t.is_within(Celsius::new(40.0), Celsius::new(45.0)));
        assert!(!t.is_within(Celsius::new(45.5), Celsius::new(50.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Millivolts::new(920).to_string(), "920 mV");
        assert_eq!(Watts::new(20.4).to_string(), "20.40 W");
        assert_eq!(Celsius::new(42.0).to_string(), "42.0 °C");
    }
}
