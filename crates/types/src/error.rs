//! The shared error type of the workspace.

use std::error;
use std::fmt;

/// A specialized result alias for serscale operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced across the serscale workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was outside its legal range
    /// (e.g. a PMD voltage below the regulator floor, or a frequency not
    /// aligned to the PLL step).
    InvalidConfig {
        /// Which parameter was rejected.
        what: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An operation referenced a structure the platform does not have
    /// (e.g. core index ≥ 8).
    UnknownStructure {
        /// Description of the missing structure.
        what: String,
    },
    /// A voltage level below the characterized safe Vmin was requested for a
    /// context requiring fault-free operation.
    UnsafeVoltage {
        /// The requested level in mV.
        requested_mv: u32,
        /// The safe minimum in mV.
        vmin_mv: u32,
    },
    /// A campaign or session was asked to continue after it had already
    /// reached a terminal state.
    SessionFinished,
    /// A statistical estimator was invoked with insufficient data
    /// (e.g. a confidence interval on zero exposure).
    InsufficientData {
        /// What was being estimated.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { what, reason } => {
                write!(f, "invalid configuration for {what}: {reason}")
            }
            Error::UnknownStructure { what } => write!(f, "unknown hardware structure: {what}"),
            Error::UnsafeVoltage {
                requested_mv,
                vmin_mv,
            } => write!(
                f,
                "requested {requested_mv} mV is below the characterized safe Vmin of {vmin_mv} mV"
            ),
            Error::SessionFinished => write!(f, "session already reached a terminal state"),
            Error::InsufficientData { what } => {
                write!(f, "insufficient data to estimate {what}")
            }
        }
    }
}

impl error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::UnsafeVoltage {
            requested_mv: 900,
            vmin_mv: 920,
        };
        let msg = e.to_string();
        assert!(msg.contains("900 mV"));
        assert!(msg.contains("920 mV"));

        let e = Error::InvalidConfig {
            what: "pmd voltage".into(),
            reason: "not step aligned".into(),
        };
        assert!(e.to_string().starts_with("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(Error::SessionFinished);
        assert_eq!(e.to_string(), "session already reached a terminal state");
    }
}
