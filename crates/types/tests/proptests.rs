//! Property tests over the unit newtypes: conversions round-trip,
//! arithmetic respects dimensional identities.

use proptest::prelude::*;

use serscale_types::{
    Bits, Bytes, CoreId, CrossSection, Fit, Fluence, Flux, Megahertz, Millivolts, SimDuration,
    SimInstant, NYC_SEA_LEVEL_FLUX,
};

proptest! {
    /// Voltage step arithmetic: down then up round-trips (absent
    /// saturation), and stepping preserves grid alignment.
    #[test]
    fn millivolt_steps_roundtrip(base in 100u32..1200, steps in 0u32..10) {
        let v = Millivolts::new(base - base % Millivolts::STEP);
        prop_assume!(v.get() >= steps * Millivolts::STEP);
        let down = v.stepped_down(steps);
        prop_assert_eq!(down.stepped_up(steps), v);
        prop_assert!(down.is_step_aligned());
        prop_assert_eq!(v - down, steps * Millivolts::STEP);
    }

    /// Flux × duration = fluence is bilinear.
    #[test]
    fn fluence_bilinear(f in 1.0f64..1e7, secs in 1.0f64..1e6, k in 0.1f64..10.0) {
        let flux = Flux::per_cm2_s(f);
        let t = SimDuration::from_secs(secs);
        let base = (flux * t).as_per_cm2();
        let scaled_flux = (Flux::per_cm2_s(f * k) * t).as_per_cm2();
        let scaled_time = (flux * SimDuration::from_secs(secs * k)).as_per_cm2();
        prop_assert!((scaled_flux / base - k).abs() / k < 1e-9);
        prop_assert!((scaled_time / base - k).abs() / k < 1e-9);
    }

    /// Eq. 1 + Eq. 2 consistency: FIT(events/fluence) × exposure hours /
    /// 1e9 recovers the expected event count in the natural environment.
    #[test]
    fn fit_roundtrips_to_event_counts(events in 1u64..100_000, fluence in 1e9f64..1e13) {
        let dcs = CrossSection::from_events(events as f64, Fluence::per_cm2(fluence));
        let fit = dcs.fit_at(NYC_SEA_LEVEL_FLUX);
        // Hours to re-accumulate the same fluence naturally:
        let hours = fluence / NYC_SEA_LEVEL_FLUX.as_per_cm2_hour();
        let recovered = fit.get() * hours / 1e9;
        let rel = (recovered - events as f64).abs() / events as f64;
        prop_assert!(rel < 1e-9);
    }

    /// FIT per Mbit scales inversely with the memory size.
    #[test]
    fn fit_per_mbit_inverse(fit in 0.1f64..1e6, mbit in 0.1f64..1e4, k in 1.1f64..100.0) {
        let f = Fit::new(fit);
        let a = f.per_mbit(mbit).get();
        let b = f.per_mbit(mbit * k).get();
        prop_assert!((a / b - k).abs() / k < 1e-9);
    }

    /// MTTF inverts FIT.
    #[test]
    fn mttf_inverts_fit(fit in 0.001f64..1e9) {
        let f = Fit::new(fit);
        prop_assert!((f.mttf().as_hours() * fit - 1e9).abs() / 1e9 < 1e-9);
    }

    /// Byte/bit conversions are exact and Mbit is decimal.
    #[test]
    fn memory_conversions(bytes in 0u64..(1 << 40)) {
        let b = Bytes::new(bytes);
        prop_assert_eq!(b.as_bits(), Bits::new(bytes * 8));
        let mbit = b.as_bits().as_mbit();
        prop_assert!((mbit - (bytes * 8) as f64 / 1e6).abs() < 1e-6);
    }

    /// Instant/duration arithmetic is associative over a chain of steps.
    #[test]
    fn instant_chain(steps in prop::collection::vec(0.0f64..1e4, 1..20)) {
        let mut t = SimInstant::EPOCH;
        for &s in &steps {
            t += SimDuration::from_secs(s);
        }
        let total: f64 = steps.iter().sum();
        prop_assert!((t.elapsed_since(SimInstant::EPOCH).as_secs() - total).abs() < 1e-6);
    }

    /// Core→PMD pairing is consistent both directions.
    #[test]
    fn core_pmd_pairing(core in 0u8..8) {
        let c = CoreId::new(core);
        prop_assert!(c.pmd().cores().contains(&c));
        prop_assert_eq!(c.pmd().get(), core / 2);
    }

    /// Frequency ratios are consistent with GHz conversion.
    #[test]
    fn frequency_ratios(a in 300u32..2400, b in 300u32..2400) {
        let fa = Megahertz::new(a);
        let fb = Megahertz::new(b);
        prop_assert!((fa.ratio_to(fb) - fa.as_ghz() / fb.as_ghz()).abs() < 1e-12);
    }

    /// Display → FromStr round-trips for voltages: the textual interchange
    /// format used by reports and the verify verdict must be lossless.
    #[test]
    fn millivolts_display_roundtrip(mv in 0u32..1_000_000) {
        let v = Millivolts::new(mv);
        prop_assert_eq!(v.to_string().parse::<Millivolts>().unwrap(), v);
        // Bare counts parse too.
        prop_assert_eq!(mv.to_string().parse::<Millivolts>().unwrap(), v);
    }

    /// Display → FromStr round-trips for frequencies across both rendered
    /// forms ("900 MHz" and "2.4 GHz").
    #[test]
    fn megahertz_display_roundtrip(mhz in 0u32..100_000_000) {
        let f = Megahertz::new(mhz);
        prop_assert_eq!(f.to_string().parse::<Megahertz>().unwrap(), f);
        prop_assert_eq!(mhz.to_string().parse::<Megahertz>().unwrap(), f);
    }

    /// Digit-free strings never parse as a unit value.
    #[test]
    fn unit_parsing_rejects_junk(
        s in prop::sample::select(vec!["", " ", "mV", "MHz", "GHz", "volts", "NaN GHz", "- mV"]),
    ) {
        prop_assert!(s.parse::<Millivolts>().is_err());
        prop_assert!(s.parse::<Megahertz>().is_err());
    }

    /// Flux acceleration: an accelerated second equals `acceleration`
    /// natural seconds of fluence.
    #[test]
    fn acceleration_consistency(f in 1.0f64..1e7) {
        let beam = Flux::per_cm2_s(f);
        let acc = beam.acceleration_over(NYC_SEA_LEVEL_FLUX);
        let beam_second = (beam * SimDuration::from_secs(1.0)).as_per_cm2();
        let natural_equiv =
            (NYC_SEA_LEVEL_FLUX * SimDuration::from_secs(acc)).as_per_cm2();
        prop_assert!((beam_second - natural_equiv).abs() / beam_second < 1e-9);
    }
}
