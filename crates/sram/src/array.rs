//! An SRAM array: geometry, protection, interleaving — and the translation
//! of one neutron strike into the per-word ECC outcomes the EDAC log sees.

use serde::{Deserialize, Serialize};

use serscale_ecc::interleave::{Interleaver, PhysicalBit};
use serscale_ecc::{ProtectionScheme, UpsetOutcome};
use serscale_stats::SimRng;
use serscale_types::{ArrayKind, Bits, Bytes, VoltageDomain};

/// One SRAM array instance on the die.
///
/// ```
/// use serscale_sram::SramArray;
/// use serscale_ecc::ProtectionScheme;
/// use serscale_types::{ArrayKind, Bytes};
///
/// // The modelled L3: 8 MiB, SECDED, no interleaving.
/// let l3 = SramArray::new(ArrayKind::L3Shared, Bytes::mib(8), ProtectionScheme::Secded, 1);
/// assert_eq!(l3.data_bits().get(), 8 * 1024 * 1024 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramArray {
    kind: ArrayKind,
    capacity: Bytes,
    protection: ProtectionScheme,
    interleaver: Interleaver,
}

impl SramArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if `interleave_degree` is zero.
    pub fn new(
        kind: ArrayKind,
        capacity: Bytes,
        protection: ProtectionScheme,
        interleave_degree: u32,
    ) -> Self {
        SramArray {
            kind,
            capacity,
            protection,
            interleaver: Interleaver::new(interleave_degree, protection.entry_bits()),
        }
    }

    /// The array kind (which cache level it reports under, which voltage
    /// domain feeds it).
    pub const fn kind(&self) -> ArrayKind {
        self.kind
    }

    /// The data capacity.
    pub const fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// The number of data bits (check bits excluded; cross-section
    /// bookkeeping in the paper is per data capacity).
    pub const fn data_bits(&self) -> Bits {
        self.capacity.as_bits()
    }

    /// The protection scheme guarding this array.
    pub const fn protection(&self) -> ProtectionScheme {
        self.protection
    }

    /// The interleaving degree (1 = none).
    pub const fn interleave_degree(&self) -> u32 {
        self.interleaver.degree()
    }

    /// The voltage domain supplying this array.
    pub const fn voltage_domain(&self) -> VoltageDomain {
        self.kind.voltage_domain()
    }

    /// Applies one strike of `cluster_len` physically adjacent flipped
    /// cells at a random position, returning the per-word outcomes after
    /// interleaving and ECC decode.
    pub fn strike(&self, rng: &mut SimRng, cluster_len: u32) -> StrikeEffect {
        assert!(cluster_len >= 1, "a strike flips at least one cell");
        let row_bits = self.interleaver.row_bits();
        let start = PhysicalBit(rng.below(u64::from(row_bits)) as u32);
        let spread = self
            .interleaver
            .spread_cluster(start, cluster_len.min(row_bits));
        let words = spread
            .into_iter()
            .map(|(_, bits)| WordHit {
                outcome: self.protection.classify(&bits),
                flipped_bits: bits.len() as u32,
            })
            .collect();
        StrikeEffect {
            array: self.kind,
            cluster_len,
            words,
        }
    }

    /// [`Self::strike`] into a reusable scratch arena: the same position
    /// draw, the same per-word outcomes in the same first-touch word
    /// order, but through the mask-batched classifiers and with zero
    /// allocation after the scratch warms up. This is the hot-path form;
    /// `strike` remains the per-event reference implementation the
    /// differential oracles compare against.
    ///
    /// Draw-for-draw identical RNG consumption to `strike` (one position
    /// draw; classification consumes none).
    ///
    /// # Panics
    ///
    /// Panics if `cluster_len` is zero.
    pub fn strike_into(&self, rng: &mut SimRng, cluster_len: u32, scratch: &mut StrikeScratch) {
        assert!(cluster_len >= 1, "a strike flips at least one cell");
        let row_bits = self.interleaver.row_bits();
        let start = PhysicalBit(rng.below(u64::from(row_bits)) as u32);
        self.interleaver
            .spread_cluster_masks(start, cluster_len.min(row_bits), &mut scratch.masks);
        self.protection.classify_masks(
            scratch.masks.iter().map(|&(_, mask)| mask),
            &mut scratch.outcomes,
        );
    }
}

/// Reusable per-worker buffers for [`SramArray::strike_into`]: the word
/// masks a cluster spread into and their classification, overwritten on
/// every strike. A worker keeps one of these for its whole lifetime, so
/// the steady-state hot path performs no strike-local allocation.
#[derive(Debug, Clone, Default)]
pub struct StrikeScratch {
    masks: Vec<(u32, u128)>,
    outcomes: Vec<UpsetOutcome>,
}

impl StrikeScratch {
    /// An empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-word outcomes of the last strike, in first-touch word
    /// order (the order `StrikeEffect::words` uses).
    pub fn outcomes(&self) -> &[UpsetOutcome] {
        &self.outcomes
    }

    /// The `(word, error_mask)` pairs of the last strike.
    pub fn word_masks(&self) -> &[(u32, u128)] {
        &self.masks
    }
}

/// The ECC outcome for one logical word touched by a strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WordHit {
    /// How many bits flipped within this word.
    pub flipped_bits: u32,
    /// What the protection hardware did about it.
    pub outcome: UpsetOutcome,
}

/// The full effect of one neutron strike on one array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrikeEffect {
    /// The struck array.
    pub array: ArrayKind,
    /// The physical cluster length of the strike.
    pub cluster_len: u32,
    /// Per-logical-word outcomes (one entry per word the cluster touched).
    pub words: Vec<WordHit>,
}

impl StrikeEffect {
    /// Number of corrected-error log entries this strike generates.
    pub fn corrected_count(&self) -> usize {
        self.words
            .iter()
            .filter(|w| w.outcome.logs_corrected())
            .count()
    }

    /// Number of uncorrected-error log entries this strike generates.
    pub fn uncorrected_count(&self) -> usize {
        self.words
            .iter()
            .filter(|w| w.outcome.logs_uncorrected())
            .count()
    }

    /// Whether any word ends up silently corrupt (with or without a
    /// deceptive corrected-error notification).
    pub fn corrupts_data(&self) -> bool {
        self.words.iter().any(|w| w.outcome.corrupts_data())
    }

    /// Whether data corruption coincides with a corrected-error
    /// notification — the paper's rare Fig. 12 case.
    pub fn corrupt_with_notification(&self) -> bool {
        self.words
            .iter()
            .any(|w| w.outcome == UpsetOutcome::MiscorrectedReported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> SramArray {
        SramArray::new(
            ArrayKind::L1Data,
            Bytes::kib(32),
            ProtectionScheme::Parity,
            4,
        )
    }

    fn l3() -> SramArray {
        SramArray::new(
            ArrayKind::L3Shared,
            Bytes::mib(8),
            ProtectionScheme::Secded,
            1,
        )
    }

    #[test]
    fn geometry() {
        assert_eq!(l1().data_bits().get(), 32 * 1024 * 8);
        assert_eq!(l3().data_bits().get(), 8 * 1024 * 1024 * 8);
        assert_eq!(l1().interleave_degree(), 4);
        assert_eq!(l3().interleave_degree(), 1);
        assert_eq!(l3().voltage_domain(), VoltageDomain::Soc);
        assert_eq!(l1().voltage_domain(), VoltageDomain::Pmd);
    }

    #[test]
    fn single_bit_strike_on_parity_is_corrected() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..200 {
            let e = l1().strike(&mut rng, 1);
            assert_eq!(e.words.len(), 1);
            assert_eq!(e.words[0].outcome, UpsetOutcome::Corrected);
            assert_eq!(e.corrected_count(), 1);
            assert_eq!(e.uncorrected_count(), 0);
            assert!(!e.corrupts_data());
        }
    }

    #[test]
    fn single_bit_strike_on_secded_is_corrected() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..200 {
            let e = l3().strike(&mut rng, 1);
            assert_eq!(e.words[0].outcome, UpsetOutcome::Corrected);
        }
    }

    #[test]
    fn interleaved_cluster_spreads_into_corrected_singles() {
        // A 4-cell cluster on a 4-way interleaved parity array becomes four
        // separate single-bit (detected, refilled) events.
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let e = l1().strike(&mut rng, 4);
            assert_eq!(e.words.len(), 4);
            for w in &e.words {
                assert_eq!(w.flipped_bits, 1);
                assert_eq!(w.outcome, UpsetOutcome::Corrected);
            }
        }
    }

    #[test]
    fn uninterleaved_double_cluster_is_uncorrectable() {
        // A 2-cell cluster on the un-interleaved SECDED L3 lands in one
        // word and defeats SECDED — the paper's L3-only UE mechanism.
        let mut rng = SimRng::seed_from(4);
        let mut uncorrectable = 0;
        for _ in 0..100 {
            let e = l3().strike(&mut rng, 2);
            if e.words.len() == 1 {
                assert_eq!(e.words[0].flipped_bits, 2);
                assert_eq!(e.words[0].outcome, UpsetOutcome::DetectedUncorrectable);
                uncorrectable += 1;
            }
            // A cluster starting at the last cell of a row wraps to the
            // next word; both words then see singles.
        }
        assert!(uncorrectable > 90);
    }

    #[test]
    fn triple_cluster_on_l3_can_miscorrect() {
        let mut rng = SimRng::seed_from(5);
        let mut miscorrected = 0;
        for _ in 0..500 {
            let e = l3().strike(&mut rng, 3);
            if e.corrupt_with_notification() {
                miscorrected += 1;
            }
        }
        assert!(
            miscorrected > 0,
            "triple clusters should occasionally mis-correct"
        );
    }

    #[test]
    fn strike_is_deterministic_under_seed() {
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            (0..50)
                .map(|_| l3().strike(&mut rng, 2))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cluster_panics() {
        let mut rng = SimRng::seed_from(6);
        let _ = l1().strike(&mut rng, 0);
    }

    #[test]
    fn scratch_strike_matches_reference_strike_and_rng_stream() {
        for array in [l1(), l3()] {
            let mut ref_rng = SimRng::seed_from(91);
            let mut fast_rng = SimRng::seed_from(91);
            let mut scratch = StrikeScratch::new();
            for len in [1u32, 2, 3, 4, 8, 200] {
                let effect = array.strike(&mut ref_rng, len);
                array.strike_into(&mut fast_rng, len, &mut scratch);
                let ref_outcomes: Vec<UpsetOutcome> =
                    effect.words.iter().map(|w| w.outcome).collect();
                assert_eq!(scratch.outcomes(), ref_outcomes.as_slice(), "len {len}");
                assert_eq!(scratch.word_masks().len(), effect.words.len());
                for (&(_, mask), word) in scratch.word_masks().iter().zip(&effect.words) {
                    // Duplicate hits cancel in the mask but are listed in
                    // the word hit count, so ≤ rather than ==.
                    assert!(mask.count_ones() <= word.flipped_bits);
                }
                // Both forms must have consumed the identical draws.
                assert_eq!(ref_rng.uniform(), fast_rng.uniform(), "len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cluster_panics_in_scratch_form() {
        let mut rng = SimRng::seed_from(7);
        l1().strike_into(&mut rng, 0, &mut StrikeScratch::new());
    }
}
