//! The weak-cell population: persistent low-voltage bit failures from
//! Random Dopant Fluctuations (RDF).
//!
//! §2.2 of the paper distinguishes *persistent* bit failures — cells whose
//! manufacturing variation leaves them unable to hold/read/write data below
//! a cell-specific minimum voltage — from the *non-persistent* radiation
//! upsets the beam campaign counts. The persistent population is what pins
//! the platform's safe Vmin: the characterization in §4.1 walks voltage
//! down until some structure (an SRAM cell or a timing path) first fails.
//!
//! The standard model (Chishti et al. \[22\], cited by the paper) treats each
//! cell's failure voltage as an i.i.d. normal draw; the expected number of
//! failing cells in an array of `n` bits at supply `V` is then
//! `n · Φ((µ − V)/s)` — astronomically small at nominal voltage and
//! exploding through the tail as `V` approaches `µ + z·s`.
//!
//! The four SRAM failure modes of §2.2 (read, write, read-stability, hold)
//! are carried as metadata: they share the same statistical shape but have
//! slightly different mean failure voltages (hold < read < write in this
//! model, reflecting that retention is the most robust mode).

use serde::{Deserialize, Serialize};

use serscale_stats::ci::normal_cdf;
use serscale_stats::SimRng;
use serscale_types::Millivolts;

/// The SRAM bit-cell failure modes of §2.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// Read-discharge too slow for the sense amplifier.
    Read,
    /// Internal node cannot reach the written value.
    Write,
    /// Cell contents flip during a read (read-stability).
    ReadStability,
    /// Supply below the cell's data-hold voltage.
    Hold,
}

impl FailureMode {
    /// All modes.
    pub const ALL: [FailureMode; 4] = [
        FailureMode::Read,
        FailureMode::Write,
        FailureMode::ReadStability,
        FailureMode::Hold,
    ];

    /// Offset of this mode's mean failure voltage relative to the
    /// population mean, in mV. Write paths fail first (need the most
    /// headroom); hold fails last.
    pub const fn mean_offset_mv(self) -> f64 {
        match self {
            FailureMode::Write => 15.0,
            FailureMode::Read => 5.0,
            FailureMode::ReadStability => 0.0,
            FailureMode::Hold => -20.0,
        }
    }
}

/// The RDF-induced weak-cell population of an SRAM array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCellPopulation {
    bits: u64,
    /// Mean cell-failure voltage of the read-stability mode (mV).
    mean_vfail: Millivolts,
    /// Cell-to-cell standard deviation (mV).
    sigma_mv: f64,
}

impl WeakCellPopulation {
    /// A default 28 nm population: mean cell-failure voltage of 580 mV with
    /// a 30 mV cell-to-cell sigma. At 980 mV nominal this puts the
    /// expected failing-cell count of even an 8 MB array far below one
    /// (Φ(−13σ)), while dropping toward 750 mV brings the first
    /// persistent failures in — bracketing the paper's measured 790 mV
    /// PMD Vmin at 900 MHz from below, as SRAM should (core timing paths
    /// fail before SRAM retention).
    pub fn tech_28nm(bits: u64) -> Self {
        Self::new(bits, Millivolts::new(580), 30.0)
    }

    /// Creates a population.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_mv` is not positive and finite.
    pub fn new(bits: u64, mean_vfail: Millivolts, sigma_mv: f64) -> Self {
        assert!(
            sigma_mv.is_finite() && sigma_mv > 0.0,
            "sigma must be positive"
        );
        WeakCellPopulation {
            bits,
            mean_vfail,
            sigma_mv,
        }
    }

    /// The number of cells in the array.
    pub const fn bits(&self) -> u64 {
        self.bits
    }

    /// The probability that a single cell fails (read-stability mode) at
    /// the given supply voltage.
    pub fn cell_fail_probability(&self, voltage: Millivolts) -> f64 {
        self.cell_fail_probability_mode(voltage, FailureMode::ReadStability)
    }

    /// The per-cell failure probability for a specific failure mode.
    pub fn cell_fail_probability_mode(&self, voltage: Millivolts, mode: FailureMode) -> f64 {
        let mean = f64::from(self.mean_vfail.get()) + mode.mean_offset_mv();
        let z = (mean - f64::from(voltage.get())) / self.sigma_mv;
        normal_cdf(z)
    }

    /// The expected number of persistently failing cells at the given
    /// voltage (read-stability mode).
    pub fn expected_failing_cells(&self, voltage: Millivolts) -> f64 {
        self.bits as f64 * self.cell_fail_probability(voltage)
    }

    /// The probability that the array contains *at least one* failing cell
    /// at the given voltage: `1 − (1−p)ⁿ`, computed stably in log space.
    pub fn any_cell_fails_probability(&self, voltage: Millivolts) -> f64 {
        let p = self.cell_fail_probability(voltage);
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        1.0 - ((self.bits as f64) * (1.0 - p).ln()).exp()
    }

    /// Samples the number of failing cells at the given voltage
    /// (Poisson-approximated binomial; exact enough for n·p spanning the
    /// tail regimes this model visits).
    pub fn sample_failing_cells(&self, rng: &mut SimRng, voltage: Millivolts) -> u64 {
        let lambda = self.expected_failing_cells(voltage);
        serscale_stats::poisson::sample_poisson(rng, lambda.min(1.0e6))
    }

    /// The highest voltage (searched on the 5 mV regulator grid between
    /// 500 mV and 1.2 V) at which the expected failing-cell count still
    /// exceeds `threshold` — i.e. the SRAM-limited Vmin from below.
    pub fn sram_vmin(&self, threshold: f64) -> Millivolts {
        let mut result = Millivolts::new(500);
        let mut mv = 500;
        while mv <= 1200 {
            let v = Millivolts::new(mv);
            if self.expected_failing_cells(v) > threshold {
                result = v;
            }
            mv += Millivolts::STEP;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> WeakCellPopulation {
        // 8 MB L3-sized array.
        WeakCellPopulation::tech_28nm(8 * 1024 * 1024 * 8)
    }

    #[test]
    fn no_failures_at_nominal_voltage() {
        let p = pop();
        assert!(p.expected_failing_cells(Millivolts::new(980)) < 1e-6);
        assert!(p.any_cell_fails_probability(Millivolts::new(980)) < 1e-6);
    }

    #[test]
    fn failures_explode_in_the_tail() {
        let p = pop();
        let at_700 = p.expected_failing_cells(Millivolts::new(700));
        let at_650 = p.expected_failing_cells(Millivolts::new(650));
        let at_580 = p.expected_failing_cells(Millivolts::new(580));
        assert!(at_700 < at_650 && at_650 < at_580);
        // At the distribution mean, half the cells fail.
        assert!((at_580 / p.bits() as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn fail_probability_monotone_in_voltage() {
        let p = pop();
        let mut prev = 1.1;
        for mv in (500..=1000).step_by(25) {
            let q = p.cell_fail_probability(Millivolts::new(mv));
            assert!(q <= prev);
            prev = q;
        }
    }

    #[test]
    fn mode_ordering_write_fails_first() {
        let p = pop();
        let v = Millivolts::new(620);
        let write = p.cell_fail_probability_mode(v, FailureMode::Write);
        let read = p.cell_fail_probability_mode(v, FailureMode::Read);
        let stab = p.cell_fail_probability_mode(v, FailureMode::ReadStability);
        let hold = p.cell_fail_probability_mode(v, FailureMode::Hold);
        assert!(write > read && read > stab && stab > hold);
    }

    #[test]
    fn sram_vmin_is_below_measured_platform_vmin() {
        // The paper's platform Vmin (790 mV PMD at 900 MHz) is set by core
        // timing, not SRAM retention; the SRAM-limited floor must sit
        // below it.
        let p = pop();
        let vmin = p.sram_vmin(0.5);
        assert!(vmin < Millivolts::new(790), "sram vmin = {vmin}");
        assert!(vmin > Millivolts::new(550), "sram vmin = {vmin}");
    }

    #[test]
    fn any_cell_fails_bounded() {
        let p = pop();
        for mv in (500..=1000).step_by(50) {
            let q = p.any_cell_fails_probability(Millivolts::new(mv));
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn sampling_matches_expectation_in_moderate_regime() {
        let p = WeakCellPopulation::new(1_000_000, Millivolts::new(580), 30.0);
        let v = Millivolts::new(650);
        let lambda = p.expected_failing_cells(v);
        let mut rng = SimRng::seed_from(5);
        let n = 2000;
        let mean = (0..n)
            .map(|_| p.sample_failing_cells(&mut rng, v) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.05, "{mean} vs {lambda}");
    }
}
