//! # serscale-sram
//!
//! Bit-cell and SRAM-array soft-error physics for the serscale workspace.
//!
//! Three models live here, each mirroring a mechanism the paper leans on:
//!
//! * [`qcrit`] — the critical-charge model of voltage-dependent
//!   susceptibility. A stored bit flips when a particle strike collects more
//!   charge than the cell's critical charge `Qcrit`; `Qcrit` scales with the
//!   supply voltage (Chandra & Aitken \[16\] in the paper), so the per-bit
//!   cross-section grows exponentially as voltage drops. This is the
//!   mechanism behind Table 2's rising upset rates and Observation #1.
//! * [`mbu`] — multi-bit-upset clustering. One strike can flip a physically
//!   contiguous run of cells; the cluster-size distribution shifts toward
//!   larger clusters at lower voltage (§4.3 of the paper), and whether a
//!   physical cluster becomes a logical multi-bit error depends on the
//!   array's interleaving (see `serscale-ecc`).
//! * [`cell`] — the weak-cell population induced by Random Dopant
//!   Fluctuations: each cell has its own minimum retention voltage, normally
//!   distributed, so the count of *persistently* failing cells explodes as
//!   the supply approaches the distribution's tail (§2.2, §4.3). This is
//!   what pins the safe Vmin.
//! * [`mod@array`] — ties the three together: an [`array::SramArray`] has a
//!   geometry, a protection scheme and an interleaver, and
//!   [`array::SramArray::strike`] turns one neutron hit into the per-word
//!   ECC outcomes the EDAC log will see.
//!
//! ## Example
//!
//! ```
//! use serscale_sram::qcrit::SoftErrorModel;
//! use serscale_types::Millivolts;
//!
//! let model = SoftErrorModel::tech_28nm();
//! let nominal = model.sigma_bit(Millivolts::new(980));
//! let scaled = model.sigma_bit(Millivolts::new(790));
//! // Susceptibility grows at reduced voltage …
//! assert!(scaled.as_cm2() > nominal.as_cm2());
//! // … by tens of percent over the paper's 190 mV range, not by orders of
//! // magnitude.
//! assert!(scaled.as_cm2() / nominal.as_cm2() < 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod mbu;
pub mod qcrit;
pub mod technology;

pub use array::{SramArray, StrikeEffect, StrikeScratch, WordHit};
pub use cell::WeakCellPopulation;
pub use mbu::MbuModel;
pub use qcrit::SoftErrorModel;
pub use technology::TechnologyNode;
