//! The critical-charge (Qcrit) model of voltage-dependent soft-error
//! susceptibility.
//!
//! ## Physics
//!
//! A particle strike flips a stored bit when the charge it deposits on the
//! cell's sensitive node exceeds the *critical charge* `Qcrit`. Two
//! empirical laws, both cited by the paper, define the model:
//!
//! 1. `Qcrit` is proportional to the supply voltage — the stored charge is
//!    `C·V` (Chandra & Aitken, \[16\] in the paper).
//! 2. The upset cross-section follows an exponential collection-efficiency
//!    law: `σ(Qcrit) = σ_sat · exp(−Qcrit / Qs)`, where `Qs` is the
//!    technology's charge-collection slope (the classic Hazucha–Svensson
//!    form).
//!
//! Substituting (1) into (2) gives
//!
//! ```text
//! σ(V) = σ(V₀) · exp( k · (1 − V/V₀) ),   k = Qcrit(V₀) / Qs
//! ```
//!
//! a single dimensionless *voltage sensitivity* `k`. The default `k` is
//! calibrated against the paper's own per-level upset rates (Figures 6–7;
//! see `DESIGN.md` §3): with `k ≈ 3.2`, the model reproduces the measured
//! PMD-array rate increase at 930/920/790 mV and — because the L3 sits on
//! the unscaled SoC domain — the totals of Table 2 within a few percent.
//!
//! The model is deliberately frequency-free: the paper's Observation #6
//! found no measurable frequency dependence of the SER, and storage-cell
//! upset physics has no clock term.

use serde::{Deserialize, Serialize};

use serscale_types::{CrossSection, Millivolts};

/// Per-bit soft-error susceptibility as a function of supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftErrorModel {
    /// Per-bit cross-section at the nominal voltage (cm²/bit).
    sigma_nominal: CrossSection,
    /// The voltage the calibration point refers to.
    nominal_voltage: Millivolts,
    /// Dimensionless voltage sensitivity `k = Qcrit(V₀)/Qs`.
    voltage_sensitivity: f64,
}

impl SoftErrorModel {
    /// The per-bit cross-section of 28 nm planar SRAM at nominal voltage,
    /// ~1.0×10⁻¹⁵ cm²/bit (Yang et al. \[83\], quoted by the paper in §3.3).
    pub const SIGMA_28NM_NOMINAL_CM2: f64 = 1.0e-15;

    /// The default voltage sensitivity calibrated against the paper's
    /// per-cache-level upset rates (see module docs).
    pub const DEFAULT_VOLTAGE_SENSITIVITY: f64 = 3.2;

    /// Creates a model from an explicit calibration point and sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `voltage_sensitivity` is negative or non-finite, or the
    /// nominal voltage is zero.
    pub fn new(
        sigma_nominal: CrossSection,
        nominal_voltage: Millivolts,
        voltage_sensitivity: f64,
    ) -> Self {
        assert!(
            voltage_sensitivity.is_finite() && voltage_sensitivity >= 0.0,
            "voltage sensitivity must be finite and non-negative"
        );
        assert!(
            nominal_voltage.get() > 0,
            "nominal voltage must be positive"
        );
        SoftErrorModel {
            sigma_nominal,
            nominal_voltage,
            voltage_sensitivity,
        }
    }

    /// The 28 nm model the whole workspace defaults to: σ₀ = 10⁻¹⁵ cm²/bit
    /// at 980 mV with the calibrated sensitivity.
    pub fn tech_28nm() -> Self {
        Self::new(
            CrossSection::cm2(Self::SIGMA_28NM_NOMINAL_CM2),
            Millivolts::new(980),
            Self::DEFAULT_VOLTAGE_SENSITIVITY,
        )
    }

    /// The calibration cross-section at the nominal voltage.
    pub const fn sigma_nominal(&self) -> CrossSection {
        self.sigma_nominal
    }

    /// The calibration voltage.
    pub const fn nominal_voltage(&self) -> Millivolts {
        self.nominal_voltage
    }

    /// The dimensionless voltage sensitivity `k`.
    pub const fn voltage_sensitivity(&self) -> f64 {
        self.voltage_sensitivity
    }

    /// The per-bit upset cross-section at the given supply voltage.
    ///
    /// ```
    /// use serscale_sram::SoftErrorModel;
    /// use serscale_types::Millivolts;
    ///
    /// let m = SoftErrorModel::tech_28nm();
    /// let ratio = m.sigma_ratio(Millivolts::new(920));
    /// // ≈ +21% per-bit at the PMD Vmin — which blends with the unscaled
    /// // SoC-domain L3 into the chip-level +10.5% of Table 2.
    /// assert!(ratio > 1.15 && ratio < 1.30);
    /// ```
    pub fn sigma_bit(&self, voltage: Millivolts) -> CrossSection {
        CrossSection::cm2(self.sigma_nominal.as_cm2() * self.sigma_ratio(voltage))
    }

    /// The ratio `σ(V)/σ(V₀)` — how much more (or less) susceptible a bit
    /// is at `voltage` relative to nominal.
    pub fn sigma_ratio(&self, voltage: Millivolts) -> f64 {
        let v_ratio = voltage.ratio_to(self.nominal_voltage);
        (self.voltage_sensitivity * (1.0 - v_ratio)).exp()
    }

    /// The relative critical charge `Qcrit(V)/Qcrit(V₀)` — linear in V
    /// (law 1 of the module docs).
    pub fn qcrit_ratio(&self, voltage: Millivolts) -> f64 {
        voltage.ratio_to(self.nominal_voltage)
    }

    /// The total cross-section of an array of `bits` cells at `voltage`.
    pub fn sigma_array(&self, bits: u64, voltage: Millivolts) -> CrossSection {
        self.sigma_bit(voltage) * bits as f64
    }
}

impl Default for SoftErrorModel {
    fn default() -> Self {
        Self::tech_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SoftErrorModel {
        SoftErrorModel::tech_28nm()
    }

    #[test]
    fn nominal_point_is_exact() {
        let m = model();
        let s = m.sigma_bit(Millivolts::new(980));
        assert!((s.as_cm2() - 1.0e-15).abs() < 1e-22);
        assert!((m.sigma_ratio(Millivolts::new(980)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_is_monotone_decreasing_in_voltage() {
        let m = model();
        let mut prev = f64::INFINITY;
        for mv in (700..=1050).step_by(10) {
            let s = m.sigma_bit(Millivolts::new(mv)).as_cm2();
            assert!(s < prev, "sigma must fall as voltage rises ({mv} mV)");
            prev = s;
        }
    }

    #[test]
    fn qcrit_is_linear_in_voltage() {
        let m = model();
        assert!((m.qcrit_ratio(Millivolts::new(490)) - 0.5).abs() < 1e-12);
        assert!((m.qcrit_ratio(Millivolts::new(980)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_reproduces_paper_pmd_ratios() {
        // Fig. 6: L2 (PMD domain) corrected rate grows 0.157 → 0.194
        // (+24%) from 980 mV to 920 mV; the model should land nearby.
        let m = model();
        let r920 = m.sigma_ratio(Millivolts::new(920));
        assert!((r920 - 1.22).abs() < 0.08, "r920 = {r920}");

        // Fig. 7: L2 at 790 mV reaches 0.29/min, ×1.85 over 980 mV.
        let r790 = m.sigma_ratio(Millivolts::new(790));
        assert!((r790 - 1.86).abs() < 0.15, "r790 = {r790}");
    }

    #[test]
    fn calibration_reproduces_soc_domain_ratios() {
        // Fig. 6 L3 (SoC domain): 950 → 920 mV gives 0.765 → 0.841
        // (+10%); the same k evaluated on the SoC nominal reproduces it.
        let m = SoftErrorModel::new(
            CrossSection::cm2(SoftErrorModel::SIGMA_28NM_NOMINAL_CM2),
            Millivolts::new(950),
            SoftErrorModel::DEFAULT_VOLTAGE_SENSITIVITY,
        );
        let r = m.sigma_ratio(Millivolts::new(920));
        assert!((r - 1.10).abs() < 0.03, "r = {r}");
    }

    #[test]
    fn array_cross_section_scales_with_bits() {
        let m = model();
        let v = Millivolts::new(980);
        let one = m.sigma_array(1, v).as_cm2();
        let mega = m.sigma_array(1_000_000, v).as_cm2();
        assert!((mega / one - 1.0e6).abs() < 1e-3);
    }

    #[test]
    fn expected_upset_interval_matches_paper_estimate() {
        // §3.3: 10 MB of SRAM at σ=1e-15 cm²/bit under 2.5e6 n/cm²/s beam
        // flux → one upset per ≈4.8 s.
        let m = model();
        let bits = 10.0e6 * 8.0;
        let sigma = m.sigma_array(bits as u64, Millivolts::new(980));
        let rate = sigma.event_rate(serscale_types::Flux::per_cm2_s(2.5e6));
        let interval = 1.0 / rate;
        assert!((interval - 4.8).abs() < 0.4, "interval = {interval} s");
    }

    #[test]
    fn zero_sensitivity_is_voltage_independent() {
        let m = SoftErrorModel::new(CrossSection::cm2(1e-15), Millivolts::new(980), 0.0);
        assert!((m.sigma_ratio(Millivolts::new(700)) - 1.0).abs() < 1e-12);
    }
}
