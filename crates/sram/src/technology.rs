//! Technology-node presets and cross-node SER scaling.
//!
//! The paper works on 28 nm and motivates it explicitly (§3.2: no similar
//! Arm platform exists on newer nodes, and 28 nm remains in heavy
//! production). Its lineage, though — Seifert [66, 67] — is about *trends
//! across nodes*, and any architect using this library will ask "what does
//! the voltage/SER trade look like one node up or down?".
//!
//! The presets encode the published per-bit SER trend for planar→FinFET
//! SRAM: per-bit cross-sections grew through the planar era (more charge
//! collected per strike relative to shrinking Qcrit), peaked around
//! 40–65 nm, and fell sharply with FinFETs (tiny collection volumes);
//! meanwhile the *voltage sensitivity* grows monotonically as nominal
//! voltages and Qcrit budgets shrink — which is the forward-looking
//! message of the paper: undervolting's SER tax gets worse with scaling.

use serde::{Deserialize, Serialize};

use serscale_types::{CrossSection, Millivolts};

use crate::mbu::MbuModel;
use crate::qcrit::SoftErrorModel;

/// A fabrication technology node with its calibrated SER parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// The marketing node name, e.g. `"28nm"`.
    name: &'static str,
    /// Per-bit cross-section at the node's nominal voltage (cm²/bit).
    sigma_bit_nominal: f64,
    /// The node's nominal SRAM supply (mV).
    nominal_voltage: Millivolts,
    /// The exponential voltage sensitivity `k` of σ(V).
    voltage_sensitivity: f64,
    /// MBU extension probability at nominal voltage.
    mbu_p_extra: f64,
}

impl TechnologyNode {
    /// 45 nm planar: near the per-bit SER peak, generous 1.1 V nominal,
    /// gentler voltage sensitivity, modest MBU clustering.
    pub fn planar_45nm() -> Self {
        TechnologyNode {
            name: "45nm",
            sigma_bit_nominal: 1.8e-15,
            nominal_voltage: Millivolts::new(1100),
            voltage_sensitivity: 2.2,
            mbu_p_extra: 0.02,
        }
    }

    /// 28 nm planar: the paper's node — the calibrated defaults of this
    /// workspace.
    pub fn planar_28nm() -> Self {
        TechnologyNode {
            name: "28nm",
            sigma_bit_nominal: SoftErrorModel::SIGMA_28NM_NOMINAL_CM2,
            nominal_voltage: Millivolts::new(980),
            voltage_sensitivity: SoftErrorModel::DEFAULT_VOLTAGE_SENSITIVITY,
            mbu_p_extra: MbuModel::DEFAULT_P_EXTRA,
        }
    }

    /// 16 nm FinFET: per-bit σ drops ~5× (small fin collection volume),
    /// but the 800 mV nominal leaves little Qcrit headroom — higher
    /// voltage sensitivity and much stronger MBU clustering (one strike
    /// spans several fins).
    pub fn finfet_16nm() -> Self {
        TechnologyNode {
            name: "16nm",
            sigma_bit_nominal: 2.0e-16,
            nominal_voltage: Millivolts::new(800),
            voltage_sensitivity: 4.5,
            mbu_p_extra: 0.12,
        }
    }

    /// The three modelled nodes, oldest first.
    pub fn lineup() -> [TechnologyNode; 3] {
        [
            Self::planar_45nm(),
            Self::planar_28nm(),
            Self::finfet_16nm(),
        ]
    }

    /// The node name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The node's nominal SRAM supply.
    pub const fn nominal_voltage(&self) -> Millivolts {
        self.nominal_voltage
    }

    /// The node's soft-error model.
    pub fn soft_error_model(&self) -> SoftErrorModel {
        SoftErrorModel::new(
            CrossSection::cm2(self.sigma_bit_nominal),
            self.nominal_voltage,
            self.voltage_sensitivity,
        )
    }

    /// The node's MBU model.
    pub fn mbu_model(&self) -> MbuModel {
        MbuModel::new(
            self.mbu_p_extra,
            self.nominal_voltage,
            self.voltage_sensitivity,
            MbuModel::DEFAULT_MAX_CLUSTER,
        )
    }

    /// The SER tax of a fractional undervolt on this node: σ ratio after
    /// reducing the supply by `fraction` (e.g. `0.06` ≈ the paper's 60 mV
    /// on 980 mV).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    pub fn undervolt_tax(&self, fraction: f64) -> f64 {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        let reduced = Millivolts::new(
            (f64::from(self.nominal_voltage.get()) * (1.0 - fraction)).round() as u32,
        );
        self.soft_error_model().sigma_ratio(reduced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_order_and_names() {
        let nodes = TechnologyNode::lineup();
        assert_eq!(nodes.map(|n| n.name()), ["45nm", "28nm", "16nm"]);
    }

    #[test]
    fn per_bit_sigma_peaks_in_the_planar_era() {
        let [n45, n28, n16] = TechnologyNode::lineup();
        let s = |n: &TechnologyNode| n.soft_error_model().sigma_nominal().as_cm2();
        assert!(s(&n45) > s(&n28), "planar peak");
        assert!(s(&n28) > s(&n16), "FinFET drop");
        assert!(s(&n45) / s(&n16) > 5.0);
    }

    #[test]
    fn voltage_sensitivity_worsens_with_scaling() {
        let [n45, n28, n16] = TechnologyNode::lineup();
        let tax = |n: &TechnologyNode| n.undervolt_tax(0.06);
        assert!(
            tax(&n45) < tax(&n28),
            "45nm tax {} vs 28nm {}",
            tax(&n45),
            tax(&n28)
        );
        assert!(
            tax(&n28) < tax(&n16),
            "28nm tax {} vs 16nm {}",
            tax(&n28),
            tax(&n16)
        );
    }

    #[test]
    fn paper_node_matches_workspace_defaults() {
        let n28 = TechnologyNode::planar_28nm();
        let workspace = SoftErrorModel::tech_28nm();
        assert_eq!(n28.soft_error_model(), workspace);
        // The 6% undervolt tax on 28 nm is the paper's Vmin-level ≈ +21%
        // per-bit (blending to +10.5% chip-level with the SoC domain).
        let tax = n28.undervolt_tax(0.0612);
        assert!((tax - 1.22).abs() < 0.03, "tax = {tax}");
    }

    #[test]
    fn finfet_mbu_clustering_dominates() {
        let [n45, _, n16] = TechnologyNode::lineup();
        let mean16 = n16.mbu_model().mean_cluster_len(n16.nominal_voltage());
        let mean45 = n45.mbu_model().mean_cluster_len(n45.nominal_voltage());
        assert!(mean16 > mean45);
    }

    #[test]
    fn zero_undervolt_is_free() {
        for node in TechnologyNode::lineup() {
            assert!(
                (node.undervolt_tax(0.0) - 1.0).abs() < 1e-9,
                "{}",
                node.name()
            );
        }
    }
}
