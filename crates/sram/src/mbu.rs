//! Multi-bit-upset (MBU) clustering.
//!
//! A single neutron strike deposits charge over a physically contiguous
//! patch of cells; when several of them hold less charge than the deposit,
//! the strike flips a *cluster*. Two facts from the paper drive this model:
//!
//! * lower supply voltage makes multi-cell clusters more likely, because
//!   every cell's `Qcrit` shrinks together (§4.3: "SRAM bit-cells become
//!   more prone … especially to multiple-bit upsets during ultra-low
//!   voltage conditions");
//! * large arrays without interleaving turn physical clusters into logical
//!   multi-bit words — the paper's explanation for uncorrectable errors
//!   appearing *only* in the L3 (§4.3, Fig. 6).
//!
//! The cluster length is `1 + Geometric(p_extra(V))`: each additional
//! adjacent cell joins the cluster with probability `p_extra(V)`, which
//! grows as the voltage drops with the same exponential law as the per-bit
//! cross-section.

use serde::{Deserialize, Serialize};

use serscale_stats::SimRng;
use serscale_types::Millivolts;

/// The cluster-size model for one technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MbuModel {
    /// Probability that a cluster extends by one more cell, at nominal
    /// voltage.
    p_extra_nominal: f64,
    /// The voltage the calibration refers to.
    nominal_voltage: Millivolts,
    /// Exponential growth rate of `p_extra` as voltage drops.
    voltage_sensitivity: f64,
    /// Hard cap on cluster length (charge deposits are finite).
    max_cluster: u32,
}

impl MbuModel {
    /// Per-strike probability of extending the cluster at nominal voltage.
    ///
    /// Calibrated so that the un-interleaved L3 sees ≈4–5 % of its events
    /// as ≥2-bit words (Fig. 6: 0.038 uncorrected vs 0.765 corrected per
    /// minute at 980/950 mV).
    pub const DEFAULT_P_EXTRA: f64 = 0.047;

    /// Default voltage sensitivity of cluster growth. Chosen equal to the
    /// per-bit σ sensitivity: both stem from the same Qcrit shrinkage.
    pub const DEFAULT_VOLTAGE_SENSITIVITY: f64 = 3.2;

    /// Default cluster cap (observed 28 nm neutron clusters rarely exceed
    /// 4–8 cells).
    pub const DEFAULT_MAX_CLUSTER: u32 = 8;

    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p_extra_nominal < 1`, the sensitivity is finite
    /// and non-negative, and `max_cluster ≥ 1`.
    pub fn new(
        p_extra_nominal: f64,
        nominal_voltage: Millivolts,
        voltage_sensitivity: f64,
        max_cluster: u32,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&p_extra_nominal),
            "extension probability must be in [0,1)"
        );
        assert!(
            voltage_sensitivity.is_finite() && voltage_sensitivity >= 0.0,
            "voltage sensitivity must be finite and non-negative"
        );
        assert!(
            max_cluster >= 1,
            "clusters contain at least the struck cell"
        );
        MbuModel {
            p_extra_nominal,
            nominal_voltage,
            voltage_sensitivity,
            max_cluster,
        }
    }

    /// The default 28 nm model calibrated against the paper (see constant
    /// docs).
    pub fn tech_28nm() -> Self {
        Self::new(
            Self::DEFAULT_P_EXTRA,
            Millivolts::new(980),
            Self::DEFAULT_VOLTAGE_SENSITIVITY,
            Self::DEFAULT_MAX_CLUSTER,
        )
    }

    /// The cluster-extension probability at the given voltage, clamped
    /// below 1.
    pub fn p_extra(&self, voltage: Millivolts) -> f64 {
        let v_ratio = voltage.ratio_to(self.nominal_voltage);
        (self.p_extra_nominal * (self.voltage_sensitivity * (1.0 - v_ratio)).exp()).min(0.95)
    }

    /// The expected cluster length at the given voltage:
    /// `E[len] = 1/(1-p)` truncated at the cap.
    pub fn mean_cluster_len(&self, voltage: Millivolts) -> f64 {
        let p = self.p_extra(voltage);
        // Mean of 1 + Geometric(p) truncated at max_cluster.
        let mut mean = 0.0;
        let mut prob_reach = 1.0;
        for len in 1..=self.max_cluster {
            let p_stop = if len == self.max_cluster {
                prob_reach
            } else {
                prob_reach * (1.0 - p)
            };
            mean += len as f64 * p_stop;
            prob_reach *= p;
        }
        mean
    }

    /// Samples a cluster length (≥ 1) for a strike at the given voltage.
    pub fn sample_cluster_len(&self, rng: &mut SimRng, voltage: Millivolts) -> u32 {
        self.sample_cluster_len_with(rng, self.p_extra(voltage))
    }

    /// [`Self::sample_cluster_len`] with the extension probability
    /// precomputed — the hot path caches `p_extra(V)` per (array, voltage)
    /// envelope instead of re-deriving the exponential on every strike.
    /// Draw-for-draw identical to the voltage form for the same `p_extra`.
    pub fn sample_cluster_len_with(&self, rng: &mut SimRng, p_extra: f64) -> u32 {
        let mut len = 1;
        while len < self.max_cluster && rng.chance(p_extra) {
            len += 1;
        }
        len
    }

    /// The maximum cluster length this model can produce.
    pub const fn max_cluster(&self) -> u32 {
        self.max_cluster
    }
}

impl Default for MbuModel {
    fn default() -> Self {
        Self::tech_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MbuModel {
        MbuModel::tech_28nm()
    }

    #[test]
    fn extension_probability_grows_as_voltage_drops() {
        let m = model();
        let p980 = m.p_extra(Millivolts::new(980));
        let p920 = m.p_extra(Millivolts::new(920));
        let p790 = m.p_extra(Millivolts::new(790));
        assert!(p980 < p920 && p920 < p790);
        assert!((p980 - MbuModel::DEFAULT_P_EXTRA).abs() < 1e-12);
    }

    #[test]
    fn extension_probability_is_capped() {
        let m = MbuModel::new(0.5, Millivolts::new(980), 50.0, 8);
        assert!(m.p_extra(Millivolts::new(500)) <= 0.95);
    }

    #[test]
    fn sampled_lengths_within_bounds() {
        let m = model();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let len = m.sample_cluster_len(&mut rng, Millivolts::new(790));
            assert!((1..=m.max_cluster()).contains(&len));
        }
    }

    #[test]
    fn most_strikes_are_single_bit_at_nominal() {
        let m = model();
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let multi = (0..n)
            .filter(|_| m.sample_cluster_len(&mut rng, Millivolts::new(980)) > 1)
            .count();
        let share = multi as f64 / n as f64;
        // ≈ p_extra = 4.7% of strikes extend beyond one cell.
        assert!((share - 0.047).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let m = model();
        let mut rng = SimRng::seed_from(3);
        let v = Millivolts::new(790);
        let n = 50_000;
        let mean = (0..n)
            .map(|_| m.sample_cluster_len(&mut rng, v) as f64)
            .sum::<f64>()
            / n as f64;
        let analytic = m.mean_cluster_len(v);
        assert!((mean - analytic).abs() < 0.02, "{mean} vs {analytic}");
    }

    #[test]
    fn mean_cluster_len_grows_as_voltage_drops() {
        let m = model();
        assert!(
            m.mean_cluster_len(Millivolts::new(790)) > m.mean_cluster_len(Millivolts::new(980))
        );
    }

    #[test]
    fn degenerate_model_always_single() {
        let m = MbuModel::new(0.0, Millivolts::new(980), 0.0, 1);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..100 {
            assert_eq!(m.sample_cluster_len(&mut rng, Millivolts::new(500)), 1);
        }
        assert!((m.mean_cluster_len(Millivolts::new(980)) - 1.0).abs() < 1e-12);
    }
}
