//! # serscale-workload
//!
//! The workload substrate: executable miniature versions of the six NAS
//! Parallel Benchmarks the paper ran (CG, EP, FT, IS, LU, MG — §3.3), plus
//! the per-benchmark sensitivity profiles that drive the fault-propagation
//! model.
//!
//! ## Why real kernels?
//!
//! The paper's SDC detector is "compare the application output against a
//! golden reference". To exercise that code path honestly, the simulator
//! needs applications that *compute something*: each kernel here is a
//! scaled-down but algorithmically faithful implementation of its NPB
//! namesake (a conjugate-gradient solve, a Gaussian-pair Monte Carlo, a 3-D
//! FFT, a bucket sort, an SSOR sweep, a multigrid V-cycle), deterministic
//! down to the bit, with a checksum-comparable output. Corruption injection
//! ([`kernel::Corruption`]) flips a bit of the working state mid-run, and
//! the output either changes (an SDC the harness catches by golden
//! comparison) or doesn't (logical masking — which is why SER studies need
//! per-workload AVFs at all).
//!
//! ## Profiles
//!
//! [`profile::WorkloadProfile`] carries the measurable per-benchmark
//! characteristics the campaign model needs: class-A runtime, the
//! detection-efficiency factor (how much of the raw cache upset rate this
//! benchmark's access pattern surfaces — calibrated against Figure 5), the
//! probability that consumed corrupt data escapes masking, and relative
//! power draw.
//!
//! ## Example
//!
//! ```
//! use serscale_workload::{Benchmark, kernel::Kernel};
//!
//! let cg = Benchmark::Cg.kernel();
//! let golden = cg.run();
//! // Deterministic: a healthy re-run reproduces the golden output.
//! assert_eq!(cg.run(), golden);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod kernel;
pub mod lu;
pub mod mg;
pub mod parallel;
pub mod profile;
pub mod virus;

pub use kernel::{Corruption, Kernel, KernelOutput};
pub use parallel::{run_suite_parallel, EpParallel};
pub use profile::{Benchmark, WorkloadProfile};
pub use virus::MicroVirus;
