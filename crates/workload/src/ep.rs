//! EP — the Embarrassingly Parallel kernel.
//!
//! Faithful to NPB EP's structure: generate pseudo-random pairs, apply the
//! Marsaglia polar method to produce Gaussian deviates, accumulate the sums
//! `Σx`, `Σy` and the per-annulus counts `q[l]`, `l = ⌊max(|x|,|y|)⌋`.
//! Output: the two sums plus the ten annulus counts — exactly what real EP
//! verifies against reference values.

use crate::kernel::{Corruption, Kernel, KernelOutput, NpbRandom};

/// The EP kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ep {
    /// Number of random pairs to draw.
    pairs: u32,
    /// Input-stream seed (fixed per "class").
    seed: u64,
}

impl Ep {
    /// A miniature class-A-shaped instance (tens of thousands of pairs;
    /// milliseconds of work).
    pub fn class_a() -> Self {
        Ep {
            pairs: 1 << 15,
            seed: 271_828_183,
        }
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Ep {
            pairs: 1 << 8,
            seed: 271_828_183,
        }
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is zero.
    pub fn new(pairs: u32, seed: u64) -> Self {
        assert!(pairs > 0, "EP needs at least one pair");
        Ep { pairs, seed }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        // Working state: [sx, sy, q0..q9] — the accumulators a strike can
        // corrupt.
        let mut state = [0.0f64; 12];
        let mut rng = NpbRandom::new(self.seed);
        let inject_at = corruption.map(|c| c.iteration(self.pairs as usize));

        for i in 0..self.pairs as usize {
            if inject_at == Some(i) {
                if let Some(c) = corruption {
                    c.apply(&mut state);
                }
            }
            let x = 2.0 * rng.next_f64() - 1.0;
            let y = 2.0 * rng.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let factor = ((-2.0 * t.ln()) / t).sqrt();
                let gx = x * factor;
                let gy = y * factor;
                state[0] += gx;
                state[1] += gy;
                let l = gx.abs().max(gy.abs()) as usize;
                if l < 10 {
                    state[2 + l] += 1.0;
                }
            }
        }
        KernelOutput::new(vec![state[0], state[1]], state)
    }
}

impl Kernel for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let ep = Ep::class_a();
        assert_eq!(ep.run(), ep.run());
    }

    #[test]
    fn gaussian_sums_are_small_relative_to_count() {
        // Sums of zero-mean Gaussians grow like sqrt(n), not n.
        let ep = Ep::class_a();
        let out = ep.run();
        let n = (1 << 15) as f64;
        assert!(out.values[0].abs() < 5.0 * n.sqrt());
        assert!(out.values[1].abs() < 5.0 * n.sqrt());
    }

    #[test]
    fn annulus_counts_decrease() {
        // q[0] (|g| < 1) must dominate q[3] for a standard normal.
        let ep = Ep::class_a();
        let out = ep.run();
        // KernelOutput state order: sx, sy, q0..q9 — recover q from a raw
        // re-run to avoid depending on internals.
        let q0_heavy = out.values[0].is_finite();
        assert!(q0_heavy);
    }

    #[test]
    fn corruption_of_accumulator_changes_output() {
        let ep = Ep::class_a();
        let golden = ep.golden();
        // Flip a high mantissa bit of sx early: almost surely visible.
        let corrupted = ep.run_corrupted(Corruption::new(0.1, 0, 62));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn late_low_bit_corruption_may_mask() {
        // A flip in the lowest mantissa bit of a count that is later only
        // summed can survive; we only require *determinism* of the outcome.
        let ep = Ep::tiny();
        let a = ep.run_corrupted(Corruption::new(0.9, 5, 0));
        let b = ep.run_corrupted(Corruption::new(0.9, 5, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_sizes_differ() {
        assert_ne!(Ep::class_a().run(), Ep::tiny().run());
    }
}
