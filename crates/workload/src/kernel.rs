//! The kernel abstraction: a deterministic computation with a comparable
//! output and a corruption-injection hook.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The output of one kernel run: a numeric result vector plus an
/// order-sensitive checksum over the full working state.
///
/// Two outputs compare equal exactly when the computation produced
/// bit-identical results — the golden-comparison SDC detector of the
/// paper's test flow (§3.6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelOutput {
    /// Headline result values (residual norms, counts, checksums — kernel
    /// specific).
    pub values: Vec<f64>,
    /// FNV-1a-style checksum over the bit patterns of the full result
    /// state, folded one 64-bit word per round.
    pub checksum: u64,
}

impl KernelOutput {
    /// Builds an output from headline values and the full result state the
    /// checksum should cover.
    ///
    /// The fold is one xor-multiply round per f64 (FNV-1a's constants on
    /// whole words rather than bytes): each round is injective in the
    /// running state, so any single-element difference is guaranteed to
    /// change the checksum, and the fold stays order sensitive. Golden
    /// comparison only ever tests *equality* of two outputs produced by
    /// this same fold, so the fingerprint choice is free — one round per
    /// word keeps the checksum out of the corrupted-run hot path's budget.
    pub fn new(values: Vec<f64>, state: impl IntoIterator<Item = f64>) -> Self {
        let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: f64| {
            checksum ^= x.to_bits();
            checksum = checksum.wrapping_mul(0x1000_0000_01b3);
        };
        for v in &values {
            fold(*v);
        }
        for x in state {
            fold(x);
        }
        KernelOutput { values, checksum }
    }

    /// Whether this output matches a golden reference — the SDC check.
    pub fn matches(&self, golden: &KernelOutput) -> bool {
        self == golden
    }
}

impl fmt::Display for KernelOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checksum {:016x}, values {:?}",
            self.checksum, self.values
        )
    }
}

/// A bit flip injected into a kernel's working state mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Corruption {
    /// When to inject, as a fraction of the kernel's main loop (`[0, 1)`).
    pub at_fraction: f64,
    /// Which word of the working state to hit (wrapped modulo state size).
    pub word: usize,
    /// Which bit of the 64-bit word to flip.
    pub bit: u8,
}

impl Corruption {
    /// Creates a corruption.
    ///
    /// # Panics
    ///
    /// Panics if `at_fraction` is outside `[0, 1)` or `bit > 63`.
    pub fn new(at_fraction: f64, word: usize, bit: u8) -> Self {
        assert!(
            (0.0..1.0).contains(&at_fraction),
            "fraction must be in [0,1)"
        );
        assert!(bit < 64, "64-bit words have bits 0..=63");
        Corruption {
            at_fraction,
            word,
            bit,
        }
    }

    /// Applies this corruption to a slice of f64 state.
    pub fn apply(&self, state: &mut [f64]) {
        if state.is_empty() {
            return;
        }
        let idx = self.word % state.len();
        state[idx] = f64::from_bits(state[idx].to_bits() ^ (1u64 << self.bit));
    }

    /// The main-loop iteration (out of `total`) at which to inject.
    pub fn iteration(&self, total: usize) -> usize {
        ((self.at_fraction * total as f64) as usize).min(total.saturating_sub(1))
    }

    /// Applies this corruption to integer working state (e.g. the IS key
    /// array).
    pub fn apply_u64(&self, state: &mut [u64]) {
        if state.is_empty() {
            return;
        }
        let idx = self.word % state.len();
        state[idx] ^= 1u64 << self.bit;
    }
}

/// A deterministic benchmark kernel.
///
/// Implementations are pure: [`Kernel::run`] always produces the same
/// output, so the golden reference is simply a clean run.
pub trait Kernel {
    /// The benchmark's short name (e.g. `"CG"`).
    fn name(&self) -> &'static str;

    /// Runs the kernel to completion, fault-free.
    fn run(&self) -> KernelOutput;

    /// Runs the kernel with a bit flip injected into its working state.
    ///
    /// The output may equal the golden output (the flip was logically
    /// masked — overwritten, or in dead data) or differ (a potential SDC).
    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput;

    /// A clean reference output. Default: one fault-free run.
    fn golden(&self) -> KernelOutput {
        self.run()
    }
}

/// A deterministic pseudo-random stream used by kernels for input
/// generation — NPB-style linear congruential (matches the spirit of NPB's
/// `randlc`, not its exact constants).
#[derive(Debug, Clone, Copy)]
pub struct NpbRandom {
    state: u64,
}

impl NpbRandom {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        NpbRandom {
            state: seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_equality_is_bit_exact() {
        let a = KernelOutput::new(vec![1.0, 2.0], [3.0, 4.0]);
        let b = KernelOutput::new(vec![1.0, 2.0], [3.0, 4.0]);
        assert!(a.matches(&b));
        let c = KernelOutput::new(vec![1.0, 2.0], [3.0, f64::from_bits(4.0f64.to_bits() ^ 1)]);
        assert!(!a.matches(&c));
    }

    #[test]
    fn checksum_covers_state_not_just_values() {
        let a = KernelOutput::new(vec![1.0], [5.0, 6.0]);
        let b = KernelOutput::new(vec![1.0], [6.0, 5.0]);
        assert_ne!(a.checksum, b.checksum, "checksum must be order sensitive");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut state = vec![1.0f64, 2.0, 3.0];
        let original = state.clone();
        Corruption::new(0.5, 1, 52).apply(&mut state);
        assert_eq!(state[0], original[0]);
        assert_eq!(state[2], original[2]);
        assert_ne!(state[1], original[1]);
        // Re-applying restores (XOR involution).
        Corruption::new(0.5, 1, 52).apply(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn corruption_wraps_word_index() {
        let mut state = vec![1.0f64, 2.0];
        Corruption::new(0.0, 7, 0).apply(&mut state); // 7 % 2 == 1
        assert_eq!(state[0], 1.0);
        assert_ne!(state[1], 2.0);
    }

    #[test]
    fn corruption_iteration_mapping() {
        let c = Corruption::new(0.5, 0, 0);
        assert_eq!(c.iteration(100), 50);
        assert_eq!(c.iteration(1), 0);
        let end = Corruption::new(0.999, 0, 0);
        assert_eq!(end.iteration(10), 9);
    }

    #[test]
    fn corruption_on_empty_state_is_noop() {
        let mut state: Vec<f64> = vec![];
        Corruption::new(0.1, 3, 3).apply(&mut state);
        assert!(state.is_empty());
    }

    #[test]
    fn npb_random_is_deterministic_and_uniform() {
        let mut a = NpbRandom::new(7);
        let mut b = NpbRandom::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = NpbRandom::new(1);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
