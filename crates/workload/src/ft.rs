//! FT — the 3-D Fast Fourier Transform kernel.
//!
//! Mirrors NPB FT's structure: fill a 3-D complex grid with deterministic
//! pseudo-random data, take the forward 3-D FFT, evolve the spectrum over a
//! few time steps with an exponential damping factor, inverse-transform and
//! accumulate a checksum per step. Exercises strided memory access across
//! all three dimensions.

use crate::kernel::{Corruption, Kernel, KernelOutput, NpbRandom};

/// The FT kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ft {
    /// Grid side (power of two); the grid has `side³` complex points.
    side: usize,
    /// Number of evolution steps.
    steps: usize,
}

impl Ft {
    /// A miniature class-A-shaped instance (16³ grid, 4 steps).
    pub fn class_a() -> Self {
        Ft { side: 16, steps: 4 }
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Ft { side: 8, steps: 2 }
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a power of two ≥ 2 or `steps == 0`.
    pub fn new(side: usize, steps: usize) -> Self {
        assert!(
            side >= 2 && side.is_power_of_two(),
            "side must be a power of two ≥ 2"
        );
        assert!(steps > 0, "need at least one step");
        Ft { side, steps }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let n = self.side;
        let total = n * n * n;
        // Interleaved re/im working state.
        let mut re = vec![0.0f64; total];
        let mut im = vec![0.0f64; total];
        let mut rng = NpbRandom::new(314_159_265);
        for i in 0..total {
            re[i] = rng.next_f64() - 0.5;
            im[i] = rng.next_f64() - 0.5;
        }

        forward_3d(&mut re, &mut im, n);

        let inject_at = corruption.map(|c| c.iteration(self.steps));
        let mut checksums = Vec::with_capacity(self.steps * 2);
        for step in 0..self.steps {
            if inject_at == Some(step) {
                if let Some(c) = corruption {
                    // Hit the spectral working state.
                    c.apply(&mut re);
                }
            }
            // Evolve: multiply each mode by exp(-t·k²)-style damping.
            evolve(&mut re, &mut im, n, (step + 1) as f64 * 1.0e-4);
            // Inverse-transform a copy and fold its checksum, as NPB FT
            // checksums each time step.
            let mut cre = re.clone();
            let mut cim = im.clone();
            inverse_3d(&mut cre, &mut cim, n);
            let (sre, sim) = checksum(&cre, &cim, n);
            checksums.push(sre);
            checksums.push(sim);
        }

        let values = checksums.clone();
        KernelOutput::new(values, re.into_iter().chain(im))
    }
}

/// NPB-style checksum: sum a stride-walked subset of grid points.
fn checksum(re: &[f64], im: &[f64], n: usize) -> (f64, f64) {
    let total = n * n * n;
    let mut sre = 0.0;
    let mut sim = 0.0;
    for j in 1..=1024usize {
        let q = (j * 17) % total;
        sre += re[q];
        sim += im[q];
    }
    (sre, sim)
}

fn evolve(re: &mut [f64], im: &mut [f64], n: usize, t: f64) {
    // k² = kx²+ky²+kz² only takes 3·(n/2)²+1 small-integer values (exact
    // in f64), so the damping exponential is tabulated per value instead
    // of recomputed per grid point — identical factors, n³ fewer `exp`s.
    let half = n / 2;
    let table: Vec<f64> = (0..=3 * half * half)
        .map(|k2| (-t * k2 as f64).exp())
        .collect();
    for z in 0..n {
        let kz = if z <= half { z } else { n - z };
        for y in 0..n {
            let ky = if y <= half { y } else { n - y };
            for x in 0..n {
                let kx = if x <= half { x } else { n - x };
                let factor = table[kx * kx + ky * ky + kz * kz];
                let idx = (z * n + y) * n + x;
                re[idx] *= factor;
                im[idx] *= factor;
            }
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey over a strided 1-D line.
fn fft_line(re: &mut [f64], im: &mut [f64], offset: usize, stride: usize, n: usize, inverse: bool) {
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(offset + i * stride, offset + j * stride);
            im.swap(offset + i * stride, offset + j * stride);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut cur_r = 1.0;
            let mut cur_i = 0.0;
            for k in 0..len / 2 {
                let a = offset + (i + k) * stride;
                let b = offset + (i + k + len / 2) * stride;
                let tr = re[b] * cur_r - im[b] * cur_i;
                let ti = re[b] * cur_i + im[b] * cur_r;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
            i += len;
        }
        len <<= 1;
    }
}

fn transform_3d(re: &mut [f64], im: &mut [f64], n: usize, inverse: bool) {
    // X lines.
    for z in 0..n {
        for y in 0..n {
            fft_line(re, im, (z * n + y) * n, 1, n, inverse);
        }
    }
    // Y lines.
    for z in 0..n {
        for x in 0..n {
            fft_line(re, im, z * n * n + x, n, n, inverse);
        }
    }
    // Z lines.
    for y in 0..n {
        for x in 0..n {
            fft_line(re, im, y * n + x, n * n, n, inverse);
        }
    }
    if inverse {
        let scale = 1.0 / (n * n * n) as f64;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }
}

fn forward_3d(re: &mut [f64], im: &mut [f64], n: usize) {
    transform_3d(re, im, n, false);
}

fn inverse_3d(re: &mut [f64], im: &mut [f64], n: usize) {
    transform_3d(re, im, n, true);
}

impl Kernel for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let ft = Ft::tiny();
        assert_eq!(ft.run(), ft.run());
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let n = 8;
        let total = n * n * n;
        let mut rng = NpbRandom::new(99);
        let orig_re: Vec<f64> = (0..total).map(|_| rng.next_f64()).collect();
        let orig_im: Vec<f64> = (0..total).map(|_| rng.next_f64()).collect();
        let mut re = orig_re.clone();
        let mut im = orig_im.clone();
        forward_3d(&mut re, &mut im, n);
        inverse_3d(&mut re, &mut im, n);
        for i in 0..total {
            assert!((re[i] - orig_re[i]).abs() < 1e-10, "re[{i}]");
            assert!((im[i] - orig_im[i]).abs() < 1e-10, "im[{i}]");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 8;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft_line(&mut re, &mut im, 0, 1, n, false);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 16;
        let mut rng = NpbRandom::new(5);
        let mut re: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let mut im = vec![0.0; n];
        let time_energy: f64 = re.iter().map(|v| v * v).sum();
        fft_line(&mut re, &mut im, 0, 1, n, false);
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn corruption_perturbs_checksums() {
        let ft = Ft::tiny();
        let golden = ft.golden();
        let corrupted = ft.run_corrupted(Corruption::new(0.0, 10, 60));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn evolution_damps_high_modes() {
        let n = 8;
        let total = n * n * n;
        let mut re = vec![1.0; total];
        let mut im = vec![0.0; total];
        evolve(&mut re, &mut im, n, 0.1);
        // DC mode untouched; the (4,4,4) Nyquist corner damped hardest.
        assert_eq!(re[0], 1.0);
        let nyquist = (4 * n + 4) * n + 4;
        assert!(re[nyquist] < 0.01);
    }
}
