//! MG — the Multigrid kernel.
//!
//! Mirrors NPB MG: V-cycles of a geometric multigrid solver for the 3-D
//! Poisson equation — Jacobi-style smoothing, full-weighting restriction to
//! a coarser grid, trilinear-ish prolongation back — reporting the L2 norm
//! of the residual, which is exactly what NPB MG verifies.

use crate::kernel::{Corruption, Kernel, KernelOutput};

/// The MG kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mg {
    /// Finest grid side (power of two).
    side: usize,
    /// Number of V-cycles.
    cycles: usize,
}

impl Mg {
    /// A miniature class-A-shaped instance (32³ fine grid, 4 V-cycles).
    pub fn class_a() -> Self {
        Mg {
            side: 32,
            cycles: 4,
        }
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Mg { side: 8, cycles: 2 }
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a power of two ≥ 4 or `cycles == 0`.
    pub fn new(side: usize, cycles: usize) -> Self {
        assert!(
            side >= 4 && side.is_power_of_two(),
            "side must be a power of two ≥ 4"
        );
        assert!(cycles > 0, "need at least one V-cycle");
        Mg { side, cycles }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let n = self.side;
        let total = n * n * n;
        // Deterministic ±1 point charges, like MG's input.
        let mut f = vec![0.0f64; total];
        for k in 0..10 {
            let idx = (k * 7919) % total;
            f[idx] = if k % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut u = vec![0.0f64; total];
        let inject_at = corruption.map(|c| c.iteration(self.cycles));
        let mut residuals = Vec::with_capacity(self.cycles);

        for cycle in 0..self.cycles {
            if inject_at == Some(cycle) {
                if let Some(c) = corruption {
                    c.apply(&mut u);
                }
            }
            v_cycle(&mut u, &f, n);
            residuals.push(residual_norm(&u, &f, n));
        }

        let final_res = *residuals.last().expect("at least one cycle");
        let mut values = vec![final_res];
        values.extend(residuals.iter().copied());
        KernelOutput::new(values, u)
    }
}

fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
    (z * n + y) * n + x
}

/// Weighted-Jacobi smoothing for -∇²u = f (7-point stencil, periodic-free:
/// interior only, zero boundary).
fn smooth(u: &mut [f64], f: &[f64], n: usize, passes: usize) {
    let omega = 0.8;
    // One scratch snapshot reused across passes; each pass refreshes it
    // with a memcpy instead of a fresh allocation.
    let mut prev = vec![0.0; u.len()];
    for _ in 0..passes {
        prev.copy_from_slice(u);
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = idx(n, x, y, z);
                    let neighbours = prev[idx(n, x - 1, y, z)]
                        + prev[idx(n, x + 1, y, z)]
                        + prev[idx(n, x, y - 1, z)]
                        + prev[idx(n, x, y + 1, z)]
                        + prev[idx(n, x, y, z - 1)]
                        + prev[idx(n, x, y, z + 1)];
                    let jac = (f[i] + neighbours) / 6.0;
                    u[i] = (1.0 - omega) * prev[i] + omega * jac;
                }
            }
        }
    }
}

fn residual(u: &[f64], f: &[f64], n: usize) -> Vec<f64> {
    let mut r = vec![0.0; n * n * n];
    for z in 1..n - 1 {
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = idx(n, x, y, z);
                let lap = 6.0 * u[i]
                    - u[idx(n, x - 1, y, z)]
                    - u[idx(n, x + 1, y, z)]
                    - u[idx(n, x, y - 1, z)]
                    - u[idx(n, x, y + 1, z)]
                    - u[idx(n, x, y, z - 1)]
                    - u[idx(n, x, y, z + 1)];
                r[i] = f[i] - lap;
            }
        }
    }
    r
}

fn residual_norm(u: &[f64], f: &[f64], n: usize) -> f64 {
    residual(u, f, n).iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Injection (full-weighting lite): coarse point takes the fine point value.
fn restrict(fine: &[f64], nf: usize) -> Vec<f64> {
    let nc = nf / 2;
    let mut coarse = vec![0.0; nc * nc * nc];
    for z in 0..nc {
        for y in 0..nc {
            for x in 0..nc {
                coarse[idx(nc, x, y, z)] = fine[idx(nf, x * 2, y * 2, z * 2)];
            }
        }
    }
    coarse
}

/// Nearest-neighbour prolongation with additive correction.
fn prolong_add(u: &mut [f64], coarse: &[f64], nf: usize) {
    let nc = nf / 2;
    for z in 0..nf - 1 {
        for y in 0..nf - 1 {
            for x in 0..nf - 1 {
                let c = coarse[idx(
                    nc,
                    (x / 2).min(nc - 1),
                    (y / 2).min(nc - 1),
                    (z / 2).min(nc - 1),
                )];
                u[idx(nf, x, y, z)] += c;
            }
        }
    }
}

/// One V-cycle: smooth, restrict residual, recurse (or bottom-solve),
/// prolong correction, smooth again.
fn v_cycle(u: &mut [f64], f: &[f64], n: usize) {
    smooth(u, f, n, 2);
    if n <= 4 {
        smooth(u, f, n, 8); // bottom solve by heavy smoothing
        return;
    }
    let r = residual(u, f, n);
    let rc = restrict(&r, n);
    let nc = n / 2;
    let mut ec = vec![0.0; nc * nc * nc];
    v_cycle(&mut ec, &rc, nc);
    // Scale correction: coarse-grid operator differs by h² factor 4.
    for v in ec.iter_mut() {
        *v *= 4.0;
    }
    prolong_add(u, &ec, n);
    smooth(u, f, n, 2);
}

impl Kernel for Mg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mg = Mg::tiny();
        assert_eq!(mg.run(), mg.run());
    }

    #[test]
    fn residual_shrinks_over_cycles() {
        let out = Mg::class_a().run();
        let residuals = &out.values[1..];
        assert!(
            residuals.last().unwrap() < &residuals[0],
            "V-cycles must reduce the residual: {residuals:?}"
        );
    }

    #[test]
    fn smoother_reduces_residual() {
        let n = 8;
        let total = n * n * n;
        let mut f = vec![0.0; total];
        f[idx(n, 4, 4, 4)] = 1.0;
        let mut u = vec![0.0; total];
        let r0 = residual_norm(&u, &f, n);
        smooth(&mut u, &f, n, 10);
        let r1 = residual_norm(&u, &f, n);
        assert!(r1 < r0, "{r1} !< {r0}");
    }

    #[test]
    fn restriction_halves_grid() {
        let fine = vec![1.0; 8 * 8 * 8];
        let coarse = restrict(&fine, 8);
        assert_eq!(coarse.len(), 4 * 4 * 4);
        assert!(coarse.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn prolongation_adds_correction() {
        let mut u = vec![0.0; 8 * 8 * 8];
        let coarse = vec![2.0; 4 * 4 * 4];
        prolong_add(&mut u, &coarse, 8);
        assert_eq!(u[idx(8, 3, 3, 3)], 2.0);
    }

    #[test]
    fn corruption_changes_output() {
        let mg = Mg::tiny();
        let golden = mg.golden();
        let corrupted = mg.run_corrupted(Corruption::new(0.5, 100, 62));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn zero_forcing_stays_zero() {
        let n = 8;
        let f = vec![0.0; n * n * n];
        let mut u = vec![0.0; n * n * n];
        v_cycle(&mut u, &f, n);
        assert!(u.iter().all(|&v| v == 0.0));
    }
}
