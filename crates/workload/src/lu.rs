//! LU — the SSOR-style regular-sparse solver kernel.
//!
//! NPB LU is a CFD application that solves a regular-sparse block system
//! with Symmetric Successive Over-Relaxation. This miniature keeps the
//! numerical heart: SSOR sweeps (forward then backward Gauss–Seidel with an
//! over-relaxation factor) over a 2-D Poisson problem, reporting the
//! residual norm trajectory like LU's verification stage.

use crate::kernel::{Corruption, Kernel, KernelOutput};

/// The LU kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lu {
    /// Grid side; the system has `side²` unknowns.
    side: usize,
    /// SSOR sweeps.
    sweeps: usize,
}

/// The over-relaxation factor (NPB LU uses ω = 1.2).
const OMEGA: f64 = 1.2;

impl Lu {
    /// A miniature class-A-shaped instance (64×64 grid, 30 sweeps).
    pub fn class_a() -> Self {
        Lu {
            side: 64,
            sweeps: 30,
        }
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Lu {
            side: 12,
            sweeps: 8,
        }
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `side < 3` or `sweeps == 0`.
    pub fn new(side: usize, sweeps: usize) -> Self {
        assert!(side >= 3, "grid side must be at least 3");
        assert!(sweeps > 0, "need at least one sweep");
        Lu { side, sweeps }
    }

    fn rhs(&self, i: usize, j: usize) -> f64 {
        // A smooth deterministic forcing term.
        let n = self.side as f64;
        let x = i as f64 / n;
        let y = j as f64 / n;
        (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
    }

    fn residual_norm(&self, u: &[f64], rhs: &[f64]) -> f64 {
        let n = self.side;
        let mut sum = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                let lap = 4.0 * u[idx] - u[idx - n] - u[idx + n] - u[idx - 1] - u[idx + 1];
                let r = rhs[idx] - lap;
                sum += r * r;
            }
        }
        sum.sqrt()
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let n = self.side;
        let mut u = vec![0.0f64; n * n];
        // The forcing term is fixed for the whole solve; tabulating it once
        // keeps the two transcendentals per point out of every sweep (the
        // values are the identical `sin·sin` expression either way).
        let rhs: Vec<f64> = (0..n * n).map(|idx| self.rhs(idx / n, idx % n)).collect();
        let inject_at = corruption.map(|c| c.iteration(self.sweeps));
        let mut residuals = Vec::with_capacity(self.sweeps);

        for sweep in 0..self.sweeps {
            if inject_at == Some(sweep) {
                if let Some(c) = corruption {
                    c.apply(&mut u);
                }
            }
            // Forward Gauss–Seidel with over-relaxation.
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let idx = i * n + j;
                    let gs = (rhs[idx] + u[idx - n] + u[idx + n] + u[idx - 1] + u[idx + 1]) / 4.0;
                    u[idx] += OMEGA * (gs - u[idx]);
                }
            }
            // Backward sweep (the "symmetric" in SSOR).
            for i in (1..n - 1).rev() {
                for j in (1..n - 1).rev() {
                    let idx = i * n + j;
                    let gs = (rhs[idx] + u[idx - n] + u[idx + n] + u[idx - 1] + u[idx + 1]) / 4.0;
                    u[idx] += OMEGA * (gs - u[idx]);
                }
            }
            residuals.push(self.residual_norm(&u, &rhs));
        }

        let final_residual = *residuals.last().expect("at least one sweep");
        let usum: f64 = u.iter().sum();
        let mut values = vec![final_residual, usum];
        values.extend(residuals.iter().copied());
        KernelOutput::new(values, u)
    }
}

impl Kernel for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let lu = Lu::class_a();
        assert_eq!(lu.run(), lu.run());
    }

    #[test]
    fn residual_decreases_monotonically() {
        let out = Lu::class_a().run();
        // values[2..] is the residual trajectory.
        let residuals = &out.values[2..];
        for pair in residuals.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0001, "{} -> {}", pair[0], pair[1]);
        }
        // SSOR on a 64×64 grid converges slowly (spectral radius near 1);
        // 30 sweeps buy a solid but not dramatic reduction.
        assert!(residuals.last().unwrap() < &(residuals[0] * 0.9));
    }

    #[test]
    fn solution_is_positive_bump() {
        // -∇²u = sin·sin forcing with zero boundary ⇒ positive interior.
        let out = Lu::class_a().run();
        assert!(out.values[1] > 0.0, "sum(u) = {}", out.values[1]);
    }

    #[test]
    fn corruption_mid_solve_changes_state() {
        let lu = Lu::class_a();
        let golden = lu.golden();
        let corrupted = lu.run_corrupted(Corruption::new(0.9, 2000, 55));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn ssor_tolerates_and_repairs_small_early_upsets() {
        // Relaxation smooths early perturbations away: final residual stays
        // close to golden even though bit-exact state differs.
        let lu = Lu::class_a();
        let golden = lu.golden();
        let corrupted = lu.run_corrupted(Corruption::new(0.1, 2000, 30));
        let rel = (corrupted.values[0] - golden.values[0]).abs() / golden.values[0].max(1e-30);
        assert!(
            rel < 0.5,
            "early small upset should not derail convergence (rel = {rel})"
        );
    }

    #[test]
    fn boundary_stays_zero() {
        let lu = Lu::tiny();
        let out = lu.run();
        // usum of a 12×12 grid with zero boundary: reconstruct by re-running
        // and checking the checksum is stable (boundary handled inside).
        assert_eq!(out, lu.run());
    }
}
