//! CG — the Conjugate Gradient kernel.
//!
//! Solves `A·x = b` for a sparse symmetric positive-definite matrix (the
//! five-point 2-D Laplacian, the canonical CG testbed) and reports the
//! final residual norm and solution statistics. Mirrors NPB CG's role of
//! stressing irregular memory access and inner products.

use crate::kernel::{Corruption, Kernel, KernelOutput};

/// The CG kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cg {
    /// Grid side; the system has `side²` unknowns.
    side: usize,
    /// Number of CG iterations.
    iterations: usize,
}

impl Cg {
    /// A miniature class-A-shaped instance (1024 unknowns, 25 iterations).
    pub fn class_a() -> Self {
        Cg {
            side: 32,
            iterations: 60,
        }
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Cg {
            side: 8,
            iterations: 10,
        }
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if `side < 2` or `iterations == 0`.
    pub fn new(side: usize, iterations: usize) -> Self {
        assert!(side >= 2, "grid side must be at least 2");
        assert!(iterations > 0, "need at least one iteration");
        Cg { side, iterations }
    }

    /// Applies the 2-D five-point Laplacian: `y = A·x`.
    fn apply_laplacian(&self, x: &[f64], y: &mut [f64]) {
        let n = self.side;
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                let mut v = 4.0 * x[idx];
                if i > 0 {
                    v -= x[idx - n];
                }
                if i + 1 < n {
                    v -= x[idx + n];
                }
                if j > 0 {
                    v -= x[idx - 1];
                }
                if j + 1 < n {
                    v -= x[idx + 1];
                }
                y[idx] = v;
            }
        }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let n = self.side * self.side;
        // Deterministic right-hand side.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();

        let mut x = vec![0.0f64; n];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut ap = vec![0.0f64; n];
        let mut rr: f64 = r.iter().map(|v| v * v).sum();
        let inject_at = corruption.map(|c| c.iteration(self.iterations));

        for it in 0..self.iterations {
            if inject_at == Some(it) {
                if let Some(c) = corruption {
                    // The solution vector is the kernel's long-lived state.
                    c.apply(&mut x);
                }
            }
            self.apply_laplacian(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-300 {
                break;
            }
            let alpha = rr / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rr_new / rr;
            rr = rr_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }

        // True residual from the (possibly corrupted) solution.
        self.apply_laplacian(&x, &mut ap);
        let residual: f64 = b
            .iter()
            .zip(&ap)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        let xsum: f64 = x.iter().sum();
        KernelOutput::new(vec![residual, xsum], x)
    }
}

impl Kernel for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cg = Cg::class_a();
        assert_eq!(cg.run(), cg.run());
    }

    #[test]
    fn converges() {
        // CG on an SPD system must shrink the residual dramatically.
        let out = Cg::class_a().run();
        let residual = out.values[0];
        let b_norm = ((32 * 32) as f64).sqrt() * 1.4; // ‖b‖ scale
        assert!(residual < 0.05 * b_norm, "residual = {residual}");
    }

    #[test]
    fn early_corruption_is_repaired_by_cg() {
        // CG is self-correcting for perturbations of x early in the solve:
        // the residual recurrence keeps pulling x back toward the solution.
        // But the output CHECKSUM still differs because x's bits differ —
        // this is precisely the "output mismatch" subtlety golden
        // comparison has to catch.
        let cg = Cg::class_a();
        let golden = cg.golden();
        let corrupted = cg.run_corrupted(Corruption::new(0.2, 100, 40));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn late_corruption_visible_in_residual() {
        let cg = Cg::class_a();
        let golden = cg.golden();
        // High-exponent-bit flip on x near the end: residual blows up.
        let corrupted = cg.run_corrupted(Corruption::new(0.95, 500, 62));
        assert!(!corrupted.matches(&golden));
        assert!(corrupted.values[0] > golden.values[0]);
    }

    #[test]
    fn laplacian_of_constant_vector() {
        // For a constant vector, interior rows of A·x are zero; only
        // boundary rows are nonzero. Checks the stencil wiring.
        let cg = Cg::tiny();
        let x = vec![1.0; 64];
        let mut y = vec![0.0; 64];
        cg.apply_laplacian(&x, &mut y);
        // Interior point (3,3): 4 - 4 neighbours = 0.
        assert_eq!(y[3 * 8 + 3], 0.0);
        // Corner (0,0): 4 - 2 neighbours = 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn tiny_and_class_a_differ() {
        assert_ne!(Cg::class_a().run(), Cg::tiny().run());
    }
}
