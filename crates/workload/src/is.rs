//! IS — the Integer Sort kernel.
//!
//! Mirrors NPB IS: generate integer keys with a (roughly) Gaussian-shaped
//! distribution, rank them with a counting sort over several iterations
//! (each iteration perturbs two keys, as real IS does, to defeat
//! memoization), and verify that the final ranking is a valid sort. The
//! output carries the ranking checksum the golden comparison inspects.

use crate::kernel::{Corruption, Kernel, KernelOutput, NpbRandom};

/// The IS kernel configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Is {
    /// Number of keys.
    keys: usize,
    /// Key range: keys are in `[0, range)`.
    range: u64,
    /// Ranking iterations.
    iterations: usize,
    /// The deterministic initial key array (a pure function of `keys` and
    /// `range`): generated once at construction so repeated runs start
    /// from a memcpy instead of re-deriving a quarter-million uniforms.
    initial_keys: Vec<u64>,
}

impl Is {
    /// A miniature class-A-shaped instance (64 Ki keys over 2¹¹ buckets).
    pub fn class_a() -> Self {
        Is::new(1 << 16, 1 << 11, 10)
    }

    /// A tiny instance for tests.
    pub fn tiny() -> Self {
        Is::new(1 << 8, 1 << 6, 3)
    }

    /// Creates an instance with explicit size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(keys: usize, range: u64, iterations: usize) -> Self {
        assert!(
            keys > 0 && range > 0 && iterations > 0,
            "IS dimensions must be positive"
        );
        let mut rng = NpbRandom::new(77_617_777);
        // Sum of four uniforms ≈ NPB's key distribution shape.
        let initial_keys = (0..keys)
            .map(|_| {
                let sum: f64 = (0..4).map(|_| rng.next_f64()).sum::<f64>() / 4.0;
                ((sum * range as f64) as u64).min(range - 1)
            })
            .collect();
        Is {
            keys,
            range,
            iterations,
            initial_keys,
        }
    }

    fn generate_keys(&self) -> Vec<u64> {
        self.initial_keys.clone()
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let mut keys = self.generate_keys();
        let inject_at = corruption.map(|c| c.iteration(self.iterations));

        let mut counts = vec![0u64; self.range as usize];
        let mut partial_checksums = Vec::with_capacity(self.iterations);

        for it in 0..self.iterations {
            if inject_at == Some(it) {
                if let Some(c) = corruption {
                    c.apply_u64(&mut keys);
                    // Keys must stay in range after a flip — real IS would
                    // index out of bounds and crash; we clamp and let the
                    // ranking checksum catch the corruption instead, which
                    // keeps the SDC (rather than crash) path exercised.
                    for k in keys.iter_mut() {
                        if *k >= self.range {
                            *k %= self.range;
                        }
                    }
                }
            }
            // NPB IS perturbs two keys each iteration.
            let a = it % self.keys;
            let b = (it * 31 + 7) % self.keys;
            keys[a] = (keys[a] + it as u64) % self.range;
            keys[b] = (keys[b] + self.range / 2) % self.range;

            // Counting sort (ranking).
            for c in counts.iter_mut() {
                *c = 0;
            }
            for &k in &keys {
                counts[k as usize] += 1;
            }
            // Prefix sum gives the rank of the first key with each value.
            let mut acc = 0u64;
            for c in counts.iter_mut() {
                let v = *c;
                *c = acc;
                acc += v;
            }
            // Fold a checksum of a few ranks, like IS's partial verify.
            let probe = keys[(it * 131) % self.keys];
            partial_checksums.push(counts[probe as usize] as f64);
        }

        // Full verification pass: materialize the sorted permutation and
        // check order. A counting sort over the (bounded) key range yields
        // the identical ascending sequence a comparison sort would.
        for c in counts.iter_mut() {
            *c = 0;
        }
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let mut sorted = Vec::with_capacity(keys.len());
        for (value, &count) in counts.iter().enumerate() {
            sorted.extend(std::iter::repeat_n(value as u64, count as usize));
        }
        let is_sorted = sorted.windows(2).all(|w| w[0] <= w[1]);
        let key_sum: u64 = keys.iter().sum();

        let mut values = vec![if is_sorted { 1.0 } else { 0.0 }, key_sum as f64];
        values.extend(&partial_checksums);
        KernelOutput::new(values, sorted.into_iter().map(|k| k as f64))
    }
}

impl Kernel for Is {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let is = Is::class_a();
        assert_eq!(is.run(), is.run());
    }

    #[test]
    fn output_reports_valid_sort() {
        let out = Is::class_a().run();
        assert_eq!(out.values[0], 1.0, "sorted flag must be set");
    }

    #[test]
    fn keys_within_range() {
        let is = Is::tiny();
        for k in is.generate_keys() {
            assert!(k < 1 << 6);
        }
    }

    #[test]
    fn key_distribution_is_centered() {
        // Sum-of-uniforms keys cluster around range/2.
        let is = Is::class_a();
        let keys = is.generate_keys();
        let mean = keys.iter().sum::<u64>() as f64 / keys.len() as f64;
        let mid = (1 << 11) as f64 / 2.0;
        assert!((mean - mid).abs() < mid * 0.05, "mean = {mean}");
    }

    #[test]
    fn key_corruption_changes_output() {
        let is = Is::class_a();
        let golden = is.golden();
        let corrupted = is.run_corrupted(Corruption::new(0.5, 1234, 9));
        assert!(!corrupted.matches(&golden));
    }

    #[test]
    fn corruption_outcome_is_deterministic() {
        let is = Is::tiny();
        let a = is.run_corrupted(Corruption::new(0.3, 42, 3));
        let b = is.run_corrupted(Corruption::new(0.3, 42, 3));
        assert_eq!(a, b);
    }
}
