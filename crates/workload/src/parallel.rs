//! Multithreaded execution: the "8 threads on 8 cores" shape of the
//! paper's runs (§3.3 uses the multicore NPB versions on all 8 cores).
//!
//! Two facilities, both bit-deterministic regardless of scheduling:
//!
//! * [`run_suite_parallel`] — run several kernels concurrently, one per
//!   worker thread (the campaign's throughput shape: six class-A binaries
//!   cycling over the machine). Each kernel is pure, so the outputs are
//!   identical to serial execution by construction.
//! * [`EpParallel`] — an intra-kernel-parallel EP, partitioned the way
//!   real NPB EP partitions: each of `threads` workers draws its own
//!   deterministic substream and accumulates locally; the reduction is
//!   ordered by worker index. The result depends on the partition count
//!   (like real EP's per-rank streams) but never on thread scheduling.

use crossbeam::thread;

use crate::kernel::{Corruption, Kernel, KernelOutput, NpbRandom};

/// Runs each kernel on its own worker thread and returns the outputs in
/// input order.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_suite_parallel(kernels: &[Box<dyn Kernel + Sync>]) -> Vec<KernelOutput> {
    thread::scope(|scope| {
        let handles: Vec<_> = kernels
            .iter()
            .map(|k| scope.spawn(move |_| k.run()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel thread panicked"))
            .collect()
    })
    .expect("thread scope failed")
}

/// The thread-parallel EP kernel: `pairs` Gaussian-pair draws split across
/// `threads` deterministic substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpParallel {
    pairs: u32,
    seed: u64,
    threads: u32,
}

impl EpParallel {
    /// A class-A-shaped instance on 8 threads.
    pub fn class_a() -> Self {
        EpParallel {
            pairs: 1 << 15,
            seed: 271_828_183,
            threads: 8,
        }
    }

    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` or `threads` is zero.
    pub fn new(pairs: u32, seed: u64, threads: u32) -> Self {
        assert!(pairs > 0, "EP needs at least one pair");
        assert!(threads > 0, "need at least one thread");
        EpParallel {
            pairs,
            seed,
            threads,
        }
    }

    /// The worker count.
    pub const fn threads(&self) -> u32 {
        self.threads
    }

    /// One worker's share of the pairs.
    fn share(&self, worker: u32) -> u32 {
        let base = self.pairs / self.threads;
        let extra = u32::from(worker < self.pairs % self.threads);
        base + extra
    }

    /// One worker's partial accumulators `[sx, sy, q0..q9]`, optionally
    /// with a corruption applied to *that worker's* state mid-loop.
    fn worker_state(&self, worker: u32, corruption: Option<Corruption>) -> [f64; 12] {
        let mut state = [0.0f64; 12];
        let mut rng =
            NpbRandom::new(self.seed ^ (u64::from(worker) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = self.share(worker);
        let inject_at = corruption.map(|c| c.iteration(n as usize));
        for i in 0..n as usize {
            if inject_at == Some(i) {
                if let Some(c) = corruption {
                    c.apply(&mut state);
                }
            }
            let x = 2.0 * rng.next_f64() - 1.0;
            let y = 2.0 * rng.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let factor = ((-2.0 * t.ln()) / t).sqrt();
                let gx = x * factor;
                let gy = y * factor;
                state[0] += gx;
                state[1] += gy;
                let l = gx.abs().max(gy.abs()) as usize;
                if l < 10 {
                    state[2 + l] += 1.0;
                }
            }
        }
        state
    }

    /// Deterministic ordered reduction of per-worker partials.
    fn reduce(partials: Vec<[f64; 12]>) -> KernelOutput {
        let mut total = [0.0f64; 12];
        for partial in &partials {
            for (t, p) in total.iter_mut().zip(partial) {
                *t += p;
            }
        }
        KernelOutput::new(vec![total[0], total[1]], total)
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        // The corrupted worker, when injecting: the corruption word picks
        // it, so campaigns hit different cores.
        let victim = corruption.map(|c| (c.word as u32) % self.threads);
        let partials = thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let c = if victim == Some(w) { corruption } else { None };
                    scope.spawn(move |_| self.worker_state(w, c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("EP worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("thread scope failed");
        Self::reduce(partials)
    }
}

impl Kernel for EpParallel {
    fn name(&self) -> &'static str {
        "EP(mt)"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn suite_parallel_matches_serial() {
        let kernels: Vec<Box<dyn Kernel + Sync>> = vec![
            Box::new(crate::cg::Cg::tiny()),
            Box::new(crate::ep::Ep::tiny()),
            Box::new(crate::is::Is::tiny()),
            Box::new(crate::lu::Lu::tiny()),
        ];
        let parallel = run_suite_parallel(&kernels);
        for (k, out) in kernels.iter().zip(&parallel) {
            assert_eq!(out, &k.run(), "{}", k.name());
        }
    }

    #[test]
    fn six_benchmark_kernels_run_concurrently() {
        // The campaign shape: all six class-A kernels at once. (Benchmark
        // kernels are built fresh per thread because Box<dyn Kernel> from
        // `Benchmark::kernel()` is not Sync; concrete kernels are.)
        let kernels: Vec<Box<dyn Kernel + Sync>> = vec![
            Box::new(crate::cg::Cg::class_a()),
            Box::new(crate::ep::Ep::class_a()),
            Box::new(crate::ft::Ft::class_a()),
            Box::new(crate::is::Is::class_a()),
            Box::new(crate::lu::Lu::class_a()),
            Box::new(crate::mg::Mg::class_a()),
        ];
        let outputs = run_suite_parallel(&kernels);
        assert_eq!(outputs.len(), 6);
        // Cross-check one against the Benchmark registry's golden.
        assert_eq!(outputs[0], Benchmark::Cg.kernel().golden());
    }

    #[test]
    fn parallel_ep_is_schedule_independent() {
        let ep = EpParallel::class_a();
        let a = ep.run();
        let b = ep.run();
        let c = ep.run();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn partition_shares_cover_all_pairs() {
        let ep = EpParallel::new(1000, 7, 8);
        let total: u32 = (0..8).map(|w| ep.share(w)).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn thread_count_changes_streams_but_stays_deterministic() {
        let four = EpParallel::new(1 << 12, 7, 4);
        let eight = EpParallel::new(1 << 12, 7, 8);
        assert_ne!(four.run(), eight.run(), "per-rank substreams differ");
        assert_eq!(eight.run(), eight.run());
    }

    #[test]
    fn gaussian_statistics_hold_in_parallel() {
        let ep = EpParallel::class_a();
        let out = ep.run();
        let n = (1 << 15) as f64;
        assert!(out.values[0].abs() < 5.0 * n.sqrt());
        assert!(out.values[1].abs() < 5.0 * n.sqrt());
    }

    #[test]
    fn corruption_hits_exactly_one_worker() {
        let ep = EpParallel::class_a();
        let golden = ep.golden();
        let corrupted = ep.run_corrupted(Corruption::new(0.1, 3, 62));
        assert!(!corrupted.matches(&golden));
        // Deterministic under repetition despite threading.
        assert_eq!(corrupted, ep.run_corrupted(Corruption::new(0.1, 3, 62)));
    }
}
