//! Per-benchmark sensitivity profiles.
//!
//! The campaign model needs four measurable characteristics per benchmark:
//!
//! * **runtime** — class-A executions finish in < 5 s (§3.3 chose class A
//!   precisely so at most one radiation event lands per run);
//! * **detection factor** — what share of the raw cache-upset rate this
//!   benchmark's footprint/access pattern makes *observable* through the
//!   EDAC reporting. Upsets in lines the program never touches (or
//!   overwrites before reading) are never detected, which is why the paper
//!   measures ~1 upset/min while the raw §3.3 strike arithmetic predicts
//!   several (§3.5's explanation for the gap to the static-test SER
//!   of \[83\]). Calibrated per benchmark against Figure 5's 980 mV bars.
//! * **consume probability** — the chance that silently corrupted data is
//!   actually consumed into the output (the workload AVF component for
//!   SDCs);
//! * **power factor** — relative power draw (Fig. 9 plots the
//!   across-benchmark average; individual kernels differ by a few percent).

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use serscale_types::SimDuration;

use crate::cg::Cg;
use crate::ep::Ep;
use crate::ft::Ft;
use crate::is::Is;
use crate::kernel::{Kernel, KernelOutput};
use crate::lu::Lu;
use crate::mg::Mg;

/// The six NAS Parallel Benchmarks of the campaign (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Conjugate Gradient.
    Cg,
    /// Embarrassingly Parallel.
    Ep,
    /// 3-D Fast Fourier Transform.
    Ft,
    /// Integer Sort.
    Is,
    /// SSOR regular-sparse solver.
    Lu,
    /// Multigrid.
    Mg,
}

impl Benchmark {
    /// All benchmarks, in the order the campaign cycles through them.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Cg,
        Benchmark::Ep,
        Benchmark::Ft,
        Benchmark::Is,
        Benchmark::Lu,
        Benchmark::Mg,
    ];

    /// The benchmark's short name.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Cg => "CG",
            Benchmark::Ep => "EP",
            Benchmark::Ft => "FT",
            Benchmark::Is => "IS",
            Benchmark::Lu => "LU",
            Benchmark::Mg => "MG",
        }
    }

    /// Instantiates the class-A-shaped executable kernel.
    pub fn kernel(self) -> Box<dyn Kernel> {
        match self {
            Benchmark::Cg => Box::new(Cg::class_a()),
            Benchmark::Ep => Box::new(Ep::class_a()),
            Benchmark::Ft => Box::new(Ft::class_a()),
            Benchmark::Is => Box::new(Is::class_a()),
            Benchmark::Lu => Box::new(Lu::class_a()),
            Benchmark::Mg => Box::new(Mg::class_a()),
        }
    }

    /// The process-wide shared instance of this benchmark's class-A
    /// kernel.
    ///
    /// Kernels are pure (construction and execution are deterministic
    /// functions of the fixed class-A configuration), so every runner and
    /// pool worker can share one instance instead of reconstructing input
    /// arrays per worker per wave. Built lazily on first use.
    pub fn shared_kernel(self) -> &'static (dyn Kernel + Send + Sync) {
        static KERNELS: [OnceLock<Box<dyn Kernel + Send + Sync>>; 6] =
            [const { OnceLock::new() }; 6];
        KERNELS[self as usize]
            .get_or_init(|| match self {
                Benchmark::Cg => Box::new(Cg::class_a()),
                Benchmark::Ep => Box::new(Ep::class_a()),
                Benchmark::Ft => Box::new(Ft::class_a()),
                Benchmark::Is => Box::new(Is::class_a()),
                Benchmark::Lu => Box::new(Lu::class_a()),
                Benchmark::Mg => Box::new(Mg::class_a()),
            })
            .as_ref()
    }

    /// The process-wide shared golden (fault-free) output of this
    /// benchmark's class-A kernel.
    ///
    /// A golden run costs as much as the kernel itself (milliseconds), so
    /// recomputing it per runner — and per pool worker — dwarfs the trials
    /// it adjudicates. The output is a pure value; one copy serves every
    /// SDC comparison in the process.
    pub fn shared_golden(self) -> &'static KernelOutput {
        static GOLDENS: [OnceLock<KernelOutput>; 6] = [const { OnceLock::new() }; 6];
        GOLDENS[self as usize].get_or_init(|| self.shared_kernel().golden())
    }

    /// The benchmark's calibrated sensitivity profile.
    pub fn profile(self) -> WorkloadProfile {
        // detection_factor calibrated so that the across-benchmark pattern
        // matches Fig. 5's 980 mV bars (CG 0.87, LU 1.15, FT 1.11, EP 1.03,
        // MG 0.94, IS 1.03 upsets/min against a 1.01 total), normalized to
        // a mean of 1.0.
        match self {
            Benchmark::Cg => WorkloadProfile::new(self, 2.3, 0.851, 0.50, 0.97),
            Benchmark::Ep => WorkloadProfile::new(self, 4.6, 1.008, 0.25, 1.04),
            Benchmark::Ft => WorkloadProfile::new(self, 3.1, 1.086, 0.45, 1.01),
            Benchmark::Is => WorkloadProfile::new(self, 1.2, 1.008, 0.40, 0.96),
            Benchmark::Lu => WorkloadProfile::new(self, 4.4, 1.125, 0.45, 1.02),
            Benchmark::Mg => WorkloadProfile::new(self, 2.2, 0.920, 0.40, 1.00),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The measurable characteristics of one benchmark (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    benchmark: Benchmark,
    runtime: SimDuration,
    detection_factor: f64,
    consume_probability: f64,
    power_factor: f64,
}

impl WorkloadProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is not positive, the detection factor is not
    /// positive, the consume probability is outside `\[0, 1\]`, or the power
    /// factor is not positive.
    pub fn new(
        benchmark: Benchmark,
        runtime_secs: f64,
        detection_factor: f64,
        consume_probability: f64,
        power_factor: f64,
    ) -> Self {
        assert!(runtime_secs > 0.0, "runtime must be positive");
        assert!(detection_factor > 0.0, "detection factor must be positive");
        assert!(
            (0.0..=1.0).contains(&consume_probability),
            "consume probability must be in [0,1]"
        );
        assert!(power_factor > 0.0, "power factor must be positive");
        WorkloadProfile {
            benchmark,
            runtime: SimDuration::from_secs(runtime_secs),
            detection_factor,
            consume_probability,
            power_factor,
        }
    }

    /// Which benchmark this profile describes.
    pub const fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Class-A wall-clock runtime on the 8-core platform.
    pub const fn runtime(&self) -> SimDuration {
        self.runtime
    }

    /// The observability multiplier on raw cache-upset rates (mean 1.0
    /// across the suite).
    pub const fn detection_factor(&self) -> f64 {
        self.detection_factor
    }

    /// Probability that silently corrupted data reaches the output.
    pub const fn consume_probability(&self) -> f64 {
        self.consume_probability
    }

    /// Relative power draw (suite mean 1.0).
    pub const fn power_factor(&self) -> f64 {
        self.power_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_profiles_and_kernels() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert_eq!(p.benchmark(), b);
            let k = b.kernel();
            assert_eq!(k.name(), b.name());
        }
    }

    #[test]
    fn runtimes_under_five_seconds() {
        // §3.3: class A keeps runs below 5 s to avoid multi-event runs.
        for b in Benchmark::ALL {
            assert!(b.profile().runtime().as_secs() < 5.0, "{b}");
        }
    }

    #[test]
    fn detection_factors_average_to_one() {
        let mean: f64 = Benchmark::ALL
            .iter()
            .map(|b| b.profile().detection_factor())
            .sum::<f64>()
            / 6.0;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn detection_ordering_matches_figure5() {
        // Fig. 5 @ 980 mV: LU > FT > {EP, IS} > MG > CG.
        let f = |b: Benchmark| b.profile().detection_factor();
        assert!(f(Benchmark::Lu) > f(Benchmark::Ft));
        assert!(f(Benchmark::Ft) > f(Benchmark::Ep));
        assert!(f(Benchmark::Ep) > f(Benchmark::Mg));
        assert!(f(Benchmark::Mg) > f(Benchmark::Cg));
    }

    #[test]
    fn kernels_are_deterministic_through_the_trait() {
        for b in Benchmark::ALL {
            let k = b.kernel();
            assert_eq!(k.run(), k.golden(), "{b}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Benchmark::Cg.to_string(), "CG");
        assert_eq!(Benchmark::Mg.to_string(), "MG");
    }
}
