//! Micro-viruses: targeted voltage-stress kernels.
//!
//! The paper's Vmin methodology descends from Papadimitriou et al. \[51\]
//! ("Micro-Viruses for Fast System-Level Voltage Margins
//! Characterization"): tiny loops engineered to draw worst-case current
//! transients expose a *higher* (more conservative) safe Vmin than
//! ordinary benchmarks, and do it in seconds instead of hours.
//!
//! Each virus here is a real executable kernel (so the golden-comparison
//! machinery works on it unchanged) with a calibrated *droop* figure: the
//! extra supply sag its current signature induces at the critical paths,
//! which the characterization harness adds to the timing model's failure
//! point. The benchmarks' own (mild) droop is already folded into the
//! calibrated timing-failure model of `serscale-undervolt` — virus droops
//! are *relative to benchmark-grade activity*.

use serde::{Deserialize, Serialize};

use crate::kernel::{Corruption, Kernel, KernelOutput};

/// The micro-virus family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MicroVirus {
    /// Dense FMA pressure on every core: maximal dI/dt, worst droop.
    PowerVirus,
    /// Cache-thrashing pointer chase: memory-subsystem current spikes.
    CacheThrash,
    /// Data-dependent branch storm: front-end/speculation activity.
    BranchStorm,
}

impl MicroVirus {
    /// All viruses, worst droop first.
    pub const ALL: [MicroVirus; 3] = [
        MicroVirus::PowerVirus,
        MicroVirus::CacheThrash,
        MicroVirus::BranchStorm,
    ];

    /// The virus's short name.
    pub const fn name(self) -> &'static str {
        match self {
            MicroVirus::PowerVirus => "dI/dt",
            MicroVirus::CacheThrash => "thrash",
            MicroVirus::BranchStorm => "branch",
        }
    }

    /// The extra supply droop this virus induces at the critical paths,
    /// relative to benchmark-grade activity, in mV. Calibrated to \[51\]'s
    /// observation that virus-exposed Vmins sit ~10–15 mV above
    /// benchmark-exposed ones on the same chips.
    pub const fn droop_mv(self) -> f64 {
        match self {
            MicroVirus::PowerVirus => 12.0,
            MicroVirus::CacheThrash => 8.0,
            MicroVirus::BranchStorm => 5.0,
        }
    }

    /// Instantiates the executable kernel.
    pub fn kernel(self) -> Box<dyn Kernel> {
        match self {
            MicroVirus::PowerVirus => Box::new(PowerVirusKernel::default_size()),
            MicroVirus::CacheThrash => Box::new(CacheThrashKernel::default_size()),
            MicroVirus::BranchStorm => Box::new(BranchStormKernel::default_size()),
        }
    }

    /// The droops of all viruses, for the characterization harness.
    pub fn all_droops() -> Vec<f64> {
        Self::ALL.iter().map(|v| v.droop_mv()).collect()
    }
}

impl std::fmt::Display for MicroVirus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The dI/dt virus: alternating dense-FMA and idle phases — the classic
/// resonant current stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerVirusKernel {
    phases: usize,
    lanes: usize,
}

impl PowerVirusKernel {
    /// A millisecond-scale instance.
    pub fn default_size() -> Self {
        PowerVirusKernel {
            phases: 64,
            lanes: 256,
        }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let mut acc = vec![1.0f64; self.lanes];
        let inject_at = corruption.map(|c| c.iteration(self.phases));
        for phase in 0..self.phases {
            if inject_at == Some(phase) {
                if let Some(c) = corruption {
                    c.apply(&mut acc);
                }
            }
            let burst = phase % 2 == 0;
            for (i, a) in acc.iter_mut().enumerate() {
                if burst {
                    // Dense multiply-add chains (the high-current phase).
                    for _ in 0..8 {
                        *a = a.mul_add(1.000_000_1, 1.0e-9 * (i as f64 + 1.0));
                    }
                } else {
                    // Idle-ish phase: minimal work, maximal dI/dt swing.
                    *a += 0.0;
                }
            }
        }
        let sum: f64 = acc.iter().sum();
        KernelOutput::new(vec![sum], acc)
    }
}

impl Kernel for PowerVirusKernel {
    fn name(&self) -> &'static str {
        "dI/dt"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

/// The cache-thrash virus: a deterministic pointer chase over a buffer
/// larger than any single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheThrashKernel {
    slots: usize,
    hops: usize,
}

impl CacheThrashKernel {
    /// A buffer big enough to sweep through L1 and L2 footprints.
    pub fn default_size() -> Self {
        CacheThrashKernel {
            slots: 1 << 15,
            hops: 1 << 16,
        }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        // A full-cycle permutation: slot i points to (i*stride+1) mod n
        // with stride coprime to n.
        let n = self.slots;
        let mut next = vec![0u64; n];
        for (i, v) in next.iter_mut().enumerate() {
            *v = ((i * 40_503 + 1) % n) as u64;
        }
        let inject_at = corruption.map(|c| c.iteration(self.hops));
        let mut at = 0usize;
        let mut signature = 0u64;
        for hop in 0..self.hops {
            if inject_at == Some(hop) {
                if let Some(c) = corruption {
                    c.apply_u64(&mut next);
                    for v in next.iter_mut() {
                        *v %= n as u64; // keep the chase in bounds
                    }
                }
            }
            at = next[at] as usize;
            signature = signature
                .rotate_left(7)
                .wrapping_add(at as u64 ^ hop as u64);
        }
        KernelOutput::new(
            vec![signature as f64, at as f64],
            next.into_iter().map(|v| v as f64),
        )
    }
}

impl Kernel for CacheThrashKernel {
    fn name(&self) -> &'static str {
        "thrash"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

/// The branch-storm virus: data-dependent branching over a pseudo-random
/// array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStormKernel {
    decisions: usize,
}

impl BranchStormKernel {
    /// A millisecond-scale instance.
    pub fn default_size() -> Self {
        BranchStormKernel { decisions: 1 << 16 }
    }

    fn run_impl(&self, corruption: Option<Corruption>) -> KernelOutput {
        let mut state = vec![0xACE1u64; 4];
        let inject_at = corruption.map(|c| c.iteration(self.decisions));
        let mut taken = 0u64;
        let mut weave = 0i64;
        for i in 0..self.decisions {
            if inject_at == Some(i) {
                if let Some(c) = corruption {
                    c.apply_u64(&mut state);
                }
            }
            // Galois LFSR per lane; the branch pattern is data dependent
            // and unlearnable.
            let lane = i % 4;
            let lfsr = &mut state[lane];
            let bit = *lfsr & 1;
            *lfsr >>= 1;
            if bit == 1 {
                *lfsr ^= 0xB400_0000_0000_0000;
                taken += 1;
                weave += (*lfsr & 0xFF) as i64;
            } else if (*lfsr).is_multiple_of(3) {
                weave -= (*lfsr & 0x7F) as i64;
            } else {
                weave ^= 1;
            }
        }
        KernelOutput::new(
            vec![taken as f64, weave as f64],
            state.into_iter().map(|v| v as f64),
        )
    }
}

impl Kernel for BranchStormKernel {
    fn name(&self) -> &'static str {
        "branch"
    }

    fn run(&self) -> KernelOutput {
        self.run_impl(None)
    }

    fn run_corrupted(&self, corruption: Corruption) -> KernelOutput {
        self.run_impl(Some(corruption))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_viruses_deterministic() {
        for v in MicroVirus::ALL {
            let k = v.kernel();
            assert_eq!(k.run(), k.run(), "{v}");
            assert_eq!(k.name(), v.name());
        }
    }

    #[test]
    fn droops_ordered_worst_first() {
        let droops = MicroVirus::all_droops();
        assert_eq!(droops.len(), 3);
        for pair in droops.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(droops[0] > 10.0, "the dI/dt virus must dominate");
    }

    #[test]
    fn power_virus_accumulates() {
        let out = PowerVirusKernel::default_size().run();
        assert!(out.values[0] > 256.0, "sum = {}", out.values[0]);
        assert!(out.values[0].is_finite());
    }

    #[test]
    fn thrash_chase_stays_in_bounds_and_mixes() {
        let out = CacheThrashKernel::default_size().run();
        let final_slot = out.values[1];
        assert!(final_slot >= 0.0 && final_slot < (1 << 15) as f64);
        assert_ne!(out.values[0], 0.0, "signature must mix");
    }

    #[test]
    fn branch_storm_takes_roughly_half_the_branches() {
        let out = BranchStormKernel::default_size().run();
        let taken = out.values[0];
        let total = (1 << 16) as f64;
        assert!(
            (taken / total - 0.5).abs() < 0.05,
            "taken share = {}",
            taken / total
        );
    }

    #[test]
    fn viruses_are_corruptible() {
        for v in MicroVirus::ALL {
            let k = v.kernel();
            let golden = k.golden();
            let corrupted = k.run_corrupted(Corruption::new(0.2, 1, 40));
            // A flip either masks or corrupts; both must be deterministic.
            assert_eq!(
                corrupted,
                k.run_corrupted(Corruption::new(0.2, 1, 40)),
                "{v}"
            );
            let _ = corrupted.matches(&golden);
        }
    }
}
