//! Confidence intervals and the special functions behind them.
//!
//! The paper quotes all radiation-test error bars at a 95 % confidence level
//! (§3.5). For counts of rare events the appropriate interval is the exact
//! (Garwood) Poisson interval, built from chi-square quantiles; for failure
//! *proportions* (Figure 4's pfail, Figure 8's failure-class shares) the
//! Wilson score interval is used.

/// The inverse of the standard normal CDF (the probit function), via
/// Acklam's rational approximation (relative error < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit defined on (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The standard normal CDF via `erf`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The error function, via Abramowitz–Stegun 7.1.26 (|error| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The `p`-quantile of the chi-square distribution with `k` degrees of
/// freedom, via the Wilson–Hilferty cube approximation (adequate for the
/// k ≥ 2 cases arising from count data; error < 1 % there).
///
/// # Panics
///
/// Panics if `k` is zero or `p` is outside `(0, 1)`.
pub fn chi_square_quantile(p: f64, k: u64) -> f64 {
    assert!(k > 0, "chi-square needs at least one degree of freedom");
    assert!(p > 0.0 && p < 1.0, "quantile defined on (0,1)");
    let kf = k as f64;
    let z = inverse_normal_cdf(p);
    let term = 1.0 - 2.0 / (9.0 * kf) + z * (2.0 / (9.0 * kf)).sqrt();
    kf * term.powi(3).max(0.0)
}

/// The exact (Garwood) two-sided confidence interval for a Poisson mean
/// given an observed `count`, at confidence `level` (e.g. `0.95`).
///
/// Returns `(lower, upper)` bounds on the mean. For `count == 0` the lower
/// bound is exactly `0`.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)`.
///
/// ```
/// use serscale_stats::ci::poisson_ci;
///
/// let (lo, hi) = poisson_ci(100, 0.95);
/// // The familiar "100 events ⇒ roughly ±20%" radiation-test rule.
/// assert!(lo > 81.0 && lo < 82.5);
/// assert!(hi > 121.0 && hi < 122.5);
/// ```
pub fn poisson_ci(count: u64, level: f64) -> (f64, f64) {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    let alpha = 1.0 - level;
    let lower = if count == 0 {
        0.0
    } else {
        0.5 * chi_square_quantile(alpha / 2.0, 2 * count)
    };
    let upper = 0.5 * chi_square_quantile(1.0 - alpha / 2.0, 2 * count + 2);
    (lower, upper)
}

/// The Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at confidence `level`.
///
/// Well-behaved at 0 % and 100 % observed proportions, which Figure 4's
/// pfail curves hit at both ends of the voltage sweep.
///
/// # Panics
///
/// Panics if `trials` is zero, `successes > trials`, or `level` is outside
/// `(0, 1)`.
pub fn wilson_ci(successes: u64, trials: u64, level: f64) -> (f64, f64) {
    assert!(trials > 0, "proportion undefined with zero trials");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    let z = inverse_normal_cdf(1.0 - (1.0 - level) / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Whether an observed Poisson `count` is statistically consistent with an
/// `expected` mean: true iff `expected` lies inside the Garwood interval of
/// the count at confidence `level`.
///
/// This is the workhorse of the seed-robust test suite: instead of pinning
/// a point value under one seed, a test pools counts over several seeds and
/// asks whether the model's expectation survives the pooled interval.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)` or `expected` is negative or
/// non-finite.
///
/// ```
/// use serscale_stats::ci::count_consistent;
///
/// // 100 observed events are consistent with a mean of 110 (within the
/// // ±20% band of the "100 events" rule) but not with a mean of 200.
/// assert!(count_consistent(100, 110.0, 0.95));
/// assert!(!count_consistent(100, 200.0, 0.95));
/// ```
pub fn count_consistent(count: u64, expected: f64, level: f64) -> bool {
    count_consistent_with_tolerance(count, expected, level, 0.0)
}

/// [`count_consistent`] with an additional *model tolerance*: accepts when
/// the Garwood interval of `count` intersects the band
/// `expected × [1 − rel_tol, 1 + rel_tol]`.
///
/// The confidence interval absorbs sampling noise; `rel_tol` absorbs the
/// calibration slack between the simulator and the paper's measured values
/// (a few percent — see `TESTING.md` for the convention). With
/// `rel_tol = 0` this degenerates to the pure CI check.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)`, `expected` is negative or
/// non-finite, or `rel_tol` is negative or non-finite.
pub fn count_consistent_with_tolerance(
    count: u64,
    expected: f64,
    level: f64,
    rel_tol: f64,
) -> bool {
    assert!(
        expected.is_finite() && expected >= 0.0,
        "expected mean must be finite and non-negative, got {expected}"
    );
    assert!(
        rel_tol.is_finite() && rel_tol >= 0.0,
        "relative tolerance must be finite and non-negative, got {rel_tol}"
    );
    let (lo, hi) = poisson_ci(count, level);
    let band_lo = expected * (1.0 - rel_tol);
    let band_hi = expected * (1.0 + rel_tol);
    lo <= band_hi && band_lo <= hi
}

/// The relative half-width of a Poisson 95 % interval, used to decide when a
/// session has accumulated statistically significant counts (the paper's
/// "100 events" rule gives about ±20 %).
pub fn poisson_relative_uncertainty(count: u64) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let (lo, hi) = poisson_ci(count, 0.95);
    (hi - lo) / (2.0 * count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.841_344_7) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn probit_inverts_cdf() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn chi_square_quantiles_reasonable() {
        // chi2_{0.95, 10} ≈ 18.307
        assert!((chi_square_quantile(0.95, 10) - 18.307).abs() < 0.2);
        // chi2_{0.025, 2} ≈ 0.0506 (Wilson–Hilferty is weakest here; allow slack)
        assert!((chi_square_quantile(0.025, 2) - 0.0506).abs() < 0.06);
        // chi2_{0.975, 200} ≈ 241.06
        assert!((chi_square_quantile(0.975, 200) - 241.06).abs() < 0.5);
    }

    #[test]
    fn poisson_ci_brackets_count() {
        for &n in &[1u64, 5, 13, 95, 141, 1669] {
            let (lo, hi) = poisson_ci(n, 0.95);
            assert!(lo < n as f64 && (n as f64) < hi, "n={n}: ({lo}, {hi})");
        }
    }

    #[test]
    fn poisson_ci_zero_count() {
        let (lo, hi) = poisson_ci(0, 0.95);
        assert_eq!(lo, 0.0);
        // Exact upper bound for 0 events at 95% two-sided is 3.689.
        assert!((hi - 3.689).abs() < 0.3, "hi = {hi}");
    }

    /// Garwood at k=0: the lower bound is *exactly* the integer zero —
    /// not a denormal, not a negative chi-square artifact, not NaN — at
    /// every confidence level. Bit-level regression for the convergence
    /// plane, whose streamed intervals must match these batch values.
    #[test]
    fn garwood_zero_count_lower_bound_is_integer_exact() {
        for &level in &[0.5, 0.68, 0.90, 0.95, 0.99, 0.999] {
            let (lo, hi) = poisson_ci(0, level);
            assert_eq!(lo.to_bits(), 0.0f64.to_bits(), "level {level}: lo = {lo:e}");
            assert!(lo.is_sign_positive(), "level {level}: lo is -0.0");
            assert!(hi.is_finite() && hi > 0.0, "level {level}: hi = {hi}");
            assert!(!lo.is_nan() && !hi.is_nan(), "level {level}");
        }
    }

    /// Garwood at k=1, both tails: finite lower bound that is never
    /// negative (the chi-square edge the Wilson–Hilferty clamp
    /// protects — at extreme levels the clamp floors it to exactly 0),
    /// finite upper bound, correctly ordered around the count.
    #[test]
    fn garwood_one_count_both_tails_finite_and_ordered() {
        for &level in &[0.5, 0.68, 0.90, 0.95, 0.99, 0.999] {
            let (lo, hi) = poisson_ci(1, level);
            assert!(lo.is_finite() && lo >= 0.0, "level {level}: lo = {lo}");
            assert!(hi.is_finite() && hi > 1.0, "level {level}: hi = {hi}");
            assert!(lo < 1.0 && 1.0 < hi, "level {level}: ({lo}, {hi})");
        }
        // At moderate levels the lower tail is strictly positive.
        for &level in &[0.5, 0.68, 0.90, 0.95] {
            let (lo, _) = poisson_ci(1, level);
            assert!(lo > 0.0, "level {level}: lo = {lo}");
        }
        // The 95% values are pinned: exact Garwood gives (0.0253, 5.572);
        // Wilson–Hilferty lands nearby and must keep doing so.
        let (lo, hi) = poisson_ci(1, 0.95);
        assert!((lo - 0.0253).abs() < 0.02, "lo = {lo}");
        assert!((hi - 5.572).abs() < 0.3, "hi = {hi}");
    }

    #[test]
    fn poisson_ci_narrows_with_count() {
        let r10 = poisson_relative_uncertainty(10);
        let r100 = poisson_relative_uncertainty(100);
        let r1000 = poisson_relative_uncertainty(1000);
        assert!(r10 > r100 && r100 > r1000);
        // ~100 events gives roughly ±20%, the paper's significance rule.
        assert!((r100 - 0.20).abs() < 0.02, "r100 = {r100}");
        assert!(poisson_relative_uncertainty(0).is_infinite());
    }

    #[test]
    fn wilson_ci_basic() {
        let (lo, hi) = wilson_ci(50, 100, 0.95);
        assert!(lo > 0.40 && lo < 0.45);
        assert!(hi > 0.55 && hi < 0.60);
    }

    #[test]
    fn wilson_ci_extremes_stay_in_unit_interval() {
        let (lo, hi) = wilson_ci(0, 20, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25);
        let (lo, hi) = wilson_ci(20, 20, 0.95);
        assert!(lo > 0.75 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for succ in 0..=30u64 {
            let (lo, hi) = wilson_ci(succ, 30, 0.95);
            let p = succ as f64 / 30.0;
            assert!(lo <= p + 1e-12 && p - 1e-12 <= hi, "succ={succ}");
        }
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson_ci(0, 0, 0.95);
    }

    #[test]
    fn count_consistency_basics() {
        // The count itself is always consistent with its own mean.
        for n in [1u64, 10, 100, 1000] {
            assert!(count_consistent(n, n as f64, 0.95), "n = {n}");
        }
        // Zero counts are consistent with small means only.
        assert!(count_consistent(0, 0.0, 0.95));
        assert!(count_consistent(0, 2.0, 0.95));
        assert!(!count_consistent(0, 10.0, 0.95));
        // Large counts reject a 2x-off mean.
        assert!(!count_consistent(400, 800.0, 0.95));
    }

    #[test]
    fn tolerance_widens_the_acceptance_band() {
        // 100 observed vs an expectation of 130: rejected by the bare CI,
        // accepted once a 10% model tolerance is granted.
        assert!(!count_consistent(100, 130.0, 0.95));
        assert!(count_consistent_with_tolerance(100, 130.0, 0.95, 0.10));
        // A grossly wrong expectation stays rejected at any sane tolerance.
        assert!(!count_consistent_with_tolerance(100, 300.0, 0.95, 0.10));
    }

    #[test]
    fn zero_tolerance_matches_plain_consistency() {
        for (n, e) in [(50u64, 60.0), (50, 90.0), (200, 195.0)] {
            assert_eq!(
                count_consistent(n, e, 0.95),
                count_consistent_with_tolerance(n, e, 0.95, 0.0),
                "n={n} e={e}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_expectation_rejected() {
        let _ = count_consistent(10, -1.0, 0.95);
    }
}
