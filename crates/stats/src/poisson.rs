//! Poisson arrival statistics.
//!
//! Under constant flux, neutron-induced upsets arrive as a Poisson process:
//! the count in a window of fluence `Φ` over a device of cross-section `σ` is
//! `Poisson(σ·Φ)`, and inter-arrival times are exponential. Both samplers
//! live here, together with the PMF/CDF used by tests and by the dosimeter
//! calibration.

use crate::rng::SimRng;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for small means and a
/// continuity-corrected normal approximation for large ones (the crossover
/// at 30 keeps the approximation error far below the sampling noise of any
/// realistic campaign).
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
///
/// ```
/// use serscale_stats::{poisson::sample_poisson, SimRng};
///
/// let mut rng = SimRng::seed_from(1);
/// let n = sample_poisson(&mut rng, 4.2);
/// assert!(n < 100);
/// ```
pub fn sample_poisson(rng: &mut SimRng, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be finite and non-negative"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        // Knuth: count multiplications until the product drops below e^-λ.
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
            // Guard against pathological uniform() == 1.0 streaks.
            if k > 1_000_000 {
                return k;
            }
        }
    }
    // Normal approximation N(λ, λ) with continuity correction.
    let draw = rng.normal(mean, mean.sqrt());
    if draw < 0.0 {
        0
    } else {
        (draw + 0.5).floor() as u64
    }
}

/// Draws an exponential inter-arrival time for a process with the given
/// `rate` (events per unit time). Returns `f64::INFINITY` when the rate is
/// zero (the next event never arrives).
///
/// # Panics
///
/// Panics if `rate` is negative or non-finite.
pub fn sample_exponential(rng: &mut SimRng, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate >= 0.0,
        "rate must be finite and non-negative"
    );
    if rate == 0.0 {
        return f64::INFINITY;
    }
    // u in (0, 1] so ln never sees zero.
    let u = 1.0 - rng.uniform();
    -u.ln() / rate
}

/// The Poisson probability mass function `P(X = k | λ)`.
///
/// Computed in log space for numerical robustness at large `k`/`λ`.
pub fn poisson_pmf(k: u64, lambda: f64) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be finite and non-negative"
    );
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    let kf = k as f64;
    (kf * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// The Poisson cumulative distribution `P(X ≤ k | λ)`.
pub fn poisson_cdf(k: u64, lambda: f64) -> f64 {
    (0..=k)
        .map(|i| poisson_pmf(i, lambda))
        .sum::<f64>()
        .min(1.0)
}

/// `ln(k!)` via Stirling's series for large `k` and a small lookup for
/// small `k`.
pub fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 11] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
    ];
    if k <= 10 {
        return TABLE[k as usize];
    }
    let x = k as f64 + 1.0;
    // Stirling series for ln Γ(x); accurate to ~1e-10 for x ≥ 11.
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x - 0.5) * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI).ln()
        + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factorial(k: u64) -> f64 {
        (1..=k).map(|i| i as f64).product()
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        for k in 0..=20 {
            let direct = factorial(k).ln();
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-9,
                "k={k}: {} vs {direct}",
                ln_factorial(k)
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.5, 3.0, 12.0, 45.0] {
            let total: f64 = (0..400).map(|k| poisson_pmf(k, lambda)).sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda={lambda}: sum={total}");
        }
    }

    #[test]
    fn pmf_degenerate_at_zero_lambda() {
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
        assert_eq!(sample_poisson(&mut SimRng::seed_from(1), 0.0), 0);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = 0.0;
        for k in 0..50 {
            let c = poisson_cdf(k, 10.0);
            assert!(c >= prev);
            prev = c;
        }
        assert!((poisson_cdf(49, 10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_mean_and_variance_small_lambda() {
        let mut rng = SimRng::seed_from(11);
        let lambda = 4.0;
        let n = 50_000;
        let draws: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((mean - lambda).abs() < 0.05, "mean = {mean}");
        assert!((var - lambda).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn sampler_mean_large_lambda() {
        let mut rng = SimRng::seed_from(12);
        let lambda = 250.0;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| sample_poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::seed_from(13);
        let rate = 0.25;
        let n = 50_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut rng = SimRng::seed_from(14);
        assert!(sample_exponential(&mut rng, 0.0).is_infinite());
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::seed_from(15);
        for _ in 0..10_000 {
            assert!(sample_exponential(&mut rng, 3.0) > 0.0);
        }
    }
}
