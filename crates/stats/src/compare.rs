//! Two-sample comparison tests for count data.
//!
//! The paper plots 95 % error bars but never asks the formal question "is
//! the 920 mV rate *significantly* higher than the 980 mV rate?". With a
//! simulator the question is cheap to answer properly, and any downstream
//! user comparing their own sessions needs it. The workhorse is the
//! classic conditional (binomial) test for the ratio of two Poisson
//! rates: given `n₁` events in exposure `t₁` and `n₂` in `t₂`, under
//! `H₀: λ₁ = λ₂` the count `n₁` is `Binomial(n₁+n₂, t₁/(t₁+t₂))`.

use serde::{Deserialize, Serialize};

use serscale_types::SimDuration;

use crate::ci::normal_cdf;

/// The outcome of a two-sample Poisson rate comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateComparison {
    /// The observed rate ratio `(n₁/t₁) / (n₂/t₂)`.
    pub rate_ratio: f64,
    /// Two-sided p-value under `H₀: equal rates`.
    pub p_value: f64,
}

impl RateComparison {
    /// Whether the difference is significant at the paper's 95 % level.
    pub fn significant_at_95(&self) -> bool {
        self.p_value < 0.05
    }
}

/// The conditional test for two Poisson rates (see module docs), with a
/// continuity-corrected normal approximation to the binomial — accurate to
/// a few 10⁻³ in p for the count regimes of beam sessions (tens to
/// thousands of events).
///
/// # Panics
///
/// Panics if either exposure is zero or both counts are zero (the ratio
/// and the test are undefined).
pub fn poisson_rate_test(n1: u64, t1: SimDuration, n2: u64, t2: SimDuration) -> RateComparison {
    assert!(!t1.is_zero() && !t2.is_zero(), "exposures must be positive");
    assert!(n1 + n2 > 0, "no events at all: nothing to compare");
    let r1 = n1 as f64 / t1.as_secs();
    let r2 = n2 as f64 / t2.as_secs();
    let rate_ratio = if r2 > 0.0 { r1 / r2 } else { f64::INFINITY };

    let n = (n1 + n2) as f64;
    let p0 = t1.as_secs() / (t1.as_secs() + t2.as_secs());
    let mean = n * p0;
    let sd = (n * p0 * (1.0 - p0)).sqrt();
    if sd == 0.0 {
        // Degenerate exposure split; no discriminating power.
        return RateComparison {
            rate_ratio,
            p_value: 1.0,
        };
    }
    // Two-sided, continuity corrected.
    let x = n1 as f64;
    let z = (x - mean).abs() - 0.5;
    let z = z.max(0.0) / sd;
    let p_value = (2.0 * (1.0 - normal_cdf(z))).clamp(0.0, 1.0);
    RateComparison {
        rate_ratio,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: f64) -> SimDuration {
        SimDuration::from_minutes(m)
    }

    #[test]
    fn equal_rates_are_not_significant() {
        let c = poisson_rate_test(100, mins(100.0), 100, mins(100.0));
        assert!((c.rate_ratio - 1.0).abs() < 1e-12);
        assert!(c.p_value > 0.9, "p = {}", c.p_value);
        assert!(!c.significant_at_95());
    }

    #[test]
    fn clearly_different_rates_are_significant() {
        let c = poisson_rate_test(300, mins(100.0), 100, mins(100.0));
        assert!((c.rate_ratio - 3.0).abs() < 1e-12);
        assert!(c.p_value < 1e-6, "p = {}", c.p_value);
        assert!(c.significant_at_95());
    }

    #[test]
    fn exposure_normalization_matters() {
        // Same counts, 3× exposure difference: rates differ 3×.
        let c = poisson_rate_test(100, mins(100.0), 100, mins(300.0));
        assert!((c.rate_ratio - 3.0).abs() < 1e-12);
        assert!(c.significant_at_95());
    }

    #[test]
    fn table2_upset_counts_sessions_1_vs_4_significant() {
        // 1669 upsets / 1651 min vs 195 / 165 min: 1.011 vs 1.182 per
        // minute. Are the paper's endpoints statistically distinct? Yes.
        let c = poisson_rate_test(1669, mins(1651.0), 195, mins(165.0));
        assert!((c.rate_ratio - 1.011 / 1.182).abs() < 0.01);
        assert!(c.significant_at_95(), "p = {}", c.p_value);
    }

    #[test]
    fn table2_sessions_1_vs_2_borderline() {
        // 1.011 vs 1.077 per minute with ~1700 counts each: a ~6.5%
        // difference at this exposure is right at the detection edge.
        let c = poisson_rate_test(1669, mins(1651.0), 1743, mins(1618.0));
        assert!(c.p_value < 0.15, "p = {}", c.p_value);
        assert!(c.p_value > 0.001, "p = {}", c.p_value);
    }

    #[test]
    fn small_counts_are_inconclusive() {
        // Session 4's 13 error events cannot distinguish a 1.4× ratio.
        let c = poisson_rate_test(13, mins(165.0), 95, mins(1651.0));
        assert!(!c.significant_at_95(), "p = {}", c.p_value);
    }

    #[test]
    fn one_sided_zero_count_works() {
        let c = poisson_rate_test(0, mins(100.0), 20, mins(100.0));
        assert_eq!(c.rate_ratio, 0.0);
        assert!(c.significant_at_95());
        let c = poisson_rate_test(20, mins(100.0), 0, mins(100.0));
        assert!(c.rate_ratio.is_infinite());
    }

    #[test]
    fn symmetry() {
        let a = poisson_rate_test(150, mins(100.0), 100, mins(100.0));
        let b = poisson_rate_test(100, mins(100.0), 150, mins(100.0));
        assert!((a.p_value - b.p_value).abs() < 1e-12);
        assert!((a.rate_ratio * b.rate_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing to compare")]
    fn all_zero_rejected() {
        let _ = poisson_rate_test(0, mins(1.0), 0, mins(1.0));
    }
}
