//! Deterministic, forkable randomness.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`].
//! A campaign seeded with the same `u64` replays bit-for-bit, which is what
//! makes Table 2 / Figures 4–13 regenerable artifacts rather than
//! one-off samples. Components that run "concurrently" in simulated time
//! (e.g. the beam scheduler and the weak-cell lottery) each receive an
//! independent [`fork`](SimRng::fork) so that adding draws to one cannot
//! perturb the other.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number source.
///
/// Wraps a fast non-cryptographic generator behind a stable facade; the
/// concrete algorithm is an implementation detail (C-NEWTYPE-HIDE).
///
/// ```
/// use rand::RngCore;
/// use serscale_stats::SimRng;
///
/// let mut rng = SimRng::seed_from(42);
/// let x = rng.uniform();
/// assert!((0.0..1.0).contains(&x));
///
/// // Forked streams are independent of later draws on the parent.
/// let mut fork_a = SimRng::seed_from(42).fork("beam");
/// let mut parent = SimRng::seed_from(42);
/// parent.uniform();
/// let mut fork_b = parent.fork("beam");
/// assert_eq!(fork_a.next_u64(), fork_b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a campaign seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator (or its fork ancestry root) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream named by `label`.
    ///
    /// The child's seed depends only on this generator's *seed* and the
    /// label — not on how many values have been drawn — so components can be
    /// wired up in any order without perturbing each other's streams.
    pub fn fork(&self, label: &str) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label));
        SimRng::seed_from(child_seed)
    }

    /// Derives an independent child stream from a numeric index, for
    /// per-core / per-array / per-run streams.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label) ^ splitmix(index));
        SimRng::seed_from(child_seed)
    }

    /// Derives an independent child stream from a counter path — the
    /// multi-level generalization of [`fork_indexed`](Self::fork_indexed).
    ///
    /// The derivation is *counter-based*: the child's seed is a pure
    /// function of this generator's seed, the domain label and the path
    /// components — never of how many values have been drawn anywhere.
    /// That is what lets a parallel executor hand trial `t` of session `s`
    /// the stream `root.stream("trial", &[s, t])` from any worker thread,
    /// in any order, and still reproduce the sequential run bit for bit.
    ///
    /// Distinct paths yield distinct streams: the components are folded in
    /// order through the SplitMix64 finalizer, so `[a, b]` ≠ `[b, a]` and
    /// `[a]` ≠ `[a, 0]` (each component application also mixes in the
    /// position).
    ///
    /// ```
    /// use serscale_stats::SimRng;
    ///
    /// let root = SimRng::seed_from(7);
    /// let a = root.stream("trial", &[3, 11]).take_u64s(2);
    /// // Same path later, elsewhere, after any number of draws: same stream.
    /// let mut busy = SimRng::seed_from(7);
    /// busy.uniform();
    /// assert_eq!(a, busy.stream("trial", &[3, 11]).take_u64s(2));
    /// assert_ne!(a, root.stream("trial", &[11, 3]).take_u64s(2));
    /// ```
    pub fn stream(&self, domain: &str, path: &[u64]) -> SimRng {
        let mut h = splitmix(self.seed ^ fnv1a(domain));
        for (position, component) in path.iter().enumerate() {
            // Mix position and value separately so that permutations and
            // prefix extensions land on different states.
            h = splitmix(h ^ splitmix(*component).rotate_left(17) ^ position as u64);
        }
        SimRng::seed_from(h)
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Draws a standard normal deviate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.uniform();
        let v = self.uniform();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    /// Draws a normal deviate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Draws one raw 64-bit value, advancing the stream — the natural way
    /// to mint a child seed when the parent *should* advance (contrast
    /// [`fork`](Self::fork)/[`stream`](Self::stream), which do not).
    pub fn next_seed(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Collects `n` raw 64-bit draws (mostly useful in tests).
    pub fn take_u64s(mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.inner.next_u64()).collect()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash of a label, used for fork-stream derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer, used to decorrelate derived seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        assert_eq!(
            SimRng::seed_from(1).take_u64s(16),
            SimRng::seed_from(1).take_u64s(16)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            SimRng::seed_from(1).take_u64s(8),
            SimRng::seed_from(2).take_u64s(8)
        );
    }

    #[test]
    fn forks_are_independent_of_draw_position() {
        let a = SimRng::seed_from(99).fork("beam").take_u64s(4);
        let mut parent = SimRng::seed_from(99);
        for _ in 0..100 {
            parent.uniform();
        }
        let b = parent.fork("beam").take_u64s(4);
        assert_eq!(a, b);
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = SimRng::seed_from(5);
        assert_ne!(
            root.fork("beam").take_u64s(4),
            root.fork("cells").take_u64s(4)
        );
        assert_ne!(
            root.fork_indexed("core", 0).take_u64s(4),
            root.fork_indexed("core", 1).take_u64s(4)
        );
    }

    #[test]
    fn streams_are_position_independent() {
        let a = SimRng::seed_from(12).stream("trial", &[2, 40]).take_u64s(4);
        let mut parent = SimRng::seed_from(12);
        for _ in 0..57 {
            parent.uniform();
        }
        assert_eq!(a, parent.stream("trial", &[2, 40]).take_u64s(4));
    }

    #[test]
    fn streams_distinguish_paths() {
        let root = SimRng::seed_from(13);
        let take = |path: &[u64]| root.stream("trial", path).take_u64s(4);
        assert_ne!(take(&[1, 2]), take(&[2, 1]), "order must matter");
        assert_ne!(take(&[1]), take(&[1, 0]), "length must matter");
        assert_ne!(take(&[]), take(&[0]), "empty path is its own stream");
        assert_ne!(
            root.stream("trial", &[5]).take_u64s(4),
            root.stream("vmin", &[5]).take_u64s(4),
            "domain must matter"
        );
    }

    #[test]
    fn stream_collisions_absent_over_a_grid() {
        // The parallel executor derives one stream per (session, trial);
        // colliding streams would silently correlate trials. Scan a grid
        // far larger than any real campaign wave.
        let root = SimRng::seed_from(0x005e_5510_2023);
        let mut seen = std::collections::HashSet::new();
        for session in 0..8u64 {
            for trial in 0..4096u64 {
                let first = root.stream("trial", &[session, trial]).next_u64();
                assert!(seen.insert(first), "collision at ({session}, {trial})");
            }
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::seed_from(8);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd = {}", var.sqrt());
    }

    #[test]
    fn below_range() {
        let mut rng = SimRng::seed_from(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
