//! Running summary statistics (Welford accumulation).

use serde::{Deserialize, Serialize};

/// A numerically stable running mean/variance accumulator.
///
/// Used for averaging per-benchmark rates, power samples, and the repeated
/// undervolting trials of the Vmin characterization.
///
/// ```
/// use serscale_stats::summary::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// The number of observations.
    pub const fn count(&self) -> u64 {
        self.n
    }

    /// True when no observations have been added.
    pub const fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn mean(&self) -> f64 {
        assert!(self.n > 0, "mean of empty summary");
        self.mean
    }

    /// The sample variance (n − 1 denominator).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations have been added.
    pub fn sample_variance(&self) -> f64 {
        assert!(
            self.n > 1,
            "sample variance needs at least two observations"
        );
        self.m2 / (self.n - 1) as f64
    }

    /// The sample standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations have been added.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The population standard deviation (n denominator).
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn population_std_dev(&self) -> f64 {
        assert!(self.n > 0, "std dev of empty summary");
        (self.m2 / self.n as f64).sqrt()
    }

    /// The standard error of the mean.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two observations have been added.
    pub fn std_error(&self) -> f64 {
        self.sample_std_dev() / (self.n as f64).sqrt()
    }

    /// The smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "min of empty summary");
        self.min
    }

    /// The largest observation.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "max of empty summary");
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert!((s.min() - 1.0).abs() < 1e-12);
        assert!((s.max() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Summary = [10.0, 20.0].into_iter().collect();
        a.merge(&b);
        let direct: Summary = [1.0, 2.0, 3.0, 10.0, 20.0].into_iter().collect();
        assert!((a.mean() - direct.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - direct.sample_variance()).abs() < 1e-9);
        assert_eq!(a.count(), direct.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 1.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let small: Summary = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Summary = (0..1000).map(|i| (i % 3) as f64).collect();
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        let _ = Summary::new().mean();
    }
}
