//! Event-rate and cross-section estimates with 95 % error bars — the
//! quantities every figure in the paper plots.

use serde::{Deserialize, Serialize};

use serscale_types::{CrossSection, Fit, Fluence, Flux, SimDuration};

use crate::ci::poisson_ci;

/// The confidence level all serscale estimates are quoted at, matching the
/// paper (§3.5).
pub const CONFIDENCE_LEVEL: f64 = 0.95;

/// An event rate estimated from a Poisson count over an exposure time,
/// with an exact 95 % confidence interval.
///
/// ```
/// use serscale_stats::RateEstimate;
/// use serscale_types::SimDuration;
///
/// // Session 3 of Table 2: 141 SDC/crash events over 453 minutes.
/// let est = RateEstimate::from_count(141, SimDuration::from_minutes(453.0));
/// assert!((est.per_minute() - 0.311).abs() < 1e-3);
/// assert!(est.lower_per_minute() < est.per_minute());
/// assert!(est.upper_per_minute() > est.per_minute());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEstimate {
    count: u64,
    exposure: SimDuration,
    ci_lower_count: f64,
    ci_upper_count: f64,
}

impl RateEstimate {
    /// Builds an estimate from an observed event count and exposure time.
    ///
    /// # Panics
    ///
    /// Panics if `exposure` is zero.
    pub fn from_count(count: u64, exposure: SimDuration) -> Self {
        assert!(!exposure.is_zero(), "rate undefined over zero exposure");
        let (lo, hi) = poisson_ci(count, CONFIDENCE_LEVEL);
        RateEstimate {
            count,
            exposure,
            ci_lower_count: lo,
            ci_upper_count: hi,
        }
    }

    /// The observed event count.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// The exposure time.
    pub const fn exposure(&self) -> SimDuration {
        self.exposure
    }

    /// The point estimate in events per minute (the unit of Figures 5–7).
    pub fn per_minute(&self) -> f64 {
        self.count as f64 / self.exposure.as_minutes()
    }

    /// The point estimate in events per second.
    pub fn per_second(&self) -> f64 {
        self.count as f64 / self.exposure.as_secs()
    }

    /// The 95 % lower bound in events per minute.
    pub fn lower_per_minute(&self) -> f64 {
        self.ci_lower_count / self.exposure.as_minutes()
    }

    /// The 95 % upper bound in events per minute.
    pub fn upper_per_minute(&self) -> f64 {
        self.ci_upper_count / self.exposure.as_minutes()
    }

    /// The relative half-width of the interval — a statistical-significance
    /// figure of merit (≈ 0.2 at the paper's 100-event rule).
    pub fn relative_uncertainty(&self) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            (self.ci_upper_count - self.ci_lower_count) / (2.0 * self.count as f64)
        }
    }
}

/// A dynamic cross-section estimated from an event count over a fluence
/// (Eq. 1), carrying its 95 % interval, convertible to a FIT estimate
/// (Eq. 2).
///
/// ```
/// use serscale_stats::CrossSectionEstimate;
/// use serscale_types::{Fluence, NYC_SEA_LEVEL_FLUX};
///
/// // 130 SDCs over the 920 mV session's 4.08e10 n/cm².
/// let est = CrossSectionEstimate::from_events(130, Fluence::per_cm2(4.08e10));
/// let fit = est.fit_at(NYC_SEA_LEVEL_FLUX);
/// assert!((fit.point.get() - 41.4).abs() < 0.5); // Fig. 11's 41.43 SDC FIT
/// assert!(fit.lower.get() < fit.point.get() && fit.point.get() < fit.upper.get());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossSectionEstimate {
    events: u64,
    fluence: Fluence,
    point: CrossSection,
    lower: CrossSection,
    upper: CrossSection,
}

impl CrossSectionEstimate {
    /// Builds an estimate from an observed event count and accumulated
    /// fluence.
    ///
    /// # Panics
    ///
    /// Panics if `fluence` is zero.
    pub fn from_events(events: u64, fluence: Fluence) -> Self {
        let (lo, hi) = poisson_ci(events, CONFIDENCE_LEVEL);
        let per = |c: f64| CrossSection::cm2(c / fluence.as_per_cm2());
        CrossSectionEstimate {
            events,
            fluence,
            point: CrossSection::from_events(events as f64, fluence),
            lower: per(lo),
            upper: per(hi),
        }
    }

    /// The observed event count.
    pub const fn events(&self) -> u64 {
        self.events
    }

    /// The fluence over which the events accumulated.
    pub const fn fluence(&self) -> Fluence {
        self.fluence
    }

    /// The point estimate.
    pub const fn point(&self) -> CrossSection {
        self.point
    }

    /// The 95 % lower bound.
    pub const fn lower(&self) -> CrossSection {
        self.lower
    }

    /// The 95 % upper bound.
    pub const fn upper(&self) -> CrossSection {
        self.upper
    }

    /// Converts the estimate to a FIT rate in the given natural environment
    /// (Eq. 2), propagating the interval.
    pub fn fit_at(&self, flux: Flux) -> FitEstimate {
        FitEstimate {
            point: self.point.fit_at(flux),
            lower: self.lower.fit_at(flux),
            upper: self.upper.fit_at(flux),
        }
    }
}

/// A FIT rate with a 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitEstimate {
    /// The point estimate.
    pub point: Fit,
    /// The 95 % lower bound.
    pub lower: Fit,
    /// The 95 % upper bound.
    pub upper: Fit,
}

impl FitEstimate {
    /// A zero FIT estimate (no events observed ⇒ point estimate zero, upper
    /// bound still positive when built from an interval).
    pub const ZERO: FitEstimate = FitEstimate {
        point: Fit::ZERO,
        lower: Fit::ZERO,
        upper: Fit::ZERO,
    };

    /// Adds two independent FIT estimates (intervals added conservatively).
    pub fn saturating_add(self, other: FitEstimate) -> FitEstimate {
        FitEstimate {
            point: self.point + other.point,
            lower: self.lower + other.lower,
            upper: self.upper + other.upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::NYC_SEA_LEVEL_FLUX;

    #[test]
    fn table2_rates_match() {
        // Table 2 rows 7 and 9 (rate per min).
        let cases: [(u64, f64, f64); 4] = [
            (95, 1651.0, 5.75e-2),
            (97, 1618.0, 5.99e-2),
            (141, 453.0, 3.11e-1),
            (13, 165.0, 7.87e-2),
        ];
        for (count, mins, expected) in cases {
            let est = RateEstimate::from_count(count, SimDuration::from_minutes(mins));
            assert!(
                (est.per_minute() - expected).abs() / expected < 0.01,
                "count={count}: {} vs {expected}",
                est.per_minute()
            );
        }
    }

    #[test]
    fn memory_upset_rates_match_table2() {
        let cases: [(u64, f64, f64); 4] = [
            (1669, 1651.0, 1.011),
            (1743, 1618.0, 1.077),
            (506, 453.0, 1.117),
            (195, 165.0, 1.182),
        ];
        for (count, mins, expected) in cases {
            let est = RateEstimate::from_count(count, SimDuration::from_minutes(mins));
            assert!(
                (est.per_minute() - expected).abs() < 0.005,
                "count={count}: {}",
                est.per_minute()
            );
        }
    }

    #[test]
    fn interval_brackets_point() {
        let est = RateEstimate::from_count(100, SimDuration::from_hours(1.0));
        assert!(est.lower_per_minute() < est.per_minute());
        assert!(est.per_minute() < est.upper_per_minute());
        assert!((est.relative_uncertainty() - 0.2).abs() < 0.02);
    }

    #[test]
    fn zero_count_rate() {
        let est = RateEstimate::from_count(0, SimDuration::from_minutes(10.0));
        assert_eq!(est.per_minute(), 0.0);
        assert_eq!(est.lower_per_minute(), 0.0);
        assert!(est.upper_per_minute() > 0.0);
        assert!(est.relative_uncertainty().is_infinite());
    }

    #[test]
    fn cross_section_estimate_total_fit_session1() {
        // 95 error events / 1.49e11 n/cm² → total FIT ≈ 8.3 (Fig. 11).
        let est = CrossSectionEstimate::from_events(95, Fluence::per_cm2(1.49e11));
        let fit = est.fit_at(NYC_SEA_LEVEL_FLUX);
        assert!((fit.point.get() - 8.3).abs() < 0.1, "fit = {}", fit.point);
        assert!(fit.lower.get() > 6.0 && fit.upper.get() < 11.0);
    }

    #[test]
    fn fit_estimates_add() {
        let a = CrossSectionEstimate::from_events(10, Fluence::per_cm2(1.0e10))
            .fit_at(NYC_SEA_LEVEL_FLUX);
        let b = CrossSectionEstimate::from_events(20, Fluence::per_cm2(1.0e10))
            .fit_at(NYC_SEA_LEVEL_FLUX);
        let sum = a.saturating_add(b);
        assert!((sum.point.get() - (a.point.get() + b.point.get())).abs() < 1e-9);
        assert!(sum.upper.get() > sum.point.get());
    }

    #[test]
    #[should_panic(expected = "zero exposure")]
    fn rate_rejects_zero_exposure() {
        let _ = RateEstimate::from_count(1, SimDuration::ZERO);
    }
}
