//! # serscale-stats
//!
//! Statistical machinery for the serscale beam-campaign simulator:
//!
//! * [`SimRng`] — a deterministic, forkable random-number source, so any
//!   campaign is exactly reproducible from a single `u64` seed (a property
//!   the integration suite checks end to end).
//! * [`poisson`] — Poisson counts and exponential inter-arrival sampling,
//!   the arrival model of radiation-induced upsets under constant flux.
//! * [`ci`] — exact (Garwood) Poisson confidence intervals and Wilson
//!   binomial intervals at the paper's 95 % confidence level, plus the
//!   normal/chi-square special functions they need.
//! * [`compare`] — two-sample Poisson rate tests ("is the 920 mV rate
//!   *significantly* above nominal?").
//! * [`rate`] — event-rate estimates (events/min with error bars) and
//!   cross-section estimates with propagated uncertainty, the quantities
//!   plotted in every figure of the paper.
//! * [`summary`] — running mean/variance accumulators.
//!
//! ## Example
//!
//! ```
//! use serscale_stats::{ci::poisson_ci, rate::RateEstimate, SimRng};
//! use serscale_types::SimDuration;
//!
//! // 95 events in 1651 minutes (Table 2, session 1): 0.0575 events/min.
//! let est = RateEstimate::from_count(95, SimDuration::from_minutes(1651.0));
//! assert!((est.per_minute() - 5.75e-2).abs() < 1e-4);
//!
//! // The 95% interval is strictly positive and brackets the point estimate.
//! let (lo, hi) = poisson_ci(95, 0.95);
//! assert!(lo > 76.0 && hi < 117.0 && lo < 95.0 && 95.0 < hi);
//!
//! // Deterministic randomness: the same seed replays identically.
//! let a: Vec<u64> = SimRng::seed_from(7).take_u64s(4);
//! let b: Vec<u64> = SimRng::seed_from(7).take_u64s(4);
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod compare;
pub mod poisson;
pub mod rate;
pub mod rng;
pub mod summary;

pub use ci::{count_consistent, count_consistent_with_tolerance};
pub use compare::{poisson_rate_test, RateComparison};
pub use rate::{CrossSectionEstimate, RateEstimate};
pub use rng::SimRng;
