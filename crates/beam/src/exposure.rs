//! The fluence ledger: exposure bookkeeping for a test campaign.
//!
//! Table 2 of the paper reports, per session, the total test duration, the
//! accumulated fluence, and the "years of NYC equivalent radiation" that
//! fluence represents. [`FluenceLedger`] is the component that keeps those
//! books: the campaign driver feeds it `(flux, duration)` segments — one per
//! benchmark run, plus reboot gaps if the beam stays on — and reads back
//! totals and stopping-rule predicates.

use serde::{Deserialize, Serialize};

use serscale_types::{Fluence, Flux, SimDuration, NYC_SEA_LEVEL_FLUX};

/// One contiguous exposure segment at constant flux.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExposureSegment {
    /// The >10 MeV flux during the segment.
    pub flux: Flux,
    /// Segment duration.
    pub duration: SimDuration,
}

impl ExposureSegment {
    /// The fluence this segment contributes.
    pub fn fluence(&self) -> Fluence {
        self.flux * self.duration
    }
}

/// Accumulates exposure segments into campaign totals.
///
/// ```
/// use serscale_beam::FluenceLedger;
/// use serscale_types::{Flux, SimDuration};
///
/// let mut ledger = FluenceLedger::new();
/// // Session 1 of Table 2: 1651 minutes at the 1.5e6 n/cm²/s working flux.
/// ledger.record(Flux::per_cm2_s(1.5e6), SimDuration::from_minutes(1651.0));
/// assert!((ledger.total_fluence().as_per_cm2() - 1.49e11).abs() / 1.49e11 < 0.01);
/// assert!(ledger.reached_significance());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FluenceLedger {
    segments: Vec<ExposureSegment>,
    total_fluence: Fluence,
    total_duration: SimDuration,
}

impl FluenceLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one exposure segment.
    pub fn record(&mut self, flux: Flux, duration: SimDuration) {
        let segment = ExposureSegment { flux, duration };
        self.total_fluence += segment.fluence();
        self.total_duration += duration;
        self.segments.push(segment);
    }

    /// The accumulated fluence.
    pub fn total_fluence(&self) -> Fluence {
        self.total_fluence
    }

    /// The accumulated beam-on time.
    pub fn total_duration(&self) -> SimDuration {
        self.total_duration
    }

    /// The number of recorded segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Iterates over the recorded segments in order.
    pub fn segments(&self) -> impl Iterator<Item = &ExposureSegment> {
        self.segments.iter()
    }

    /// Whether the ESCC-25100 fluence significance threshold
    /// (10¹¹ n/cm²) has been reached — one of the two session stopping
    /// rules of §3.5.
    pub fn reached_significance(&self) -> bool {
        self.total_fluence >= Fluence::SIGNIFICANCE_THRESHOLD
    }

    /// The calendar time a device at NYC sea level would need to accumulate
    /// this ledger's fluence (Table 2, row 5), in years.
    pub fn nyc_equivalent_years(&self) -> f64 {
        self.total_fluence
            .natural_equivalent(NYC_SEA_LEVEL_FLUX)
            .as_years()
    }

    /// The mean flux over the recorded exposure (fluence / duration).
    ///
    /// # Panics
    ///
    /// Panics if no time has been recorded.
    pub fn mean_flux(&self) -> Flux {
        assert!(
            !self.total_duration.is_zero(),
            "mean flux of an empty ledger"
        );
        Flux::per_cm2_s(self.total_fluence.as_per_cm2() / self.total_duration.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKING_FLUX: f64 = 1.5e6;

    #[test]
    fn empty_ledger() {
        let ledger = FluenceLedger::new();
        assert_eq!(ledger.total_fluence(), Fluence::ZERO);
        assert!(ledger.total_duration().is_zero());
        assert_eq!(ledger.segment_count(), 0);
        assert!(!ledger.reached_significance());
    }

    #[test]
    fn accumulation_is_additive() {
        let mut ledger = FluenceLedger::new();
        for _ in 0..10 {
            ledger.record(
                Flux::per_cm2_s(WORKING_FLUX),
                SimDuration::from_minutes(165.1),
            );
        }
        assert_eq!(ledger.segment_count(), 10);
        assert!((ledger.total_duration().as_minutes() - 1651.0).abs() < 1e-9);
        assert!(
            (ledger.total_fluence().as_per_cm2() - 1.49e11).abs() / 1.49e11 < 0.01,
            "fluence = {}",
            ledger.total_fluence()
        );
    }

    #[test]
    fn table2_sessions_reproduce() {
        // (duration_min, expected_fluence, expected_nyc_years)
        let rows: [(f64, f64, f64); 4] = [
            (1651.0, 1.49e11, 1.30e6),
            (1618.0, 1.46e11, 1.28e6),
            (453.0, 4.08e10, 3.58e5),
            (165.0, 1.48e10, 1.30e5),
        ];
        for (mins, fluence, years) in rows {
            let mut ledger = FluenceLedger::new();
            ledger.record(
                Flux::per_cm2_s(WORKING_FLUX),
                SimDuration::from_minutes(mins),
            );
            assert!(
                (ledger.total_fluence().as_per_cm2() - fluence).abs() / fluence < 0.02,
                "{mins} min: {}",
                ledger.total_fluence()
            );
            assert!(
                (ledger.nyc_equivalent_years() - years).abs() / years < 0.02,
                "{mins} min: {} years",
                ledger.nyc_equivalent_years()
            );
        }
    }

    #[test]
    fn significance_rule() {
        let mut ledger = FluenceLedger::new();
        ledger.record(
            Flux::per_cm2_s(WORKING_FLUX),
            SimDuration::from_minutes(453.0),
        );
        // Session 3 stopped on events, not fluence: 4.08e10 < 1e11.
        assert!(!ledger.reached_significance());
        ledger.record(
            Flux::per_cm2_s(WORKING_FLUX),
            SimDuration::from_minutes(1651.0),
        );
        assert!(ledger.reached_significance());
    }

    #[test]
    fn mean_flux_over_mixed_segments() {
        let mut ledger = FluenceLedger::new();
        ledger.record(Flux::per_cm2_s(1.0e6), SimDuration::from_secs(100.0));
        ledger.record(Flux::per_cm2_s(3.0e6), SimDuration::from_secs(100.0));
        assert!((ledger.mean_flux().as_per_cm2_s() - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn segments_iterate_in_order() {
        let mut ledger = FluenceLedger::new();
        ledger.record(Flux::per_cm2_s(1.0), SimDuration::from_secs(1.0));
        ledger.record(Flux::per_cm2_s(2.0), SimDuration::from_secs(2.0));
        let fluxes: Vec<f64> = ledger.segments().map(|s| s.flux.as_per_cm2_s()).collect();
        assert_eq!(fluxes, vec![1.0, 2.0]);
    }
}
