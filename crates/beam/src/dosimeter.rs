//! The SRAM "golden board" dosimeter and the halo-transmission measurement
//! procedure of §3.4.
//!
//! TRIUMF characterizes relative beam intensity with a well-known SRAM
//! board whose per-bit cross-section is calibrated yearly against
//! activation-foil measurements (Blackmore et al. \[11\]). The paper measured
//! the SEU rate of the dosimeter once at beam center and six times at the
//! halo test position — moving the DUT between measurements to absorb
//! mechanical-positioning uncertainty — and took the rate ratio as the halo
//! transmission: 0.60 ± 0.02.
//!
//! [`SramDosimeter::measure_transmission`] reproduces that protocol against
//! the simulated beam.

use serde::{Deserialize, Serialize};

use serscale_stats::poisson::sample_poisson;
use serscale_stats::summary::Summary;
use serscale_stats::SimRng;
use serscale_types::{Bits, CrossSection, Flux, SimDuration};

use crate::facility::{BeamFacility, BeamPosition};

/// A calibrated SRAM dosimeter board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramDosimeter {
    bits: Bits,
    sigma_bit: CrossSection,
}

/// The result of a transmission measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmissionMeasurement {
    /// Estimated halo/center flux ratio.
    pub ratio: f64,
    /// Standard error of the ratio over the repeat measurements.
    pub std_error: f64,
    /// Number of halo measurements taken.
    pub measurements: u32,
}

impl SramDosimeter {
    /// The TRIUMF-style dosimeter: a 16 Mbit SRAM with a calibrated
    /// 1.1×10⁻¹⁴ cm²/bit cross-section (older, larger-node SRAM upsets more
    /// easily than the 28 nm DUT — which is what makes it a good dosimeter:
    /// plenty of counts per exposure).
    pub fn triumf_golden_board() -> Self {
        Self::new(Bits::new(16 * 1024 * 1024), CrossSection::cm2(1.1e-14))
    }

    /// Creates a dosimeter.
    ///
    /// # Panics
    ///
    /// Panics if the board has zero bits or zero cross-section.
    pub fn new(bits: Bits, sigma_bit: CrossSection) -> Self {
        assert!(bits.get() > 0, "dosimeter needs at least one bit");
        assert!(
            sigma_bit.as_cm2() > 0.0,
            "dosimeter cross-section must be positive"
        );
        SramDosimeter { bits, sigma_bit }
    }

    /// The board capacity.
    pub const fn bits(&self) -> Bits {
        self.bits
    }

    /// The calibrated per-bit cross-section.
    pub const fn sigma_bit(&self) -> CrossSection {
        self.sigma_bit
    }

    /// The expected SEU count for an exposure at the given flux.
    pub fn expected_upsets(&self, flux: Flux, exposure: SimDuration) -> f64 {
        self.sigma_bit.as_cm2() * self.bits.as_f64() * flux.as_per_cm2_s() * exposure.as_secs()
    }

    /// Counts SEUs over one exposure (Poisson draw around the expectation).
    pub fn expose(&self, rng: &mut SimRng, flux: Flux, exposure: SimDuration) -> u64 {
        sample_poisson(rng, self.expected_upsets(flux, exposure))
    }

    /// Reproduces the paper's transmission-measurement protocol: one
    /// exposure at beam center, then `halo_repeats` exposures at the halo
    /// position, re-seating the board between repeats
    /// (`positioning_jitter` is the relative sigma of the re-seating flux
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if `halo_repeats` is zero or any duration is zero.
    pub fn measure_transmission(
        &self,
        rng: &mut SimRng,
        facility: &BeamFacility,
        halo: BeamPosition,
        exposure_each: SimDuration,
        halo_repeats: u32,
        positioning_jitter: f64,
    ) -> TransmissionMeasurement {
        assert!(halo_repeats > 0, "need at least one halo measurement");
        assert!(
            !exposure_each.is_zero(),
            "exposures must have positive duration"
        );

        let center_flux = facility.flux_at(BeamPosition::Center);
        let center_counts = self.expose(rng, center_flux, exposure_each).max(1);
        let center_rate = center_counts as f64 / exposure_each.as_secs();

        let mut ratios = Summary::new();
        for _ in 0..halo_repeats {
            // Mechanical re-seating perturbs the true received flux.
            let jitter = (1.0 + rng.normal(0.0, positioning_jitter)).max(0.0);
            let true_flux = facility.flux_at(halo).scaled(jitter);
            let counts = self.expose(rng, true_flux, exposure_each);
            let rate = counts as f64 / exposure_each.as_secs();
            ratios.add(rate / center_rate);
        }

        TransmissionMeasurement {
            ratio: ratios.mean(),
            std_error: if halo_repeats > 1 {
                ratios.std_error()
            } else {
                f64::NAN
            },
            measurements: halo_repeats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_counts_scale_linearly() {
        let d = SramDosimeter::triumf_golden_board();
        let f = Flux::per_cm2_s(2.5e6);
        let one = d.expected_upsets(f, SimDuration::from_secs(10.0));
        let two = d.expected_upsets(f, SimDuration::from_secs(20.0));
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn center_exposure_yields_plenty_of_counts() {
        // The dosimeter must count fast at beam center for the protocol to
        // converge in minutes.
        let d = SramDosimeter::triumf_golden_board();
        let expected = d.expected_upsets(Flux::per_cm2_s(2.5e6), SimDuration::from_minutes(5.0));
        assert!(expected > 100.0, "expected = {expected}");
    }

    #[test]
    fn transmission_measurement_recovers_the_ratio() {
        let d = SramDosimeter::triumf_golden_board();
        let tnf = BeamFacility::tnf();
        let halo = BeamPosition::halo(0.60);
        let mut rng = SimRng::seed_from(42);
        // 45-minute exposures: the 5-minute protocol's Poisson noise on the
        // ratio (~0.03 relative) is as large as the tolerance below, which
        // makes the assertion a coin flip over seeds. Longer exposures test
        // the same protocol with the estimator noise well inside the band.
        let m = d.measure_transmission(
            &mut rng,
            &tnf,
            halo,
            SimDuration::from_minutes(45.0),
            6,
            0.02,
        );
        assert_eq!(m.measurements, 6);
        assert!((m.ratio - 0.60).abs() < 0.03, "ratio = {}", m.ratio);
        // The paper's ±0.02 combined uncertainty is the right order.
        assert!(
            m.std_error > 0.0 && m.std_error < 0.05,
            "se = {}",
            m.std_error
        );
    }

    #[test]
    fn measurement_is_deterministic_under_seed() {
        let d = SramDosimeter::triumf_golden_board();
        let tnf = BeamFacility::tnf();
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            d.measure_transmission(
                &mut rng,
                &tnf,
                BeamPosition::halo(0.6),
                SimDuration::from_minutes(1.0),
                6,
                0.02,
            )
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "at least one halo measurement")]
    fn zero_repeats_rejected() {
        let d = SramDosimeter::triumf_golden_board();
        let tnf = BeamFacility::tnf();
        let mut rng = SimRng::seed_from(1);
        let _ = d.measure_transmission(
            &mut rng,
            &tnf,
            BeamPosition::halo(0.6),
            SimDuration::from_secs(1.0),
            0,
            0.0,
        );
    }
}
