//! Energy-resolved neutron spectrum and energy-dependent upset
//! cross-sections.
//!
//! The campaign accounting elsewhere in this workspace works with the
//! integrated >10 MeV flux, exactly like the paper (and JESD89B). This
//! module carries the next level of fidelity for analyses that need it:
//!
//! * an atmospheric-like differential spectrum `dΦ/dE ∝ E^(−γ)` above the
//!   SEE threshold (γ ≈ 1.25 fits the ground-level spectrum's slope in
//!   the 10–1000 MeV band that matters for 28 nm upsets), plus a thermal
//!   component at the facility's measured contamination fraction;
//! * the standard Weibull turn-on of the per-bit upset cross-section,
//!   `σ(E) = σ_sat·(1 − exp(−((E−E₀)/W)^s))`, which is how radiation
//!   test reports parameterize energy response;
//! * the folding integral `σ_eff = ∫σ(E)·φ(E)dE / ∫φ(E)dE` that justifies
//!   treating the calibrated `σ_bit` of `serscale-sram` as
//!   spectrum-averaged.

use serde::{Deserialize, Serialize};

use serscale_stats::SimRng;
use serscale_types::{CrossSection, NeutronEnergy};

/// An atmospheric-like neutron energy spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeutronSpectrum {
    /// Spectral index γ of the power-law tail.
    gamma: f64,
    /// Lower integration bound (the >10 MeV SEE threshold).
    e_min_mev: f64,
    /// Upper cutoff (ground-level flux is negligible beyond ~10 GeV).
    e_max_mev: f64,
    /// Fraction of the total flux arriving thermal.
    thermal_fraction: f64,
}

impl NeutronSpectrum {
    /// The JEDEC-like ground-level reference shape: γ = 1.25 over
    /// 10 MeV – 10 GeV, no thermal component.
    pub fn atmospheric() -> Self {
        NeutronSpectrum {
            gamma: 1.25,
            e_min_mev: 10.0,
            e_max_mev: 1.0e4,
            thermal_fraction: 0.0,
        }
    }

    /// The TNF beam-halo shape: same fast tail, ~15 % thermal
    /// contamination (§3.4 of the paper).
    pub fn tnf_halo() -> Self {
        NeutronSpectrum {
            thermal_fraction: 0.15,
            ..Self::atmospheric()
        }
    }

    /// Creates a spectrum.
    ///
    /// # Panics
    ///
    /// Panics on a non-physical configuration (γ ≤ 1 breaks the
    /// normalization; inverted bounds; thermal fraction outside [0,1)).
    pub fn new(gamma: f64, e_min_mev: f64, e_max_mev: f64, thermal_fraction: f64) -> Self {
        assert!(
            gamma > 1.0,
            "spectral index must exceed 1 for a normalizable tail"
        );
        assert!(0.0 < e_min_mev && e_min_mev < e_max_mev, "bounds inverted");
        assert!(
            (0.0..1.0).contains(&thermal_fraction),
            "thermal fraction in [0,1)"
        );
        NeutronSpectrum {
            gamma,
            e_min_mev,
            e_max_mev,
            thermal_fraction,
        }
    }

    /// The spectral index.
    pub const fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The thermal flux fraction.
    pub const fn thermal_fraction(&self) -> f64 {
        self.thermal_fraction
    }

    /// Samples a neutron energy from the spectrum (inverse-CDF for the
    /// truncated power law; thermal neutrons return
    /// [`NeutronEnergy::THERMAL`]).
    pub fn sample_energy(&self, rng: &mut SimRng) -> NeutronEnergy {
        if rng.chance(self.thermal_fraction) {
            return NeutronEnergy::THERMAL;
        }
        // Inverse CDF of E^-γ on [e_min, e_max]:
        // E = (e_min^(1-γ) + u·(e_max^(1-γ) − e_min^(1-γ)))^(1/(1-γ))
        let a = 1.0 - self.gamma;
        let lo = self.e_min_mev.powf(a);
        let hi = self.e_max_mev.powf(a);
        let u = rng.uniform();
        NeutronEnergy::mev((lo + u * (hi - lo)).powf(1.0 / a))
    }

    /// The normalized differential flux φ(E) at `e` (fast component only;
    /// integrates to `1 − thermal_fraction` over `[e_min, e_max]`).
    pub fn pdf(&self, e: NeutronEnergy) -> f64 {
        let e = e.as_mev();
        if e < self.e_min_mev || e > self.e_max_mev {
            return 0.0;
        }
        let a = 1.0 - self.gamma;
        let norm = (self.e_max_mev.powf(a) - self.e_min_mev.powf(a)) / a;
        (1.0 - self.thermal_fraction) * e.powf(-self.gamma) / norm
    }

    /// Folds an energy-dependent cross-section over the fast spectrum by
    /// Simpson integration in log-energy: the spectrum-averaged σ_eff.
    pub fn fold(&self, response: &WeibullResponse) -> CrossSection {
        let steps = 2000usize;
        let ln_lo = self.e_min_mev.ln();
        let ln_hi = self.e_max_mev.ln();
        let h = (ln_hi - ln_lo) / steps as f64;
        let integrand = |ln_e: f64| {
            let e = ln_e.exp();
            // dE = E·d(lnE)
            response.sigma(NeutronEnergy::mev(e)).as_cm2() * self.pdf(NeutronEnergy::mev(e)) * e
        };
        let mut sum = integrand(ln_lo) + integrand(ln_hi);
        for i in 1..steps {
            let w = if i % 2 == 0 { 2.0 } else { 4.0 };
            sum += w * integrand(ln_lo + h * i as f64);
        }
        let sigma = sum * h / 3.0 / (1.0 - self.thermal_fraction).max(1e-12);
        CrossSection::cm2(sigma.max(0.0))
    }
}

/// A Weibull energy response of the per-bit upset cross-section — the
/// canonical parameterization of radiation test data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullResponse {
    /// Saturation cross-section (cm²/bit).
    sigma_sat: CrossSection,
    /// Threshold energy E₀ (MeV): below it, no upsets.
    threshold_mev: f64,
    /// Width parameter W (MeV).
    width_mev: f64,
    /// Shape parameter s.
    shape: f64,
}

impl WeibullResponse {
    /// A 28 nm-ish response: ~3 MeV effective threshold, saturating by a
    /// few tens of MeV. `sigma_sat` is chosen so the atmospheric-folded
    /// σ_eff matches the calibrated 1×10⁻¹⁵ cm²/bit of `serscale-sram`.
    pub fn tech_28nm() -> Self {
        WeibullResponse {
            sigma_sat: CrossSection::cm2(1.21e-15),
            threshold_mev: 3.0,
            width_mev: 20.0,
            shape: 1.5,
        }
    }

    /// Creates a response.
    ///
    /// # Panics
    ///
    /// Panics if width or shape are not positive.
    pub fn new(sigma_sat: CrossSection, threshold_mev: f64, width_mev: f64, shape: f64) -> Self {
        assert!(width_mev > 0.0, "width must be positive");
        assert!(shape > 0.0, "shape must be positive");
        WeibullResponse {
            sigma_sat,
            threshold_mev,
            width_mev,
            shape,
        }
    }

    /// The saturation cross-section.
    pub const fn sigma_sat(&self) -> CrossSection {
        self.sigma_sat
    }

    /// σ(E): zero below threshold, Weibull turn-on above, → σ_sat.
    pub fn sigma(&self, e: NeutronEnergy) -> CrossSection {
        let e = e.as_mev();
        if e <= self.threshold_mev {
            return CrossSection::ZERO;
        }
        let x = ((e - self.threshold_mev) / self.width_mev).powf(self.shape);
        CrossSection::cm2(self.sigma_sat.as_cm2() * (1.0 - (-x).exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_energies_within_bounds_and_decreasing() {
        let s = NeutronSpectrum::atmospheric();
        let mut rng = SimRng::seed_from(1);
        let mut below_100 = 0;
        let mut above_100 = 0;
        for _ in 0..20_000 {
            let e = s.sample_energy(&mut rng).as_mev();
            assert!((10.0..=1.0e4).contains(&e));
            if e < 100.0 {
                below_100 += 1;
            } else {
                above_100 += 1;
            }
        }
        // Soft spectrum: the low-energy decade holds the majority
        // (analytically ≈53% of a γ=1.25 tail on [10 MeV, 10 GeV]).
        assert!(below_100 > above_100, "{below_100} vs {above_100}");
    }

    #[test]
    fn thermal_fraction_respected() {
        let s = NeutronSpectrum::tnf_halo();
        let mut rng = SimRng::seed_from(2);
        let thermal = (0..20_000)
            .filter(|_| !s.sample_energy(&mut rng).is_see_relevant())
            .count();
        let frac = thermal as f64 / 20_000.0;
        assert!((frac - 0.15).abs() < 0.01, "thermal fraction = {frac}");
    }

    #[test]
    fn pdf_normalizes() {
        let s = NeutronSpectrum::atmospheric();
        // Trapezoid integral of pdf over [10, 1e4] in log space ≈ 1.
        let steps = 20_000;
        let (lo, hi) = (10.0f64.ln(), 1.0e4f64.ln());
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..steps {
            let ln_e = lo + h * (i as f64 + 0.5);
            let e = ln_e.exp();
            total += s.pdf(NeutronEnergy::mev(e)) * e * h;
        }
        assert!((total - 1.0).abs() < 1e-3, "∫pdf = {total}");
    }

    #[test]
    fn weibull_turn_on_shape() {
        let w = WeibullResponse::tech_28nm();
        assert_eq!(w.sigma(NeutronEnergy::mev(1.0)).as_cm2(), 0.0);
        let at_10 = w.sigma(NeutronEnergy::mev(10.0)).as_cm2();
        let at_50 = w.sigma(NeutronEnergy::mev(50.0)).as_cm2();
        let at_500 = w.sigma(NeutronEnergy::mev(500.0)).as_cm2();
        assert!(at_10 < at_50 && at_50 < at_500);
        assert!(at_500 > 0.99 * w.sigma_sat().as_cm2());
    }

    #[test]
    fn folded_sigma_matches_the_calibrated_bit_cross_section() {
        // The whole point: σ_eff over the atmospheric spectrum ≈ the
        // 1e-15 cm²/bit the campaign model uses as its flat σ_bit.
        let folded = NeutronSpectrum::atmospheric().fold(&WeibullResponse::tech_28nm());
        let target = 1.0e-15;
        assert!(
            (folded.as_cm2() - target).abs() / target < 0.10,
            "σ_eff = {:.3e}",
            folded.as_cm2()
        );
    }

    #[test]
    fn harder_spectrum_raises_effective_sigma() {
        // A flatter (harder) spectrum puts more flux above the Weibull
        // knee → larger σ_eff.
        let soft = NeutronSpectrum::new(1.6, 10.0, 1.0e4, 0.0);
        let hard = NeutronSpectrum::new(1.05, 10.0, 1.0e4, 0.0);
        let w = WeibullResponse::tech_28nm();
        assert!(hard.fold(&w).as_cm2() > soft.fold(&w).as_cm2());
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = NeutronSpectrum::tnf_halo();
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            (0..50)
                .map(|_| s.sample_energy(&mut rng).as_mev())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
