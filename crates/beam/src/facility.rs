//! The accelerated-neutron facility model.
//!
//! Mirrors §3.4 of the paper: TRIUMF's TNF delivers an atmospheric-like
//! spectrum at a beam-center flux of 2–3 × 10⁶ n/cm²/s (>10 MeV) over a
//! 5 cm × 12 cm spot, which cannot be reduced operationally. The paper's
//! DUT was therefore raised 5–10 cm into the *beam halo*, where a
//! dosimeter-measured 0.60 ± 0.02 fraction of the center flux arrives
//! (see [`BeamPosition::PAPER_HALO_TRANSMISSION`] on the paper's stray
//! percent sign). Thermal
//! neutrons contribute about 15 % of the >10 MeV flux in that configuration.

use serde::{Deserialize, Serialize};

use serscale_types::{Flux, NeutronEnergy};

/// Where the device under test sits relative to the beam axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BeamPosition {
    /// Directly in the beam path (full flux).
    Center,
    /// In the beam halo, receiving `transmission` of the center flux.
    Halo {
        /// Fraction of the center flux reaching the DUT (0, 1].
        transmission: f64,
    },
}

impl BeamPosition {
    /// The halo position the paper used: a 0.60 ± 0.02 flux ratio relative
    /// to beam center, measured with the SRAM dosimeter. (The paper's prose
    /// renders the ratio as "0.60 ± 0.02%", but its own working-flux
    /// arithmetic — `(2+3)/2 × 0.6 × 10⁶ = 1.5 × 10⁶ n/cm²/s` — and the
    /// session fluences of Table 2 both use the factor 0.60, which we
    /// follow.)
    pub const PAPER_HALO_TRANSMISSION: f64 = 0.60;

    /// Creates a halo position with the given transmission fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < transmission ≤ 1`.
    pub fn halo(transmission: f64) -> Self {
        assert!(
            transmission > 0.0 && transmission <= 1.0,
            "transmission must be in (0, 1], got {transmission}"
        );
        BeamPosition::Halo { transmission }
    }

    /// The flux fraction this position receives.
    pub fn transmission(&self) -> f64 {
        match self {
            BeamPosition::Center => 1.0,
            BeamPosition::Halo { transmission } => *transmission,
        }
    }
}

/// An accelerated neutron irradiation facility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamFacility {
    name: String,
    /// Lower bound of the center >10 MeV flux band (n/cm²/s).
    center_flux_min: Flux,
    /// Upper bound of the center >10 MeV flux band (n/cm²/s).
    center_flux_max: Flux,
    /// Fraction of the >10 MeV flux arriving as thermal neutrons.
    thermal_fraction: f64,
    /// Relative uncertainty of the absolute flux calibration.
    absolute_flux_uncertainty: f64,
}

impl BeamFacility {
    /// The TRIUMF Neutron irradiation Facility as described in §3.4:
    /// 2–3 × 10⁶ n/cm²/s center flux, ~15 % thermal contamination, ~20 %
    /// absolute-calibration uncertainty.
    pub fn tnf() -> Self {
        BeamFacility {
            name: "TRIUMF/TNF".to_owned(),
            center_flux_min: Flux::per_cm2_s(2.0e6),
            center_flux_max: Flux::per_cm2_s(3.0e6),
            thermal_fraction: 0.15,
            absolute_flux_uncertainty: 0.20,
        }
    }

    /// Creates a facility from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the flux band is inverted, or the fractions are outside
    /// `\[0, 1\]`.
    pub fn new(
        name: impl Into<String>,
        center_flux_min: Flux,
        center_flux_max: Flux,
        thermal_fraction: f64,
        absolute_flux_uncertainty: f64,
    ) -> Self {
        assert!(
            center_flux_min <= center_flux_max,
            "flux band inverted: {center_flux_min} > {center_flux_max}"
        );
        assert!(
            (0.0..=1.0).contains(&thermal_fraction),
            "thermal fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&absolute_flux_uncertainty),
            "flux uncertainty in [0,1]"
        );
        BeamFacility {
            name: name.into(),
            center_flux_min,
            center_flux_max,
            thermal_fraction,
            absolute_flux_uncertainty,
        }
    }

    /// The facility name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nominal (band-midpoint) center flux — the paper's
    /// `(2+3)/2 × 10⁶` in its working-flux computation.
    pub fn center_flux(&self) -> Flux {
        Flux::per_cm2_s(
            0.5 * (self.center_flux_min.as_per_cm2_s() + self.center_flux_max.as_per_cm2_s()),
        )
    }

    /// The center-flux band as `(min, max)`.
    pub fn center_flux_band(&self) -> (Flux, Flux) {
        (self.center_flux_min, self.center_flux_max)
    }

    /// The >10 MeV flux at a given DUT position.
    ///
    /// ```
    /// use serscale_beam::facility::{BeamFacility, BeamPosition};
    ///
    /// // The paper's working flux: (2+3)/2 × 0.6 × 10⁶ = 1.5e6 n/cm²/s.
    /// let f = BeamFacility::tnf().flux_at(BeamPosition::halo(0.60));
    /// assert!((f.as_per_cm2_s() - 1.5e6).abs() < 1e-3);
    /// ```
    pub fn flux_at(&self, position: BeamPosition) -> Flux {
        self.center_flux().scaled(position.transmission())
    }

    /// Fraction of the >10 MeV-equivalent flux that is thermal-neutron
    /// contamination at the halo position.
    pub const fn thermal_fraction(&self) -> f64 {
        self.thermal_fraction
    }

    /// The relative uncertainty of the absolute flux calibration (~20 % at
    /// TNF per Blackmore \[10\]).
    pub const fn absolute_flux_uncertainty(&self) -> f64 {
        self.absolute_flux_uncertainty
    }

    /// Whether the facility spectrum is SEE-relevant above the JEDEC
    /// threshold (always true for a spallation source; present so exotic
    /// facilities can be modelled).
    pub fn covers(&self, energy: NeutronEnergy) -> bool {
        energy.is_see_relevant() || self.thermal_fraction > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tnf_band_midpoint() {
        let tnf = BeamFacility::tnf();
        assert!((tnf.center_flux().as_per_cm2_s() - 2.5e6).abs() < 1.0);
        let (lo, hi) = tnf.center_flux_band();
        assert!(lo < hi);
    }

    #[test]
    fn paper_working_flux() {
        // §3.4: (2+3)/2 × 0.6 × 10⁶ = 1.5 × 10⁶ n/cm²/s — consistent with
        // Table 2 (1.49e11 n/cm² over 1651 min).
        let f =
            BeamFacility::tnf().flux_at(BeamPosition::halo(BeamPosition::PAPER_HALO_TRANSMISSION));
        assert!((f.as_per_cm2_s() - 1.5e6).abs() < 1e-3);
    }

    #[test]
    fn center_position_full_flux() {
        let tnf = BeamFacility::tnf();
        assert_eq!(
            tnf.flux_at(BeamPosition::Center).as_per_cm2_s(),
            tnf.center_flux().as_per_cm2_s()
        );
    }

    #[test]
    fn transmission_accessor() {
        assert_eq!(BeamPosition::Center.transmission(), 1.0);
        assert!((BeamPosition::halo(0.006).transmission() - 0.006).abs() < 1e-12);
    }

    #[test]
    fn thermal_and_uncertainty_metadata() {
        let tnf = BeamFacility::tnf();
        assert!((tnf.thermal_fraction() - 0.15).abs() < 1e-12);
        assert!((tnf.absolute_flux_uncertainty() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn covers_fast_neutrons() {
        assert!(BeamFacility::tnf().covers(NeutronEnergy::mev(14.0)));
    }

    #[test]
    #[should_panic(expected = "transmission")]
    fn zero_transmission_rejected() {
        let _ = BeamPosition::halo(0.0);
    }

    #[test]
    #[should_panic(expected = "flux band inverted")]
    fn inverted_band_rejected() {
        let _ = BeamFacility::new(
            "bad",
            Flux::per_cm2_s(3.0e6),
            Flux::per_cm2_s(2.0e6),
            0.0,
            0.0,
        );
    }
}
