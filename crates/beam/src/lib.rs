//! # serscale-beam
//!
//! The radiation-environment substrate of the serscale workspace: a model of
//! the accelerated neutron source the paper's campaign used (TRIUMF's
//! Neutron irradiation Facility, TNF) and of the natural reference
//! environment (JEDEC NYC sea level) the FIT extrapolation targets.
//!
//! * [`facility`] — the beam line: center flux band, halo positioning (the
//!   paper had to raise the DUT into the beam halo, at a dosimeter-measured
//!   0.60 flux ratio, to keep it bootable), thermal-neutron contamination.
//! * [`dosimeter`] — the SRAM "golden board" dosimeter used to measure the
//!   halo/center flux ratio, including the repeat-measurement procedure that
//!   produced the paper's 0.60 ± 0.02 figure.
//! * [`exposure`] — the fluence ledger: who got irradiated for how long at
//!   what flux, with the NYC-equivalent bookkeeping of Table 2.
//! * [`scheduler`] — Poisson strike arrivals: turns (cross-section, flux,
//!   window) into a deterministic-under-seed sequence of strike instants.
//!
//! ## Example
//!
//! ```
//! use serscale_beam::facility::{BeamFacility, BeamPosition};
//! use serscale_types::SimDuration;
//!
//! let tnf = BeamFacility::tnf();
//! let halo = BeamPosition::halo(BeamPosition::PAPER_HALO_TRANSMISSION);
//! let flux = tnf.flux_at(halo);
//! // The paper's working flux: 1.5e6 n/cm²/s, scaled from the 2.5e6 center.
//! assert!((flux.as_per_cm2_s() - 1.5e6).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dosimeter;
pub mod exposure;
pub mod facility;
pub mod scheduler;
pub mod spectrum;

pub use dosimeter::SramDosimeter;
pub use exposure::FluenceLedger;
pub use facility::{BeamFacility, BeamPosition};
pub use scheduler::StrikeScheduler;
pub use spectrum::{NeutronSpectrum, WeibullResponse};
