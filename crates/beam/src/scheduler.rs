//! Poisson strike scheduling: when, within a simulated window, do neutron
//! hits land on a device of known cross-section?
//!
//! Under constant flux a device of total cross-section `σ` experiences
//! strikes as a Poisson process of rate `σ·φ`. The scheduler samples either
//! the count in a window (for aggregate accounting) or the actual arrival
//! instants (for per-benchmark-run attribution, where it matters whether a
//! strike lands inside a 5-second run or in the reboot gap after it).

use serde::{Deserialize, Serialize};

use serscale_stats::poisson::{sample_exponential, sample_poisson};
use serscale_stats::SimRng;
use serscale_types::{CrossSection, Flux, SimDuration, SimInstant};

/// A Poisson strike scheduler for one device (or one array) in a beam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrikeScheduler {
    flux: Flux,
}

impl StrikeScheduler {
    /// Creates a scheduler for the given beam flux.
    pub fn new(flux: Flux) -> Self {
        StrikeScheduler { flux }
    }

    /// The beam flux this scheduler samples under.
    pub const fn flux(&self) -> Flux {
        self.flux
    }

    /// The strike rate (events/s) for a device of cross-section `sigma`.
    pub fn rate(&self, sigma: CrossSection) -> f64 {
        sigma.event_rate(self.flux)
    }

    /// The expected number of strikes on `sigma` within `window`.
    pub fn expected_strikes(&self, sigma: CrossSection, window: SimDuration) -> f64 {
        self.rate(sigma) * window.as_secs()
    }

    /// Samples how many strikes land on `sigma` within `window`.
    pub fn sample_count(&self, rng: &mut SimRng, sigma: CrossSection, window: SimDuration) -> u64 {
        sample_poisson(rng, self.expected_strikes(sigma, window))
    }

    /// Samples the arrival instants of strikes on `sigma` within the window
    /// `[start, start + window)`, in increasing order.
    pub fn sample_arrivals(
        &self,
        rng: &mut SimRng,
        sigma: CrossSection,
        start: SimInstant,
        window: SimDuration,
    ) -> Vec<SimInstant> {
        let rate = self.rate(sigma);
        let mut arrivals = Vec::new();
        if rate <= 0.0 {
            return arrivals;
        }
        let mut t = 0.0;
        loop {
            t += sample_exponential(rng, rate);
            if t >= window.as_secs() {
                break;
            }
            arrivals.push(start + SimDuration::from_secs(t));
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> StrikeScheduler {
        StrikeScheduler::new(Flux::per_cm2_s(1.5e6))
    }

    #[test]
    fn rate_matches_sigma_times_flux() {
        let s = scheduler();
        let sigma = CrossSection::cm2(1.0e-8);
        assert!((s.rate(sigma) - 1.5e-2).abs() < 1e-12);
        assert!((s.expected_strikes(sigma, SimDuration::from_minutes(1.0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn paper_strike_interval() {
        // §3.3: 10 MB SRAM at 1e-15 cm²/bit under the beam — about one raw
        // strike every few seconds.
        let s = StrikeScheduler::new(Flux::per_cm2_s(2.5e6));
        let sigma = CrossSection::cm2(10.0e6 * 8.0 * 1.0e-15);
        let interval = 1.0 / s.rate(sigma);
        assert!((interval - 4.8).abs() < 0.5, "interval = {interval}");
    }

    #[test]
    fn sampled_count_tracks_expectation() {
        let s = scheduler();
        let sigma = CrossSection::cm2(1.0e-8);
        let window = SimDuration::from_hours(10.0);
        let expected = s.expected_strikes(sigma, window);
        let mut rng = SimRng::seed_from(21);
        let n = 500;
        let mean = (0..n)
            .map(|_| s.sample_count(&mut rng, sigma, window) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "{mean} vs {expected}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let s = scheduler();
        let sigma = CrossSection::cm2(1.0e-6);
        let start = SimInstant::from_secs(100.0);
        let window = SimDuration::from_secs(50.0);
        let mut rng = SimRng::seed_from(22);
        let arrivals = s.sample_arrivals(&mut rng, sigma, start, window);
        assert!(!arrivals.is_empty());
        for pair in arrivals.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for t in &arrivals {
            assert!(t.as_secs() >= 100.0 && t.as_secs() < 150.0);
        }
    }

    #[test]
    fn arrival_count_consistent_with_poisson() {
        let s = scheduler();
        let sigma = CrossSection::cm2(1.0e-7);
        let window = SimDuration::from_hours(1.0);
        let expected = s.expected_strikes(sigma, window);
        let mut rng = SimRng::seed_from(23);
        let n = 300;
        let mean = (0..n)
            .map(|_| {
                s.sample_arrivals(&mut rng, sigma, SimInstant::EPOCH, window)
                    .len() as f64
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "{mean} vs {expected}"
        );
    }

    #[test]
    fn zero_cross_section_never_strikes() {
        let s = scheduler();
        let mut rng = SimRng::seed_from(24);
        assert_eq!(
            s.sample_count(&mut rng, CrossSection::ZERO, SimDuration::from_hours(100.0)),
            0
        );
        assert!(s
            .sample_arrivals(
                &mut rng,
                CrossSection::ZERO,
                SimInstant::EPOCH,
                SimDuration::from_hours(100.0)
            )
            .is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let s = scheduler();
        let sigma = CrossSection::cm2(1.0e-7);
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            s.sample_arrivals(
                &mut rng,
                sigma,
                SimInstant::EPOCH,
                SimDuration::from_hours(1.0),
            )
        };
        assert_eq!(run(31), run(31));
    }
}
