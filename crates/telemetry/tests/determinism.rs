//! The observe-only contract, proven end to end: attaching telemetry to a
//! campaign changes neither the report nor the Logbook trace, at any
//! worker count — and the counters the telemetry *does* record agree with
//! the report it shadowed.

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport};
use serscale_core::trace::{tee, Logbook};
use serscale_telemetry::{TelemetryOptions, TelemetrySink};
use serscale_types::CacheLevel;

const SCALE: f64 = 0.005;
const SEED: u64 = 20231028;

fn campaign() -> Campaign {
    let mut config = CampaignConfig::paper_scaled(SCALE);
    config.seed = SEED;
    Campaign::new(config)
}

fn run_plain(jobs: usize) -> (CampaignReport, Logbook) {
    let mut logbook = Logbook::new();
    let report = campaign().run_observed(jobs, &mut logbook);
    (report, logbook)
}

fn run_with_telemetry(jobs: usize) -> (CampaignReport, Logbook, TelemetrySink) {
    let sink = TelemetrySink::in_memory(TelemetryOptions::default());
    let mut logbook = Logbook::new();
    let mut observer = tee(&mut logbook, sink.observer());
    let report = campaign().run_observed(jobs, &mut observer);
    drop(observer);
    (report, logbook, sink)
}

/// The tentpole determinism proof: reports and traces are bit-identical
/// with telemetry on vs off, at jobs 1 and 8.
#[test]
fn telemetry_is_invisible_to_report_and_trace_at_any_jobs() {
    let (baseline_report, baseline_logbook) = run_plain(1);
    let baseline_trace = baseline_logbook.to_jsonl();
    let baseline_render = baseline_logbook.render();

    // The engine's own jobs-independence, re-checked here as the anchor.
    let (parallel_report, parallel_logbook) = run_plain(8);
    assert_eq!(parallel_report, baseline_report, "engine jobs contract");
    assert_eq!(parallel_logbook.to_jsonl(), baseline_trace);

    for jobs in [1, 8] {
        let (report, logbook, sink) = run_with_telemetry(jobs);
        assert_eq!(
            report, baseline_report,
            "telemetry perturbed the report at jobs={jobs}"
        );
        assert_eq!(
            logbook.render(),
            baseline_render,
            "telemetry perturbed the rendered trace at jobs={jobs}"
        );
        assert_eq!(
            logbook.to_jsonl(),
            baseline_trace,
            "telemetry perturbed the JSONL trace at jobs={jobs}"
        );
        // And the shadow agrees with what it shadowed.
        sink.crosscheck_campaign(&report)
            .expect("telemetry counters must match the report");
    }
}

/// The exported `edac_events` counters decompose the report's upsets by
/// voltage domain exactly: L3 rides the SoC rail, everything else PMD.
#[test]
fn edac_counters_split_report_upsets_by_domain() {
    let (report, _logbook, sink) = run_with_telemetry(4);
    let snapshot = sink.registry().snapshot();
    for session in &report.sessions {
        let label = session.operating_point.label();
        let mut want_pmd = 0;
        let mut want_soc = 0;
        for (&(level, _severity), &count) in &session.edac_per_level {
            match level {
                CacheLevel::L3 => want_soc += count,
                _ => want_pmd += count,
            }
        }
        let got_pmd =
            snapshot.counter_total("edac_events", &[("voltage", &label), ("domain", "PMD")]);
        let got_soc =
            snapshot.counter_total("edac_events", &[("voltage", &label), ("domain", "SoC")]);
        assert_eq!(got_pmd, want_pmd, "PMD upsets at {label}");
        assert_eq!(got_soc, want_soc, "SoC upsets at {label}");
        assert_eq!(got_pmd + got_soc, session.memory_upsets, "total at {label}");
    }
}

/// Two telemetry-shadowed runs at different worker counts produce the
/// same *snapshot totals* — wave shapes differ (and may differ in the
/// wave histograms), but every simulation-derived series is identical.
#[test]
fn simulation_series_are_jobs_independent() {
    let (_r1, _l1, sink1) = run_with_telemetry(1);
    let (_r8, _l8, sink8) = run_with_telemetry(8);
    let s1 = sink1.registry().snapshot();
    let s8 = sink8.registry().snapshot();
    for name in [
        "sessions_total",
        "runs_total",
        "run_failures_total",
        "edac_events",
        "recoveries_total",
        "telemetry_events_total",
    ] {
        assert_eq!(
            s1.counter_total(name, &[]),
            s8.counter_total(name, &[]),
            "{name} depends on jobs"
        );
    }
    // Speculation absorbs the same trials regardless of wave shape.
    assert_eq!(
        s1.counter_total("wave_trials_absorbed_total", &[]),
        s8.counter_total("wave_trials_absorbed_total", &[]),
    );
}
