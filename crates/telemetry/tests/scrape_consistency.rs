//! The monitoring plane under load, proven harmless and truthful: a
//! campaign runs at `--jobs 8` while eight client threads hammer the
//! [`MonitorServer`](serscale_telemetry::MonitorServer), and
//!
//! 1. every response parses (JSON endpoints through the crate's own
//!    parser, `/metrics` through a minimal Prometheus text parser),
//! 2. counter totals are monotonically nondecreasing scrape over scrape,
//! 3. the final report and Logbook trace are bit-identical to a run with
//!    no server attached — the scrape storm observed, it never perturbed.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport};
use serscale_core::trace::{tee, Logbook};
use serscale_telemetry::serve::http_get;
use serscale_telemetry::{json, TelemetryOptions, TelemetrySink};

const SCALE: f64 = 0.005;
const SEED: u64 = 20231028;
const SCRAPERS: usize = 8;

fn campaign() -> Campaign {
    let mut config = CampaignConfig::paper_scaled(SCALE);
    config.seed = SEED;
    Campaign::new(config)
}

fn run_without_server(jobs: usize) -> (CampaignReport, String) {
    let sink = TelemetrySink::in_memory(TelemetryOptions::default());
    let mut logbook = Logbook::new();
    let mut observer = tee(&mut logbook, sink.observer());
    let report = campaign().run_observed(jobs, &mut observer);
    drop(observer);
    (report, logbook.to_jsonl())
}

/// Parses Prometheus text exposition into per-name value totals,
/// rejecting any line that is neither a comment nor `series value`.
/// Histogram sample lines (`_bucket`/`_sum`/`_count`) keep their
/// suffixed names so bucket counts don't pollute base-name totals.
fn parse_prom(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut totals = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        let name = series
            .split_once('{')
            .map(|(name, _)| name)
            .unwrap_or(series);
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        *totals.entry(name.to_string()).or_insert(0.0) += value;
    }
    Ok(totals)
}

/// Counter metrics whose totals must never decrease between scrapes.
const MONOTONE: &[&str] = &[
    "runs_total",
    "edac_events",
    "telemetry_events_total",
    "waves_total",
    "wave_trials_absorbed_total",
];

struct ScrapeStats {
    metrics_scrapes: u64,
    progress_scrapes: u64,
}

fn scrape_loop(addr: SocketAddr, stop: Arc<AtomicBool>, id: usize) -> Result<ScrapeStats, String> {
    let mut stats = ScrapeStats {
        metrics_scrapes: 0,
        progress_scrapes: 0,
    };
    let mut last_totals: BTreeMap<String, f64> = BTreeMap::new();
    // Keep scraping until the run ends, then one final pass so every
    // thread sees the end-of-run state at least once.
    let mut final_pass = false;
    loop {
        if stop.load(Ordering::Acquire) {
            if final_pass {
                break;
            }
            final_pass = true;
        }
        let (status, body) =
            http_get(addr, "/metrics").map_err(|e| format!("scraper {id}: /metrics: {e}"))?;
        if status != 200 {
            return Err(format!("scraper {id}: /metrics returned {status}"));
        }
        let totals = parse_prom(&body).map_err(|e| format!("scraper {id}: {e}"))?;
        for name in MONOTONE {
            let prev = last_totals.get(*name).copied().unwrap_or(0.0);
            let now = totals.get(*name).copied().unwrap_or(0.0);
            if now < prev {
                return Err(format!(
                    "scraper {id}: {name} went backwards: {prev} -> {now}"
                ));
            }
        }
        last_totals = totals;
        stats.metrics_scrapes += 1;

        let (status, body) =
            http_get(addr, "/progress").map_err(|e| format!("scraper {id}: /progress: {e}"))?;
        if status != 200 {
            return Err(format!("scraper {id}: /progress returned {status}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("scraper {id}: /progress: {e}"))?;
        if let Some(eta) = doc.get("eta_seconds").and_then(json::JsonValue::as_f64) {
            if !(eta.is_finite() && eta >= 0.0) {
                return Err(format!("scraper {id}: bad ETA {eta}"));
            }
        }
        stats.progress_scrapes += 1;
    }
    Ok(stats)
}

/// The tentpole proof: a jobs=8 campaign with the server attached and
/// eight concurrent scrapers produces bit-identical science to a
/// server-less run — and every scrape along the way was well-formed and
/// monotone.
#[test]
fn hammered_monitoring_server_never_perturbs_the_run() {
    let (baseline_report, baseline_trace) = run_without_server(1);

    for jobs in [1, 8] {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut server = sink.serve("127.0.0.1:0").expect("bind monitor");
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scrapers: Vec<_> = (0..SCRAPERS)
            .map(|id| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || scrape_loop(addr, stop, id))
            })
            .collect();

        let mut logbook = Logbook::new();
        let mut observer = tee(&mut logbook, sink.observer());
        let report = campaign().run_observed(jobs, &mut observer);
        drop(observer);
        sink.set_campaign_status(|status| status.done = true);
        stop.store(true, Ordering::Release);

        let mut metrics_scrapes = 0;
        for scraper in scrapers {
            let stats = scraper
                .join()
                .expect("scraper panicked")
                .unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));
            assert!(stats.metrics_scrapes >= 1, "jobs={jobs}: scraper idle");
            assert!(stats.progress_scrapes >= 1, "jobs={jobs}: scraper idle");
            metrics_scrapes += stats.metrics_scrapes;
        }
        assert!(metrics_scrapes as usize >= SCRAPERS, "storm too small");
        server.shutdown();

        assert_eq!(
            report, baseline_report,
            "jobs={jobs}: scrape storm perturbed the report"
        );
        assert_eq!(
            logbook.to_jsonl(),
            baseline_trace,
            "jobs={jobs}: scrape storm perturbed the trace"
        );
        sink.crosscheck_campaign(&report)
            .expect("counters agree with the report despite the storm");
    }
}

/// After a run, every endpoint serves a parseable, mutually consistent
/// view: `/campaign` totals equal the registry's, `/spans` is valid
/// JSONL, `/healthz` stays ok, and `/metrics` totals match the report.
#[test]
fn endpoints_agree_with_the_final_report() {
    let sink = TelemetrySink::in_memory(TelemetryOptions::default());
    let mut observer = sink.observer();
    let report = campaign().run_observed(4, &mut observer);
    drop(observer);
    sink.set_campaign_status(|status| {
        status.config_fingerprint = Some(0x5e5c);
        status.done = true;
    });
    let server = sink.serve("127.0.0.1:0").expect("bind monitor");
    let addr = server.addr();

    let (_, body) = http_get(addr, "/metrics").expect("/metrics");
    let totals = parse_prom(&body).expect("prom parses");
    let report_runs: u64 = report.sessions.iter().map(|s| s.runs).sum();
    let report_upsets: u64 = report.sessions.iter().map(|s| s.memory_upsets).sum();
    assert_eq!(totals["runs_total"], report_runs as f64);
    assert_eq!(totals["edac_events"], report_upsets as f64);

    let (_, body) = http_get(addr, "/campaign").expect("/campaign");
    let doc = json::parse(&body).expect("campaign parses");
    assert_eq!(
        doc.get("trials_done").and_then(json::JsonValue::as_f64),
        Some(report_runs as f64)
    );
    assert_eq!(doc.get("done"), Some(&json::JsonValue::Bool(true)));
    assert!(
        doc.get("waves_merged")
            .and_then(json::JsonValue::as_f64)
            .expect("waves_merged")
            > 0.0
    );

    let (_, body) = http_get(addr, "/healthz").expect("/healthz");
    let doc = json::parse(&body).expect("healthz parses");
    assert_eq!(
        doc.get("status").and_then(json::JsonValue::as_str),
        Some("ok")
    );

    let (_, body) = http_get(addr, "/spans").expect("/spans");
    let spans = json::parse_lines(&body).expect("spans parse");
    assert!(!spans.is_empty(), "a campaign closes spans");

    let (_, body) = http_get(addr, "/progress").expect("/progress");
    let doc = json::parse(&body).expect("progress parses");
    assert_eq!(
        doc.get("trials").and_then(json::JsonValue::as_f64),
        Some(report_runs as f64)
    );
}
