//! Fuzz and corpus tests for the `POST /campaigns` spec schema.
//!
//! The schema's contract: **an arbitrary JSON document never panics the
//! server** — it either validates into a [`CampaignSpec`] that
//! round-trips through the normalized JSON rendering unchanged, or it
//! yields a structured [`SpecError`] naming the offending field. The
//! property half fuzzes that contract with adversarial values (NaN,
//! infinities, 2^53 boundaries, off-grid voltages, hostile bytes); the
//! table half pins the known-bad corpus from the issue — NaN voltage,
//! zero trials, overlapping voltage/frequency domains — plus every other
//! rejection class the schema documents.

use proptest::prelude::*;

use serscale_core::spec::{CampaignSpec, RawCampaignSpec, RawSessionSpec};
use serscale_telemetry::control::{parse_spec, spec_to_json};

/// Adversarial f64s mixed into every fuzzed numeric field.
const SPECIALS: [f64; 10] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -0.0,
    f64::MIN_POSITIVE,
    f64::EPSILON,
    9_007_199_254_740_992.0, // 2^53: the exactness boundary
    9_007_199_254_740_994.0, // 2^53 + 2: first even integer past it
    1e300,
    -1.0,
];

/// A fuzzed numeric field: sometimes a special, sometimes a small
/// integer-ish value near the valid ranges, sometimes a raw unit float.
fn fuzz_number(rng_pick: usize, unit: f64, scaled: f64) -> f64 {
    match rng_pick % 3 {
        0 => SPECIALS[(rng_pick / 3) % SPECIALS.len()],
        1 => scaled.floor(),
        _ => unit * scaled,
    }
}

proptest! {
    /// Any carrier full of arbitrary doubles either validates (and then
    /// the normalized JSON round-trips to the identical spec) or fails
    /// with a structured error naming a field — and never panics.
    #[test]
    fn arbitrary_raw_specs_validate_or_reject_without_panicking(
        pick in prop::collection::vec(any::<usize>(), 8),
        units in prop::collection::vec(0.0f64..1.0, 8),
        n_sessions in 0usize..4,
        with_sessions in any::<bool>(),
        with_scale in any::<bool>(),
        platform in prop::sample::select(vec![
            None,
            Some("xgene2"),
            Some("zynq-mpsoc"),
            Some("coffee-lake"),
            Some(""),
            Some("XGENE2"),
        ]),
    ) {
        let raw = RawCampaignSpec {
            name: None,
            tenant: None,
            platform: platform.map(str::to_string),
            seed: Some(fuzz_number(pick[0], units[0], 1e16)),
            scale: with_scale.then(|| fuzz_number(pick[1], units[1], 2.0)),
            jobs: Some(fuzz_number(pick[2], units[2], 100.0)),
            vmin_trials: Some(fuzz_number(pick[3], units[3], 200_000.0)),
            resume: Some(fuzz_number(pick[4], units[4], 10.0)),
            sessions: with_sessions.then(|| {
                (0..n_sessions)
                    .map(|i| RawSessionSpec {
                        pmd_mv: fuzz_number(pick[5].wrapping_add(i), units[5], 1100.0),
                        soc_mv: fuzz_number(pick[6].wrapping_add(i), units[6], 1100.0),
                        freq_mhz: fuzz_number(pick[7].wrapping_add(i), units[7], 2700.0),
                        minutes: units[(i + 1) % 8] * 12_000.0,
                    })
                    .collect()
            }),
        };
        match CampaignSpec::try_from(raw) {
            Ok(spec) => {
                let rendered = spec_to_json(&spec);
                let reparsed = parse_spec(&rendered);
                prop_assert_eq!(
                    reparsed.as_ref(),
                    Ok(&spec),
                    "normalized rendering failed to round-trip: {}",
                    rendered
                );
            }
            Err(err) => {
                prop_assert!(!err.field.is_empty(), "error without a field");
                prop_assert!(!err.reason.is_empty(), "error without a reason");
            }
        }
    }

    /// Any JSON document assembled from fuzzed fields — known and unknown
    /// keys, wrong types, hostile numbers — parses to Ok-or-structured-400
    /// without panicking.
    #[test]
    fn arbitrary_json_documents_never_panic_the_parser(
        keys in prop::collection::vec(
            prop::sample::select(vec![
                "name", "tenant", "platform", "seed", "scale", "jobs",
                "vmin_trials", "resume", "sessions", "sclae", "bogus", "",
            ]),
            0..6,
        ),
        numbers in prop::collection::vec(any::<usize>(), 6),
        units in prop::collection::vec(0.0f64..1.0, 6),
        as_string in any::<bool>(),
    ) {
        let mut body = String::from("{");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let n = fuzz_number(numbers[i], units[i], 1e10);
            // Half the time hand the field a wrong-typed value.
            if as_string && i % 2 == 0 {
                body.push_str(&format!("\"{key}\":\"{n}\""));
            } else if n.is_finite() {
                body.push_str(&format!("\"{key}\":{n}"));
            } else {
                body.push_str(&format!("\"{key}\":null"));
            }
        }
        body.push('}');
        match parse_spec(&body) {
            Ok(spec) => {
                let rendered = spec_to_json(&spec);
                let reparsed = parse_spec(&rendered);
                prop_assert_eq!(reparsed.as_ref(), Ok(&spec));
            }
            Err(err) => prop_assert!(!err.field.is_empty(), "{}", body),
        }
    }

    /// Raw bytes — not even JSON — never panic the parser either.
    #[test]
    fn hostile_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let body = String::from_utf8_lossy(&bytes);
        if let Err(err) = parse_spec(&body) {
            prop_assert!(!err.reason.is_empty());
        }
    }
}

/// The known-bad corpus: every rejection class the schema documents, as
/// (body, expected offending field). The table is the service's 400
/// contract — a client can trust the `field` to point at what to fix.
#[test]
fn known_bad_specs_are_rejected_with_the_right_field() {
    let session =
        |pmd: &str| format!("{{\"pmd_mv\":{pmd},\"soc_mv\":950,\"freq_mhz\":2400,\"minutes\":10}}");
    let corpus: Vec<(String, &str)> = vec![
        // NaN / non-finite voltage (JSON has no NaN literal; a null or
        // string where a number belongs is the wire-side equivalent).
        (
            format!("{{\"sessions\":[{}]}}", session("null")),
            "sessions[0].pmd_mv",
        ),
        (
            format!("{{\"sessions\":[{}]}}", session("\"NaN\"")),
            "sessions[0].pmd_mv",
        ),
        // Zero trials.
        ("{\"vmin_trials\":0}".to_string(), "vmin_trials"),
        // Overlapping domains: two sessions at the same operating point.
        (
            format!("{{\"sessions\":[{0},{0}]}}", session("940")),
            "sessions[1]",
        ),
        // Out-of-range and off-grid values.
        ("{\"scale\":0}".to_string(), "scale"),
        ("{\"scale\":1.5}".to_string(), "scale"),
        ("{\"scale\":-0.5}".to_string(), "scale"),
        ("{\"seed\":1.5}".to_string(), "seed"),
        ("{\"seed\":-1}".to_string(), "seed"),
        ("{\"seed\":9007199254740994}".to_string(), "seed"),
        ("{\"jobs\":0}".to_string(), "jobs"),
        ("{\"jobs\":65}".to_string(), "jobs"),
        ("{\"resume\":-2}".to_string(), "resume"),
        // Voltage above nominal, below floor, off the 5 mV step.
        (
            format!("{{\"sessions\":[{}]}}", session("985")),
            "sessions[0]",
        ),
        (
            format!("{{\"sessions\":[{}]}}", session("490")),
            "sessions[0]",
        ),
        (
            format!("{{\"sessions\":[{}]}}", session("913")),
            "sessions[0]",
        ),
        // Frequency off the PLL grid.
        (
            "{\"sessions\":[{\"pmd_mv\":940,\"soc_mv\":950,\"freq_mhz\":1000,\
             \"minutes\":10}]}"
                .to_string(),
            "sessions[0]",
        ),
        // Zero-length session, empty schedule, missing field.
        (
            "{\"sessions\":[{\"pmd_mv\":940,\"soc_mv\":950,\"freq_mhz\":2400,\
             \"minutes\":0}]}"
                .to_string(),
            "sessions[0].minutes",
        ),
        ("{\"sessions\":[]}".to_string(), "sessions"),
        (
            "{\"sessions\":[{\"pmd_mv\":940}]}".to_string(),
            "sessions[0].soc_mv",
        ),
        // Mutual exclusion and unknown fields.
        (
            format!("{{\"scale\":0.5,\"sessions\":[{}]}}", session("940")),
            "scale",
        ),
        ("{\"sclae\":0.5}".to_string(), "sclae"),
        // Unknown platforms, wrong-typed platform, and a session valid on
        // X-Gene 2 but off the selected platform's rails.
        ("{\"platform\":\"coffee-lake\"}".to_string(), "platform"),
        ("{\"platform\":7}".to_string(), "platform"),
        (
            format!(
                "{{\"platform\":\"zynq-mpsoc\",\"sessions\":[{}]}}",
                session("940")
            ),
            "sessions[0]",
        ),
        // Bad identifiers.
        ("{\"name\":\"no spaces allowed\"}".to_string(), "name"),
        ("{\"tenant\":\"\"}".to_string(), "tenant"),
        // Type confusion at the top level.
        ("{\"seed\":\"twelve\"}".to_string(), "seed"),
        ("{\"sessions\":7}".to_string(), "sessions"),
        ("[1,2,3]".to_string(), "body"),
        ("not json at all".to_string(), "body"),
    ];
    for (body, expected_field) in corpus {
        let err = parse_spec(&body).expect_err(&format!("must reject: {body}"));
        assert!(
            err.field.starts_with(expected_field),
            "{body}\n  rejected via field `{}` (expected `{expected_field}`): {}",
            err.field,
            err.reason
        );
    }
}

/// Good specs from every accepted shape validate and round-trip.
#[test]
fn known_good_specs_round_trip() {
    let corpus = [
        "{}",
        "{\"seed\":7}",
        "{\"name\":\"nightly.sweep-2\",\"tenant\":\"lab_a\",\"scale\":0.25}",
        "{\"jobs\":8,\"vmin_trials\":500}",
        "{\"sessions\":[{\"pmd_mv\":940,\"soc_mv\":950,\"freq_mhz\":2400,\
         \"minutes\":30},{\"pmd_mv\":920,\"soc_mv\":920,\"freq_mhz\":2400,\
         \"minutes\":30.5}]}",
        "{\"resume\":3}",
        "{\"platform\":\"xgene2\"}",
        "{\"platform\":\"zynq-mpsoc\",\"seed\":9}",
        "{\"platform\":\"zynq-mpsoc\",\"sessions\":[{\"pmd_mv\":770,\
         \"soc_mv\":850,\"freq_mhz\":1500,\"minutes\":10}]}",
    ];
    for body in corpus {
        let spec = parse_spec(body).unwrap_or_else(|e| panic!("{body}: {e}"));
        let rendered = spec_to_json(&spec);
        assert_eq!(
            parse_spec(&rendered).as_ref(),
            Ok(&spec),
            "round-trip changed the spec: {body} -> {rendered}"
        );
    }
}
