//! The convergence plane under load and under replay:
//!
//! 1. `/convergence` is hammered while jobs=1 and jobs=8 campaigns run —
//!    every snapshot parses, per-cell event counts only ever grow, and
//!    the final scraped document byte-matches both the sink's own
//!    rendering and a cold [`ConvergenceTracker::replay`] of the
//!    finished journal (the `repro inspect --convergence` path).
//! 2. The layer is provably observe-only: a journaled campaign with the
//!    full telemetry observer attached produces bit-identical reports,
//!    Logbook traces and `journal.jsonl` bytes to a run with no
//!    telemetry at all, at jobs 1 and 8.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport, CampaignRunOptions};
use serscale_core::journal::start_or_resume;
use serscale_core::session::RetryPolicy;
use serscale_core::trace::{tee, Logbook, NoopObserver};
use serscale_telemetry::convergence::ConvergenceTracker;
use serscale_telemetry::serve::http_get;
use serscale_telemetry::{json, TelemetryOptions, TelemetrySink};

const SCALE: f64 = 0.005;
const SEED: u64 = 20231028;
const SCRAPERS: usize = 4;

fn campaign() -> Campaign {
    let mut config = CampaignConfig::paper_scaled(SCALE);
    config.seed = SEED;
    Campaign::new(config)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "serscale-convergence-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flattens a `/convergence` document into per-cell event counts keyed
/// by `(voltage, domain, array)`, failing on any malformed structure.
fn cell_counts(body: &str) -> Result<BTreeMap<(String, String, String), f64>, String> {
    let doc = json::parse(body.trim_end()).map_err(|e| format!("convergence parse: {e}"))?;
    let Some(json::JsonValue::Array(points)) = doc.get("points") else {
        return Err(format!("no points array in {body}"));
    };
    let mut counts = BTreeMap::new();
    for point in points {
        let voltage = point
            .get("voltage")
            .and_then(json::JsonValue::as_str)
            .ok_or("point without voltage")?
            .to_string();
        let Some(json::JsonValue::Array(cells)) = point.get("cells") else {
            return Err("point without cells".to_string());
        };
        for cell in cells {
            let domain = cell
                .get("domain")
                .and_then(json::JsonValue::as_str)
                .ok_or("cell without domain")?
                .to_string();
            let array = cell
                .get("array")
                .and_then(json::JsonValue::as_str)
                .ok_or("cell without array")?
                .to_string();
            let events = cell
                .get("events")
                .and_then(json::JsonValue::as_f64)
                .ok_or("cell without events")?;
            let sum = ["masked", "due", "sdc"]
                .iter()
                .map(|k| cell.get(k).and_then(json::JsonValue::as_f64).unwrap_or(-1.0))
                .sum::<f64>();
            if sum != events {
                return Err(format!("cell {voltage}/{domain}/{array}: classes sum {sum} != events {events}"));
            }
            counts.insert((voltage.clone(), domain, array), events);
        }
    }
    Ok(counts)
}

fn scrape_convergence(
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    id: usize,
) -> Result<u64, String> {
    let mut scrapes = 0;
    let mut last: BTreeMap<(String, String, String), f64> = BTreeMap::new();
    let mut final_pass = false;
    loop {
        if stop.load(Ordering::Acquire) {
            if final_pass {
                break;
            }
            final_pass = true;
        }
        let (status, body) = http_get(addr, "/convergence")
            .map_err(|e| format!("scraper {id}: /convergence: {e}"))?;
        if status != 200 {
            return Err(format!("scraper {id}: /convergence returned {status}"));
        }
        let counts = cell_counts(&body).map_err(|e| format!("scraper {id}: {e}"))?;
        for (key, prev) in &last {
            let now = counts.get(key).copied().unwrap_or(-1.0);
            if now < *prev {
                return Err(format!(
                    "scraper {id}: cell {key:?} went backwards: {prev} -> {now}"
                ));
            }
        }
        last = counts;
        scrapes += 1;
    }
    Ok(scrapes)
}

/// The scrape-storm extension: `/convergence` hammered at jobs 1 and 8.
/// Every snapshot parses, per-cell counts are monotone nondecreasing,
/// and the final snapshot byte-matches the journal replay.
#[test]
fn convergence_endpoint_survives_a_scrape_storm_and_matches_replay() {
    for jobs in [1usize, 8] {
        let dir = temp_dir(&format!("storm-j{jobs}"));
        let mut config = CampaignConfig::paper_scaled(SCALE);
        config.seed = SEED;
        let (mut journal, recovered) = start_or_resume(&dir, &config).expect("journal");
        assert!(recovered.is_none(), "fresh directory");

        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut server = sink.serve("127.0.0.1:0").expect("bind monitor");
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scrapers: Vec<_> = (0..SCRAPERS)
            .map(|id| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || scrape_convergence(addr, stop, id))
            })
            .collect();

        let mut observer = sink.observer();
        let report = Campaign::new(config).run_recoverable(
            CampaignRunOptions {
                jobs,
                retry: RetryPolicy::standard(),
                journal: Some(&mut journal),
                recovered: None,
                cancel: None,
            },
            &mut observer,
        );
        drop(observer);
        stop.store(true, Ordering::Release);
        for scraper in scrapers {
            let scrapes = scraper
                .join()
                .expect("scraper panicked")
                .unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));
            assert!(scrapes >= 1, "jobs={jobs}: scraper idle");
        }

        // The final scrape, the sink's own rendering, and a cold journal
        // replay must be the same bytes.
        let (status, live_body) = http_get(addr, "/convergence").expect("final scrape");
        assert_eq!(status, 200);
        server.shutdown();
        drop(journal);
        assert_eq!(live_body, sink.convergence_json(), "jobs={jobs}");
        let replayed = ConvergenceTracker::replay(&dir)
            .expect("replay")
            .snapshot()
            .to_json();
        assert_eq!(
            live_body, replayed,
            "jobs={jobs}: journal replay diverges from the live endpoint"
        );
        sink.crosscheck_campaign(&report)
            .expect("convergence counts agree with the report");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The observe-only proof for the new layer: with the full telemetry
/// observer (convergence plane included) attached, a journaled campaign
/// produces bit-identical reports, traces and journal bytes to a bare
/// run — at jobs 1 and 8.
#[test]
fn convergence_layer_on_or_off_journals_identically() {
    let run = |jobs: usize, telemetry: bool, tag: &str| -> (CampaignReport, String, Vec<u8>) {
        let dir = temp_dir(tag);
        let mut config = CampaignConfig::paper_scaled(SCALE);
        config.seed = SEED;
        let (mut journal, _) = start_or_resume(&dir, &config).expect("journal");
        let options = |journal| CampaignRunOptions {
            jobs,
            retry: RetryPolicy::standard(),
            journal: Some(journal),
            recovered: None,
            cancel: None,
        };
        let mut logbook = Logbook::new();
        let report = if telemetry {
            let sink = TelemetrySink::in_memory(TelemetryOptions::default());
            let mut observer = tee(&mut logbook, sink.observer());
            let report = Campaign::new(config).run_recoverable(options(&mut journal), &mut observer);
            drop(observer);
            sink.crosscheck_campaign(&report).expect("crosscheck");
            report
        } else {
            let mut observer = tee(&mut logbook, NoopObserver);
            Campaign::new(config).run_recoverable(options(&mut journal), &mut observer)
        };
        drop(journal);
        let bytes = std::fs::read(dir.join("journal.jsonl")).expect("journal bytes");
        std::fs::remove_dir_all(&dir).ok();
        (report, logbook.to_jsonl(), bytes)
    };

    let (base_report, base_trace, base_journal) = run(1, false, "off-j1");
    for jobs in [1usize, 8] {
        let (report, trace, journal) = run(jobs, true, &format!("on-j{jobs}"));
        assert_eq!(report, base_report, "jobs={jobs}: report diverged");
        assert_eq!(trace, base_trace, "jobs={jobs}: trace diverged");
        assert_eq!(
            journal, base_journal,
            "jobs={jobs}: journal bytes diverged with the convergence layer on"
        );
    }
    // And the off-path is itself jobs-stable, closing the square.
    let (report8, trace8, journal8) = run(8, false, "off-j8");
    assert_eq!(report8, base_report);
    assert_eq!(trace8, base_trace);
    assert_eq!(journal8, base_journal);
}

/// The `/progress` document carries the convergence headline after a
/// session ends, with clamped finite values.
#[test]
fn progress_endpoint_names_the_widest_cell() {
    let sink = TelemetrySink::in_memory(TelemetryOptions::default());
    let mut observer = sink.observer();
    let report = campaign().run_observed(2, &mut observer);
    drop(observer);
    let server = sink.serve("127.0.0.1:0").expect("bind monitor");
    let (_, body) = http_get(server.addr(), "/progress").expect("/progress");
    let doc = json::parse(&body).expect("progress parses");
    let total = doc
        .get("cells_total")
        .and_then(json::JsonValue::as_f64)
        .expect("cells_total present after a campaign");
    assert!(total > 0.0, "{body}");
    let upsets: u64 = report.sessions.iter().map(|s| s.memory_upsets).sum();
    if upsets > 0 {
        let widest = doc
            .get("widest_cell")
            .and_then(json::JsonValue::as_str)
            .expect("events happened, a widest cell exists");
        assert!(widest.contains('/'), "{widest}");
        if let Some(secs) = doc
            .get("widest_projected_sim_seconds")
            .and_then(json::JsonValue::as_f64)
        {
            assert!(secs.is_finite() && secs >= 0.0, "{body}");
        }
    }
}
