//! Regenerates the committed platform spec files from the built-ins:
//!
//! ```text
//! cargo run -p serscale-telemetry --example dump_platforms -- platforms/
//! ```
//!
//! The output is the normalized wire rendering of each built-in platform;
//! `tests/platform_files.rs` in `serscale-bench` pins the committed files
//! against it so they cannot drift from the code.

use serscale_soc::PlatformSpec;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "platforms".to_string());
    std::fs::create_dir_all(&dir).expect("create output directory");
    for name in PlatformSpec::BUILTIN_NAMES {
        let spec = PlatformSpec::builtin(name).expect("builtin");
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        let body = serscale_telemetry::platform_to_json(&spec) + "\n";
        std::fs::write(&path, body).expect("write spec file");
        println!("wrote {}", path.display());
    }
}
