//! A live monitoring plane: a dependency-free HTTP/1.1 server over the
//! sink's registry, tracer, progress reporter and campaign status.
//!
//! The paper's beam campaigns run for hours; the reproduction's run in
//! seconds — but the *operational* questions are the same: is the run
//! alive, how far along is it, is the journal keeping up, how busy are
//! the workers. [`MonitorServer`] answers them over plain HTTP so `curl`
//! and Prometheus can watch a campaign without any client library:
//!
//! | endpoint    | payload                                                |
//! |-------------|--------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of every live series        |
//! | `/healthz`  | liveness, journal fsync lag, quarantine count (JSON)   |
//! | `/progress` | trials done, σ̂ estimate, fraction, ETA (JSON)          |
//! | `/spans`    | the most recent closed spans (JSONL, newest last)      |
//! | `/campaign` | journal-backed status: fingerprint, resume, waves      |
//! | `/`         | a plain-text index of the above                        |
//!
//! With a [`ControlPlane`] attached
//! ([`MonitorState::with_control`], usually via
//! [`TelemetrySink::serve_control`](crate::export::TelemetrySink::serve_control))
//! the plane becomes read-write — campaign-as-a-service:
//!
//! | endpoint                 | method   | behaviour                         |
//! |--------------------------|----------|-----------------------------------|
//! | `/campaigns`             | `POST`   | submit a JSON spec → `202` + id   |
//! | `/campaigns`             | `GET`    | list every job's status           |
//! | `/campaigns/{id}`        | `GET`    | one job's status document         |
//! | `/campaigns/{id}`        | `DELETE` | cancel (wave-boundary, resumable) |
//! | `/campaigns/{id}/report` | `GET`    | the bit-stable golden report      |
//! | `/campaigns/{id}/events` | `GET`    | live JSONL event stream (chunked) |
//! | `/shutdown`              | `POST`   | graceful drain (no signals)       |
//!
//! `/campaign` (the PR 5 singular endpoint) becomes an alias for the
//! current job's `/campaigns/{id}` document when a control plane is
//! attached, and keeps serving the legacy status cell otherwise — the
//! scrape-storm suite runs against both shapes unchanged.
//!
//! ## Observe-only, enforced structurally
//!
//! The server holds *read* handles: a registry clone (snapshots merge
//! shard data without blocking writers), the tracer `Arc`, the progress
//! mutex and a small status cell the driver updates at run boundaries.
//! There is no channel from a request handler back into the engine, so a
//! scrape storm can slow the host down but can never change a report —
//! `tests/scrape_consistency.rs` hammers a live campaign and diffs its
//! artifacts against a server-less run to prove it.
//!
//! ## Anatomy
//!
//! One accept thread pushes connections into an `mpsc` channel drained
//! by `WORKERS` handler threads (the receiver is shared behind a
//! mutex — `std::net` only, no external crates). Sockets carry short
//! read/write timeouts so one stalled client cannot wedge a worker.
//! [`MonitorServer::shutdown`] flips an atomic flag, nudges the accept
//! loop awake with a loopback connection, drops the channel sender and
//! joins every thread — a bounded, graceful stop with no `unsafe` signal
//! handling. An abrupt kill is also safe: the server owns no run state,
//! so the journal's torn-tail recovery covers it like any other crash.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use serscale_core::journal::SyncProbe;

use crate::control::ControlPlane;
use crate::json;
use crate::metrics::{Registry, Shard};
use crate::progress::Progress;
use crate::span::Tracer;

/// Handler threads draining the accept queue.
const WORKERS: usize = 4;
/// Per-socket read/write timeout: a stalled client loses its slot.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on an accepted request head (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Upper bound on a request body (`POST /campaigns` specs are small).
const MAX_BODY_BYTES: usize = 64 * 1024;
/// `/spans` returns at most this many of the newest closed spans.
const SPAN_WINDOW: usize = 64;
/// How often an event stream polls its job for fresh lines.
const EVENT_POLL: Duration = Duration::from_millis(25);
/// Hard cap on one event-stream connection, so an abandoned client
/// cannot pin a handler thread forever.
const EVENT_STREAM_CAP: Duration = Duration::from_secs(600);

/// Slow-changing campaign facts the driver publishes at run boundaries
/// (the fast-changing numbers live in the registry and progress state).
#[derive(Debug, Clone, Default)]
pub struct CampaignStatus {
    /// The platform the campaign runs on (the spec's `name`), if known.
    pub platform: Option<String>,
    /// The config fingerprint the journal locks resume decisions to
    /// (rendered in hex, like the journal header), if known.
    pub config_fingerprint: Option<u64>,
    /// The journal path, when the run is journaled.
    pub journal: Option<String>,
    /// Trials replayed from a prior journal instead of re-executed.
    pub resumed_trials: u64,
    /// Whether the campaign has finished (the server may linger after).
    pub done: bool,
}

/// Service-side request telemetry: the structured JSONL access log, the
/// per-endpoint registry series and the last-accept stamp `/healthz`
/// reports. Created by [`MonitorState::with_control`] — the read-only
/// monitoring plane records nothing, so its `/metrics` stays
/// byte-identical to the exported `metrics.prom` artifact.
struct ServiceTelemetry {
    /// A shard of the *server-level* registry (never a campaign's), so
    /// the request series ride the existing `/metrics` renderer.
    shard: Arc<Shard>,
    /// One wide JSONL event per request, newest last. Every line is
    /// verified against the in-repo RFC-8259 parser before it lands.
    log: Mutex<String>,
    /// Wall-clock seconds of the most recently finished request.
    last_accept: Mutex<Option<f64>>,
}

/// One finished request, as the access log and registry see it.
struct AccessRecord<'a> {
    tenant: Option<&'a str>,
    method: &'a str,
    template: &'static str,
    status: u16,
    bytes: usize,
    micros: u64,
    campaign: Option<u64>,
}

impl ServiceTelemetry {
    fn record(&self, rec: &AccessRecord<'_>) {
        let unix_s = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let mut line = String::from("{");
        line.push_str(&format!("\"t_unix_s\":{}", json::number(unix_s)));
        match rec.tenant {
            Some(tenant) => line.push_str(&format!(",\"tenant\":{}", json::escape(tenant))),
            None => line.push_str(",\"tenant\":null"),
        }
        line.push_str(&format!(",\"method\":{}", json::escape(rec.method)));
        line.push_str(&format!(",\"path\":{}", json::escape(rec.template)));
        line.push_str(&format!(",\"status\":{}", rec.status));
        line.push_str(&format!(",\"bytes\":{}", rec.bytes));
        line.push_str(&format!(",\"micros\":{}", rec.micros));
        match rec.campaign {
            Some(id) => line.push_str(&format!(",\"campaign\":{id}")),
            None => line.push_str(",\"campaign\":null"),
        }
        line.push('}');
        json::parse(&line).expect("access-log line must be valid JSON");
        let class = format!("{}xx", rec.status / 100);
        self.shard
            .counter(
                "http_requests_total",
                &[
                    ("method", rec.method),
                    ("path", rec.template),
                    ("class", &class),
                ],
            )
            .inc();
        self.shard
            .histogram(
                "http_request_duration_seconds",
                &[("method", rec.method), ("path", rec.template)],
            )
            .observe(rec.micros as f64 / 1e6);
        self.shard
            .counter("http_response_bytes_total", &[("path", rec.template)])
            .add(rec.bytes as u64);
        let mut log = self.log.lock().expect("access log poisoned");
        log.push_str(&line);
        log.push('\n');
        *self.last_accept.lock().expect("last-accept poisoned") = Some(unix_s);
    }
}

/// Maps a concrete request path onto its bounded-cardinality endpoint
/// template, extracting the campaign id when the path names one.
fn route_template(path: &str) -> (&'static str, Option<u64>) {
    match path {
        "/" => ("/", None),
        "/metrics" => ("/metrics", None),
        "/healthz" => ("/healthz", None),
        "/progress" => ("/progress", None),
        "/convergence" => ("/convergence", None),
        "/spans" => ("/spans", None),
        "/campaign" => ("/campaign", None),
        "/campaigns" => ("/campaigns", None),
        "/tenants" => ("/tenants", None),
        "/shutdown" => ("/shutdown", None),
        _ => match path.strip_prefix("/campaigns/") {
            Some(rest) => {
                let (id_str, tail) = match rest.split_once('/') {
                    Some((id, tail)) => (id, Some(tail)),
                    None => (rest, None),
                };
                let id = id_str.parse::<u64>().ok();
                match tail {
                    None => ("/campaigns/{id}", id),
                    Some("report") => ("/campaigns/{id}/report", id),
                    Some("events") => ("/campaigns/{id}/events", id),
                    Some("convergence") => ("/campaigns/{id}/convergence", id),
                    Some(_) => ("(other)", None),
                }
            }
            None => ("(other)", None),
        },
    }
}

/// Everything a request handler may read. Cloning is cheap — the fields
/// are handles into state owned elsewhere.
#[derive(Clone)]
pub struct MonitorState {
    registry: Registry,
    tracer: Arc<Tracer>,
    progress: Arc<Mutex<Progress>>,
    status: Arc<Mutex<CampaignStatus>>,
    probe: Arc<Mutex<Option<SyncProbe>>>,
    convergence: Arc<Mutex<crate::convergence::ConvergenceTracker>>,
    control: Option<Arc<ControlPlane>>,
    service: Option<Arc<ServiceTelemetry>>,
    started: Instant,
}

impl MonitorState {
    /// Bundles read handles for the server. Called by
    /// [`TelemetrySink::serve`](crate::export::TelemetrySink::serve);
    /// public for tests that assemble a state by hand.
    pub fn new(
        registry: Registry,
        tracer: Arc<Tracer>,
        progress: Arc<Mutex<Progress>>,
        status: Arc<Mutex<CampaignStatus>>,
        probe: Arc<Mutex<Option<SyncProbe>>>,
        convergence: Arc<Mutex<crate::convergence::ConvergenceTracker>>,
    ) -> Self {
        MonitorState {
            registry,
            tracer,
            progress,
            status,
            probe,
            convergence,
            control: None,
            service: None,
            started: Instant::now(),
        }
    }

    /// Attaches a [`ControlPlane`], turning the read-only monitoring
    /// plane into the campaign service (the `/campaigns` routes above)
    /// and switching on per-request service telemetry: the JSONL access
    /// log plus `http_*` series in the server-level registry.
    #[must_use]
    pub fn with_control(mut self, control: Arc<ControlPlane>) -> Self {
        self.control = Some(control);
        self.service = Some(Arc::new(ServiceTelemetry {
            shard: self.registry.shard(),
            log: Mutex::new(String::new()),
            last_accept: Mutex::new(None),
        }));
        self
    }

    /// The access log accumulated so far (JSONL, one wide event per
    /// finished request), or `None` when no control plane is attached.
    pub fn access_log_jsonl(&self) -> Option<String> {
        self.service
            .as_ref()
            .map(|s| s.log.lock().expect("access log poisoned").clone())
    }

    /// Records one finished request into the access log and the
    /// per-endpoint series. `body` is the buffered response body when
    /// there was one (used to attribute `POST /campaigns` to the job id
    /// it just created); event streams pass `None` and their streamed
    /// byte count.
    fn log_request(
        &self,
        method: &str,
        raw_path: &str,
        status: u16,
        bytes: usize,
        body: Option<&str>,
        started: Instant,
    ) {
        let Some(service) = &self.service else {
            return;
        };
        let method = if method.is_empty() { "-" } else { method };
        let path = raw_path.split('?').next().unwrap_or(raw_path);
        let (template, mut campaign) = if method == "-" {
            ("(bad-request)", None)
        } else {
            route_template(path)
        };
        if campaign.is_none() && method == "POST" && template == "/campaigns" && status == 202 {
            campaign = body
                .and_then(|b| json::parse(b).ok())
                .and_then(|doc| doc.get("id").and_then(json::JsonValue::as_f64))
                .map(|id| id as u64);
        }
        let tenant = campaign.and_then(|id| {
            self.control
                .as_ref()
                .and_then(|control| control.tenant_of(id))
        });
        service.record(&AccessRecord {
            tenant: tenant.as_deref(),
            method,
            template,
            status,
            bytes,
            micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            campaign,
        });
    }

    fn healthz(&self) -> String {
        let snapshot = self.registry.snapshot();
        let quarantined = snapshot.counter_total("quarantined_trials", &[]);
        let probe = self.probe.lock().expect("probe cell poisoned").clone();
        let (syncs, lag) = match &probe {
            Some(p) => (Some(p.syncs()), p.lag()),
            None => (None, None),
        };
        let mut out = String::from("{\"status\":\"ok\"");
        out.push_str(&format!(
            ",\"uptime_seconds\":{}",
            json::number(self.started.elapsed().as_secs_f64())
        ));
        match syncs {
            Some(n) => out.push_str(&format!(",\"journal_syncs\":{n}")),
            None => out.push_str(",\"journal_syncs\":null"),
        }
        match lag {
            Some(d) => out.push_str(&format!(
                ",\"journal_fsync_lag_seconds\":{}",
                json::number(d.as_secs_f64())
            )),
            None => out.push_str(",\"journal_fsync_lag_seconds\":null"),
        }
        out.push_str(&format!(",\"quarantined_trials\":{quarantined}"));
        // Service-mode depth-of-field: how deep the fair queue is, who is
        // running, and when the plane last finished a request — enough
        // for a load balancer to tell idle from wedged.
        match &self.control {
            Some(control) => {
                out.push_str(&format!(",\"queue_depth\":{}", control.queue_depth()));
                out.push_str(",\"running\":{");
                for (i, (tenant, n)) in control.running_by_tenant().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{n}", json::escape(tenant)));
                }
                out.push('}');
            }
            None => out.push_str(",\"queue_depth\":null,\"running\":null"),
        }
        let last_accept = self
            .service
            .as_ref()
            .and_then(|s| *s.last_accept.lock().expect("last-accept poisoned"));
        match last_accept {
            Some(t) => out.push_str(&format!(",\"last_accept_unix_s\":{}", json::number(t))),
            None => out.push_str(",\"last_accept_unix_s\":null"),
        }
        out.push('}');
        out
    }

    fn campaign(&self) -> String {
        let snapshot = self.registry.snapshot();
        let status = self.status.lock().expect("status cell poisoned").clone();
        let mut out = String::from("{");
        match &status.platform {
            Some(name) => out.push_str(&format!("\"platform\":{}", json::escape(name))),
            None => out.push_str("\"platform\":null"),
        }
        match status.config_fingerprint {
            Some(fp) => out.push_str(&format!(",\"config_fingerprint\":\"{fp:016x}\"")),
            None => out.push_str(",\"config_fingerprint\":null"),
        }
        match &status.journal {
            Some(path) => out.push_str(&format!(",\"journal\":{}", json::escape(path))),
            None => out.push_str(",\"journal\":null"),
        }
        out.push_str(&format!(",\"resumed_trials\":{}", status.resumed_trials));
        out.push_str(&format!(",\"done\":{}", status.done));
        out.push_str(&format!(
            ",\"trials_done\":{}",
            snapshot.counter_total("runs_total", &[])
        ));
        out.push_str(&format!(
            ",\"waves_merged\":{}",
            snapshot.counter_total("waves_total", &[])
        ));
        out.push_str(&format!(
            ",\"trials_retried\":{}",
            snapshot.counter_total("trial_retries", &[])
        ));
        out.push_str(&format!(
            ",\"quarantined_trials\":{}",
            snapshot.counter_total("quarantined_trials", &[])
        ));
        out.push('}');
        out
    }

    fn spans(&self) -> String {
        let records = self.tracer.records();
        let start = records.len().saturating_sub(SPAN_WINDOW);
        let mut out = String::new();
        for record in &records[start..] {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    fn respond(&self, method: &str, path: &str, body: &str) -> Reply {
        // Ignore any query string: `/progress?x=1` reads as `/progress`.
        let path = path.split('?').next().unwrap_or(path);
        // The read-write routes carry their own per-method handling; the
        // legacy monitoring surface below stays GET-only.
        if path == "/campaigns"
            || path.starts_with("/campaigns/")
            || path == "/tenants"
            || path == "/shutdown"
        {
            return self.control_routes(method, path, body);
        }
        if method != "GET" {
            return Reply::Full(Response::text(
                405,
                "405 method not allowed\nonly GET is supported\n",
            ));
        }
        Reply::Full(match path {
            "/" => {
                let mut index = String::from(
                    "serscale monitor\n\
                     /metrics   Prometheus text exposition\n\
                     /healthz   liveness + journal fsync lag (JSON)\n\
                     /progress  trials, sigma estimate, ETA (JSON)\n\
                     /convergence  per-point rates, Garwood CIs, precision (JSON)\n\
                     /spans     recent closed spans (JSONL)\n\
                     /campaign  journal-backed campaign status (JSON)\n",
                );
                if self.control.is_some() {
                    index.push_str(
                        "/campaigns            POST a spec / GET the job list (JSON)\n\
                         /campaigns/N          GET status / DELETE to cancel (JSON)\n\
                         /campaigns/N/report   GET the bit-stable report (text)\n\
                         /campaigns/N/events   GET the live event stream (JSONL)\n\
                         /campaigns/N/convergence  GET the job's CI estimates (JSON)\n\
                         /tenants              GET per-tenant usage totals (JSON)\n\
                         /shutdown             POST to drain the service\n",
                    );
                }
                Response::text(200, &index)
            }
            "/metrics" => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: self.registry.snapshot().render_prometheus(),
            },
            "/healthz" => Response::json(self.healthz()),
            "/progress" => Response::json(
                self.progress
                    .lock()
                    .expect("progress poisoned")
                    .snapshot()
                    .to_json(),
            ),
            "/convergence" => Response::json(
                self.convergence
                    .lock()
                    .expect("convergence tracker poisoned")
                    .snapshot()
                    .to_json(),
            ),
            "/spans" => Response {
                status: 200,
                content_type: "application/jsonl; charset=utf-8",
                body: self.spans(),
            },
            // With a control plane attached, the singular endpoint
            // aliases the current job's document; without one (or before
            // any submission) it keeps serving the legacy status cell.
            "/campaign" => match &self.control {
                Some(control) => match control.current().and_then(|id| control.status_json(id)) {
                    Some(doc) => Response::json(doc),
                    None => Response::json(self.campaign()),
                },
                None => Response::json(self.campaign()),
            },
            _ => Response::text(404, "404 not found\ntry / for the endpoint index\n"),
        })
    }

    fn control_routes(&self, method: &str, path: &str, body: &str) -> Reply {
        let Some(control) = &self.control else {
            return Reply::Full(Response::text(
                404,
                "404 not found\n\
                 no campaign control plane is attached; start one with `repro serve`\n",
            ));
        };
        if path == "/shutdown" {
            return Reply::Full(if method == "POST" {
                control.request_shutdown();
                Response::json("{\"status\":\"draining\"}".to_string())
            } else {
                method_not_allowed("POST")
            });
        }
        if path == "/tenants" {
            return Reply::Full(if method == "GET" {
                Response::json(control.tenants_json())
            } else {
                method_not_allowed("GET")
            });
        }
        if path == "/campaigns" {
            return Reply::Full(match method {
                "POST" => match control.submit(body) {
                    Ok(doc) => Response {
                        status: 202,
                        content_type: "application/json; charset=utf-8",
                        body: doc,
                    },
                    Err(err) => Response::control_error(&err),
                },
                "GET" => Response::json(control.list_json()),
                _ => method_not_allowed("GET or POST"),
            });
        }
        let rest = &path["/campaigns/".len()..];
        let (id_str, tail) = match rest.split_once('/') {
            Some((id, tail)) => (id, Some(tail)),
            None => (rest, None),
        };
        let Ok(id) = id_str.parse::<u64>() else {
            return Reply::Full(Response::text(
                404,
                "404 not found\ncampaign ids are integers\n",
            ));
        };
        Reply::Full(match (method, tail) {
            ("GET", None) => match control.status_json(id) {
                Some(doc) => Response::json(doc),
                None => no_such_job(id),
            },
            ("DELETE", None) => match control.cancel(id) {
                Ok(doc) => Response::json(doc),
                Err(err) => Response::control_error(&err),
            },
            ("GET", Some("report")) => match control.report_text(id) {
                Ok(text) => Response::text(200, &text),
                Err(err) => Response::control_error(&err),
            },
            ("GET", Some("events")) => {
                if control.events_snapshot(id).is_some() {
                    // The stream outlives this routing decision; the
                    // connection handler takes over the socket.
                    return Reply::EventStream(id);
                }
                no_such_job(id)
            }
            ("GET", Some("convergence")) => match control.convergence_json(id) {
                Some(doc) => Response::json(doc),
                None => no_such_job(id),
            },
            (_, None) => method_not_allowed("GET or DELETE"),
            (_, Some("report" | "events" | "convergence")) => method_not_allowed("GET"),
            _ => Response::text(404, "404 not found\ntry / for the endpoint index\n"),
        })
    }
}

/// What a routed request resolves to: a buffered response, or a live
/// event stream that takes over the connection.
enum Reply {
    Full(Response),
    EventStream(u64),
}

fn method_not_allowed(allowed: &str) -> Response {
    Response::text(
        405,
        &format!("405 method not allowed\nthis endpoint takes {allowed}\n"),
    )
}

fn no_such_job(id: u64) -> Response {
    Response {
        status: 404,
        content_type: "application/json; charset=utf-8",
        body: format!("{{\"error\":{{\"reason\":\"no job {id}\"}}}}"),
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.to_string(),
        }
    }

    fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json; charset=utf-8",
            body,
        }
    }

    fn control_error(err: &crate::control::ControlError) -> Self {
        Response {
            status: err.status,
            content_type: "application/json; charset=utf-8",
            body: format!("{}\n", err.body),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// A parsed inbound request: the request line plus any body announced
/// via `Content-Length` (the only body framing the plane speaks).
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Byte offset just past the head terminator, if the head is complete.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Reads the request head (up to [`MAX_REQUEST_BYTES`]) and, when the
/// headers announce one, a body of up to [`MAX_BODY_BYTES`].
fn parse_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let body_start = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request head too large".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => break head_end(&buf).unwrap_or(buf.len()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read failed: {e}")),
        }
    };
    let head = String::from_utf8_lossy(&buf[..body_start]).into_owned();
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/1") => {
            (method.to_string(), path.to_string())
        }
        _ => return Err(format!("malformed request line {line:?}")),
    };
    let mut content_length = 0usize;
    for header in head.lines().skip(1) {
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".to_string());
    }
    while buf.len() < body_start + content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".to_string()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("body read failed: {e}")),
        }
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok(Request { method, path, body })
}

/// Serves `/campaigns/{id}/events`: a chunked JSONL stream that follows
/// the job's private event buffer and terminates when the job reaches a
/// terminal state (or at [`EVENT_STREAM_CAP`]). Offsets are previous
/// buffer lengths and appends are whole lines, so every chunk is valid
/// UTF-8 ending on a line boundary. The final payload line is always a
/// `{"event":"stream_end","reason":...}` record naming why the stream
/// closed (`done`/`cancelled`/`failed` per the job's terminal state,
/// `cap` at the connection cap, `gone` if the job vanished), so clients
/// can tell a finished feed from a severed one. `payload_bytes`
/// accumulates the JSONL bytes streamed, for the access log.
fn stream_events(
    stream: &mut TcpStream,
    state: &MonitorState,
    id: u64,
    payload_bytes: &mut usize,
) -> std::io::Result<()> {
    let control = state
        .control
        .as_ref()
        .expect("event stream routed without a control plane");
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/jsonl; charset=utf-8\r\n\
          Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    let deadline = Instant::now() + EVENT_STREAM_CAP;
    let mut sent = 0usize;
    let reason = loop {
        let Some((events, done)) = control.events_snapshot(id) else {
            break "gone";
        };
        if events.len() > sent {
            let fresh = &events.as_bytes()[sent..];
            stream.write_all(format!("{:x}\r\n", fresh.len()).as_bytes())?;
            stream.write_all(fresh)?;
            stream.write_all(b"\r\n")?;
            stream.flush()?;
            sent = events.len();
            *payload_bytes += fresh.len();
        }
        if done {
            break control.state_label(id).unwrap_or("done");
        }
        if Instant::now() >= deadline {
            break "cap";
        }
        std::thread::sleep(EVENT_POLL);
    };
    let terminal = format!(
        "{{\"event\":\"stream_end\",\"reason\":{}}}\n",
        json::escape(reason)
    );
    stream.write_all(format!("{:x}\r\n", terminal.len()).as_bytes())?;
    stream.write_all(terminal.as_bytes())?;
    stream.write_all(b"\r\n")?;
    *payload_bytes += terminal.len();
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

fn handle_connection(mut stream: TcpStream, state: &MonitorState) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let started = Instant::now();
    let parsed = parse_request(&mut stream);
    let (method, path) = match &parsed {
        Ok(request) => (request.method.clone(), request.path.clone()),
        Err(_) => (String::new(), String::new()),
    };
    let reply = match parsed {
        Ok(request) => state.respond(&request.method, &request.path, &request.body),
        Err(reason) => Reply::Full(Response::text(400, &format!("400 bad request\n{reason}\n"))),
    };
    // A client that hung up mid-response is its own problem; the server
    // must not die (or log on stdout, which is golden-diffed) over it.
    match reply {
        Reply::Full(response) => {
            let _ = response.write_to(&mut stream);
            state.log_request(
                &method,
                &path,
                response.status,
                response.body.len(),
                Some(&response.body),
                started,
            );
        }
        Reply::EventStream(id) => {
            let mut payload_bytes = 0usize;
            let _ = stream_events(&mut stream, state, id, &mut payload_bytes);
            state.log_request(&method, &path, 200, payload_bytes, None, started);
        }
    }
}

/// The running monitoring server. Bind with [`MonitorServer::bind`]
/// (usually via [`TelemetrySink::serve`](crate::export::TelemetrySink::serve)),
/// stop with [`shutdown`](MonitorServer::shutdown); dropping the handle
/// shuts down too.
pub struct MonitorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: MonitorState,
}

impl MonitorServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread plus `WORKERS` handler threads.
    pub fn bind(addr: &str, state: MonitorState) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        // std's Receiver is single-consumer; the mutex turns the worker
        // pool into take-turns consumers without any external crate.
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..WORKERS)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("serscale-monitor-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while waiting, not handling.
                        let conn = rx.lock().expect("monitor queue poisoned").recv();
                        match conn {
                            Ok(stream) => handle_connection(stream, &state),
                            Err(_) => break, // sender gone: shutdown
                        }
                    })
                    .expect("spawn monitor worker")
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serscale-monitor-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break; // the shutdown nudge or any later conn
                        }
                        match conn {
                            Ok(stream) => {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                // Transient accept errors (EMFILE, reset
                                // before accept) should not kill the
                                // monitoring plane.
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    }
                    // Dropping `tx` here wakes every idle worker.
                })
                .expect("spawn monitor accept thread")
        };
        Ok(MonitorServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
            state,
        })
    }

    /// The bound address — the real port when bound to `:0`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The JSONL access log accumulated so far, or `None` when the
    /// server runs without a control plane (plain monitoring mode keeps
    /// no request telemetry). Call after [`shutdown`](Self::shutdown) for
    /// the complete log.
    pub fn access_log_jsonl(&self) -> Option<String> {
        self.state.access_log_jsonl()
    }

    /// A merged snapshot of the registry this server renders on
    /// `/metrics` — the server-level registry when a control plane is
    /// attached. Lets the driver export the final service series next to
    /// the access log without re-scraping itself.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        self.state.registry.snapshot()
    }

    /// Stops accepting, drains in-flight requests and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop: `incoming()` has no timeout, so poke
        // it with a throwaway loopback connection. If even that fails the
        // listener is already dead and the loop has exited on the error.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One blocking `GET` against a [`MonitorServer`], returning the status
/// code and body. This is the crate's own scrape client — the
/// consistency tests, the CI monitoring job's reconciler and the
/// scrape-storm benchmark all poll through it.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", path, "")
}

/// One blocking request with an arbitrary method and body — the client
/// side of the control plane (`POST /campaigns`, `DELETE`, event
/// streams). Chunked responses are decoded; the read timeout is generous
/// because `/campaigns/{id}/events` legitimately stays open while a
/// campaign runs.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, SOCKET_TIMEOUT)?;
    stream.set_read_timeout(Some(EVENT_STREAM_CAP))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: serscale\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = head_end(&raw)
        .ok_or_else(|| std::io::Error::other("response missing header/body separator"))?;
    let head = String::from_utf8_lossy(&raw[..split]).into_owned();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line in {head:?}")))?;
    let chunked = head.lines().any(|line| {
        line.split_once(':').is_some_and(|(name, value)| {
            name.trim().eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
        })
    });
    let payload = &raw[split..];
    let body = if chunked {
        decode_chunked(payload)
    } else {
        String::from_utf8_lossy(payload).into_owned()
    };
    Ok((status, body))
}

/// Reassembles a `Transfer-Encoding: chunked` body. Tolerates a
/// truncated tail (the caller sees whatever arrived before the cut).
fn decode_chunked(mut rest: &[u8]) -> String {
    let mut out = Vec::new();
    while let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") {
        let size_line = String::from_utf8_lossy(&rest[..line_end]);
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        rest = &rest[line_end + 2..];
        if size == 0 || rest.len() < size {
            out.extend_from_slice(&rest[..size.min(rest.len())]);
            break;
        }
        out.extend_from_slice(&rest[..size]);
        rest = rest.get(size + 2..).unwrap_or(&[]); // skip the chunk's CRLF
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{TelemetryOptions, TelemetrySink};
    use crate::json::JsonValue;

    fn sink_with_server() -> (TelemetrySink, MonitorServer) {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let server = sink.serve("127.0.0.1:0").expect("bind");
        (sink, server)
    }

    #[test]
    fn index_lists_every_endpoint() {
        let (_sink, server) = sink_with_server();
        let (status, body) = http_get(server.addr(), "/").expect("GET /");
        assert_eq!(status, 200);
        for endpoint in ["/metrics", "/healthz", "/progress", "/spans", "/campaign"] {
            assert!(body.contains(endpoint), "index missing {endpoint}: {body}");
        }
    }

    #[test]
    fn metrics_endpoint_serves_live_series() {
        let (sink, server) = sink_with_server();
        sink.add_counter("edac_events", &[("voltage", "870mV@2.4 GHz")], 7);
        let (status, body) = http_get(server.addr(), "/metrics").expect("GET /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE edac_events counter"), "{body}");
        assert!(
            body.contains("edac_events{voltage=\"870mV@2.4 GHz\"} 7"),
            "{body}"
        );
    }

    #[test]
    fn healthz_reports_probe_and_quarantines() {
        let (sink, server) = sink_with_server();
        let (_, body) = http_get(server.addr(), "/healthz").expect("GET /healthz");
        let doc = json::parse(&body).expect("healthz parses");
        assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(doc.get("journal_syncs"), Some(&JsonValue::Null));
        // Attach a probe: syncs surface as a number.
        sink.attach_sync_probe(SyncProbe::new());
        let (_, body) = http_get(server.addr(), "/healthz").expect("GET /healthz");
        let doc = json::parse(&body).expect("healthz parses");
        assert_eq!(
            doc.get("journal_syncs").and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.get("quarantined_trials").and_then(JsonValue::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn progress_endpoint_matches_reporter_state() {
        let (sink, server) = sink_with_server();
        sink.set_progress_target_sim_secs(1000.0);
        let (_, body) = http_get(server.addr(), "/progress").expect("GET /progress");
        let doc = json::parse(&body).expect("progress parses");
        assert_eq!(doc.get("trials").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(
            doc.get("target_sim_seconds").and_then(JsonValue::as_f64),
            Some(1000.0)
        );
    }

    #[test]
    fn campaign_endpoint_reflects_driver_status() {
        let (sink, server) = sink_with_server();
        sink.set_campaign_status(|status| {
            status.config_fingerprint = Some(0xdead_beef);
            status.journal = Some("runs/journal.serj".to_string());
            status.resumed_trials = 42;
        });
        let (_, body) = http_get(server.addr(), "/campaign").expect("GET /campaign");
        let doc = json::parse(&body).expect("campaign parses");
        assert_eq!(
            doc.get("config_fingerprint").and_then(JsonValue::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            doc.get("journal").and_then(JsonValue::as_str),
            Some("runs/journal.serj")
        );
        assert_eq!(
            doc.get("resumed_trials").and_then(JsonValue::as_f64),
            Some(42.0)
        );
        assert_eq!(doc.get("done"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn spans_endpoint_serves_recent_jsonl() {
        let (sink, server) = sink_with_server();
        for i in 0..100 {
            sink.tracer().in_span(
                crate::span::SpanLevel::Wave,
                &format!("wave@{i}"),
                crate::span::SpanId::ROOT,
                || (),
            );
        }
        let (status, body) = http_get(server.addr(), "/spans").expect("GET /spans");
        assert_eq!(status, 200);
        let docs = json::parse_lines(&body).expect("spans parse");
        assert_eq!(docs.len(), SPAN_WINDOW, "window caps the span dump");
        let last = docs.last().expect("nonempty");
        assert_eq!(
            last.get("name").and_then(JsonValue::as_str),
            Some("wave@99"),
            "newest span last"
        );
    }

    #[test]
    fn unknown_paths_and_methods_get_http_errors() {
        let (_sink, server) = sink_with_server();
        let (status, _) = http_get(server.addr(), "/nope").expect("GET /nope");
        assert_eq!(status, 404);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        // A malformed request line gets a 400, not a hang or a panic.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"garbage\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    }

    #[test]
    fn query_strings_are_ignored() {
        let (_sink, server) = sink_with_server();
        let (status, _) = http_get(server.addr(), "/progress?verbose=1").expect("GET");
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_joins_cleanly_and_is_idempotent() {
        let (_sink, mut server) = sink_with_server();
        let addr = server.addr();
        http_get(addr, "/healthz").expect("server up");
        server.shutdown();
        server.shutdown(); // second call is a no-op
        assert!(
            http_get(addr, "/healthz").is_err(),
            "server must be down after shutdown"
        );
    }

    #[test]
    fn campaigns_routes_require_an_attached_control_plane() {
        let (_sink, server) = sink_with_server();
        let (status, body) = http_get(server.addr(), "/campaigns").expect("GET /campaigns");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("repro serve"), "{body}");
        let (status, _) =
            http_request(server.addr(), "POST", "/campaigns", "{}").expect("POST /campaigns");
        assert_eq!(status, 404);
    }

    #[test]
    fn control_plane_round_trip_over_http() {
        use crate::control::{ControlPlane, ControlPlaneOptions};

        let sink = Arc::new(TelemetrySink::in_memory(TelemetryOptions::default()));
        let control = ControlPlane::start(ControlPlaneOptions::default());
        let server = sink
            .serve_control("127.0.0.1:0", Arc::clone(&control))
            .expect("bind");
        let addr = server.addr();

        // Index now advertises the service routes.
        let (_, index) = http_get(addr, "/").expect("GET /");
        assert!(index.contains("/campaigns"), "{index}");

        // A bad spec is a structured 400 naming the field.
        let (status, body) =
            http_request(addr, "POST", "/campaigns", "{\"scale\":0}").expect("bad spec");
        assert_eq!(status, 400, "{body}");
        let doc = json::parse(body.trim()).expect("error document parses");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("field"))
                .and_then(JsonValue::as_str),
            Some("scale"),
            "{body}"
        );

        // A good spec is accepted and runs to a fetchable report.
        let spec = "{\"tenant\":\"http\",\"seed\":3,\"scale\":0.001}";
        let (status, body) = http_request(addr, "POST", "/campaigns", spec).expect("submit");
        assert_eq!(status, 202, "{body}");
        let id = json::parse(&body)
            .expect("acceptance parses")
            .get("id")
            .and_then(JsonValue::as_f64)
            .expect("id") as u64;
        assert!(
            control.wait_idle(Duration::from_secs(60)),
            "campaign finished"
        );
        let (status, listing) = http_get(addr, "/campaigns").expect("list");
        assert_eq!(status, 200);
        assert!(listing.contains("\"status\":\"done\""), "{listing}");
        let (status, report) = http_get(addr, &format!("/campaigns/{id}/report")).expect("report");
        assert_eq!(status, 200);
        assert!(report.contains("flux_per_cm2_s"), "{report}");
        // The alias serves the same document as /campaigns/{id}.
        let (_, alias) = http_get(addr, "/campaign").expect("alias");
        let (_, direct) = http_get(addr, &format!("/campaigns/{id}")).expect("status");
        assert_eq!(alias, direct);
        // The event stream terminates (job is done) and carries JSONL.
        let (status, events) = http_get(addr, &format!("/campaigns/{id}/events")).expect("events");
        assert_eq!(status, 200);
        assert!(events.contains("session_start"), "{events}");
        json::parse_lines(&events).expect("event stream is valid JSONL");
        // Wrong methods 405, unknown jobs 404, report-before-done 409.
        let (status, _) = http_request(addr, "PUT", &format!("/campaigns/{id}"), "").expect("PUT");
        assert_eq!(status, 405);
        let (status, _) = http_get(addr, "/campaigns/999").expect("unknown");
        assert_eq!(status, 404);
        // Shutdown over HTTP: drains and refuses new specs.
        let (status, _) = http_request(addr, "POST", "/shutdown", "").expect("shutdown");
        assert_eq!(status, 200);
        let (status, body) = http_request(addr, "POST", "/campaigns", spec).expect("late");
        assert_eq!(status, 503, "{body}");
        control.drain();
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let (sink, server) = sink_with_server();
        sink.add_counter("runs_total", &[("voltage", "nominal")], 5);
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = ["/metrics", "/healthz", "/progress", "/campaign"][i % 4];
                    http_get(addr, path).expect("scrape")
                })
            })
            .collect();
        for handle in handles {
            let (status, body) = handle.join().expect("join scraper");
            assert_eq!(status, 200);
            assert!(!body.is_empty());
        }
    }
}
