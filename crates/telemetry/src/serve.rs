//! A live monitoring plane: a dependency-free HTTP/1.1 server over the
//! sink's registry, tracer, progress reporter and campaign status.
//!
//! The paper's beam campaigns run for hours; the reproduction's run in
//! seconds — but the *operational* questions are the same: is the run
//! alive, how far along is it, is the journal keeping up, how busy are
//! the workers. [`MonitorServer`] answers them over plain HTTP so `curl`
//! and Prometheus can watch a campaign without any client library:
//!
//! | endpoint    | payload                                                |
//! |-------------|--------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of every live series        |
//! | `/healthz`  | liveness, journal fsync lag, quarantine count (JSON)   |
//! | `/progress` | trials done, σ̂ estimate, fraction, ETA (JSON)          |
//! | `/spans`    | the most recent closed spans (JSONL, newest last)      |
//! | `/campaign` | journal-backed status: fingerprint, resume, waves      |
//! | `/`         | a plain-text index of the above                        |
//!
//! ## Observe-only, enforced structurally
//!
//! The server holds *read* handles: a registry clone (snapshots merge
//! shard data without blocking writers), the tracer `Arc`, the progress
//! mutex and a small status cell the driver updates at run boundaries.
//! There is no channel from a request handler back into the engine, so a
//! scrape storm can slow the host down but can never change a report —
//! `tests/scrape_consistency.rs` hammers a live campaign and diffs its
//! artifacts against a server-less run to prove it.
//!
//! ## Anatomy
//!
//! One accept thread pushes connections into an `mpsc` channel drained
//! by `WORKERS` handler threads (the receiver is shared behind a
//! mutex — `std::net` only, no external crates). Sockets carry short
//! read/write timeouts so one stalled client cannot wedge a worker.
//! [`MonitorServer::shutdown`] flips an atomic flag, nudges the accept
//! loop awake with a loopback connection, drops the channel sender and
//! joins every thread — a bounded, graceful stop with no `unsafe` signal
//! handling. An abrupt kill is also safe: the server owns no run state,
//! so the journal's torn-tail recovery covers it like any other crash.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serscale_core::journal::SyncProbe;

use crate::json;
use crate::metrics::Registry;
use crate::progress::Progress;
use crate::span::Tracer;

/// Handler threads draining the accept queue.
const WORKERS: usize = 4;
/// Per-socket read/write timeout: a stalled client loses its slot.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on an accepted request head (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// `/spans` returns at most this many of the newest closed spans.
const SPAN_WINDOW: usize = 64;

/// Slow-changing campaign facts the driver publishes at run boundaries
/// (the fast-changing numbers live in the registry and progress state).
#[derive(Debug, Clone, Default)]
pub struct CampaignStatus {
    /// The config fingerprint the journal locks resume decisions to
    /// (rendered in hex, like the journal header), if known.
    pub config_fingerprint: Option<u64>,
    /// The journal path, when the run is journaled.
    pub journal: Option<String>,
    /// Trials replayed from a prior journal instead of re-executed.
    pub resumed_trials: u64,
    /// Whether the campaign has finished (the server may linger after).
    pub done: bool,
}

/// Everything a request handler may read. Cloning is cheap — the fields
/// are handles into state owned elsewhere.
#[derive(Clone)]
pub struct MonitorState {
    registry: Registry,
    tracer: Arc<Tracer>,
    progress: Arc<Mutex<Progress>>,
    status: Arc<Mutex<CampaignStatus>>,
    probe: Arc<Mutex<Option<SyncProbe>>>,
    started: Instant,
}

impl MonitorState {
    /// Bundles read handles for the server. Called by
    /// [`TelemetrySink::serve`](crate::export::TelemetrySink::serve);
    /// public for tests that assemble a state by hand.
    pub fn new(
        registry: Registry,
        tracer: Arc<Tracer>,
        progress: Arc<Mutex<Progress>>,
        status: Arc<Mutex<CampaignStatus>>,
        probe: Arc<Mutex<Option<SyncProbe>>>,
    ) -> Self {
        MonitorState {
            registry,
            tracer,
            progress,
            status,
            probe,
            started: Instant::now(),
        }
    }

    fn healthz(&self) -> String {
        let snapshot = self.registry.snapshot();
        let quarantined = snapshot.counter_total("quarantined_trials", &[]);
        let probe = self.probe.lock().expect("probe cell poisoned").clone();
        let (syncs, lag) = match &probe {
            Some(p) => (Some(p.syncs()), p.lag()),
            None => (None, None),
        };
        let mut out = String::from("{\"status\":\"ok\"");
        out.push_str(&format!(
            ",\"uptime_seconds\":{}",
            json::number(self.started.elapsed().as_secs_f64())
        ));
        match syncs {
            Some(n) => out.push_str(&format!(",\"journal_syncs\":{n}")),
            None => out.push_str(",\"journal_syncs\":null"),
        }
        match lag {
            Some(d) => out.push_str(&format!(
                ",\"journal_fsync_lag_seconds\":{}",
                json::number(d.as_secs_f64())
            )),
            None => out.push_str(",\"journal_fsync_lag_seconds\":null"),
        }
        out.push_str(&format!(",\"quarantined_trials\":{quarantined}}}"));
        out
    }

    fn campaign(&self) -> String {
        let snapshot = self.registry.snapshot();
        let status = self.status.lock().expect("status cell poisoned").clone();
        let mut out = String::from("{");
        match status.config_fingerprint {
            Some(fp) => out.push_str(&format!("\"config_fingerprint\":\"{fp:016x}\"")),
            None => out.push_str("\"config_fingerprint\":null"),
        }
        match &status.journal {
            Some(path) => out.push_str(&format!(",\"journal\":{}", json::escape(path))),
            None => out.push_str(",\"journal\":null"),
        }
        out.push_str(&format!(",\"resumed_trials\":{}", status.resumed_trials));
        out.push_str(&format!(",\"done\":{}", status.done));
        out.push_str(&format!(
            ",\"trials_done\":{}",
            snapshot.counter_total("runs_total", &[])
        ));
        out.push_str(&format!(
            ",\"waves_merged\":{}",
            snapshot.counter_total("waves_total", &[])
        ));
        out.push_str(&format!(
            ",\"trials_retried\":{}",
            snapshot.counter_total("trial_retries", &[])
        ));
        out.push_str(&format!(
            ",\"quarantined_trials\":{}",
            snapshot.counter_total("quarantined_trials", &[])
        ));
        out.push('}');
        out
    }

    fn spans(&self) -> String {
        let records = self.tracer.records();
        let start = records.len().saturating_sub(SPAN_WINDOW);
        let mut out = String::new();
        for record in &records[start..] {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }

    fn respond(&self, method: &str, path: &str) -> Response {
        if method != "GET" {
            return Response::text(405, "405 method not allowed\nonly GET is supported\n");
        }
        // Ignore any query string: `/progress?x=1` reads as `/progress`.
        let path = path.split('?').next().unwrap_or(path);
        match path {
            "/" => Response::text(
                200,
                "serscale monitor\n\
                 /metrics   Prometheus text exposition\n\
                 /healthz   liveness + journal fsync lag (JSON)\n\
                 /progress  trials, sigma estimate, ETA (JSON)\n\
                 /spans     recent closed spans (JSONL)\n\
                 /campaign  journal-backed campaign status (JSON)\n",
            ),
            "/metrics" => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: self.registry.snapshot().render_prometheus(),
            },
            "/healthz" => Response::json(self.healthz()),
            "/progress" => Response::json(
                self.progress
                    .lock()
                    .expect("progress poisoned")
                    .snapshot()
                    .to_json(),
            ),
            "/spans" => Response {
                status: 200,
                content_type: "application/jsonl; charset=utf-8",
                body: self.spans(),
            },
            "/campaign" => Response::json(self.campaign()),
            _ => Response::text(404, "404 not found\ntry / for the endpoint index\n"),
        }
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.to_string(),
        }
    }

    fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json; charset=utf-8",
            body,
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Reads the request head (up to the blank line or [`MAX_REQUEST_BYTES`])
/// and returns `(method, path)` from the request line.
fn parse_request(stream: &mut TcpStream) -> Result<(String, String), String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return Err("request head too large".to_string());
                }
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/1") => {
            Ok((method.to_string(), path.to_string()))
        }
        _ => Err(format!("malformed request line {line:?}")),
    }
}

fn handle_connection(mut stream: TcpStream, state: &MonitorState) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = match parse_request(&mut stream) {
        Ok((method, path)) => state.respond(&method, &path),
        Err(reason) => Response::text(400, &format!("400 bad request\n{reason}\n")),
    };
    // A client that hung up mid-response is its own problem; the server
    // must not die (or log on stdout, which is golden-diffed) over it.
    let _ = response.write_to(&mut stream);
}

/// The running monitoring server. Bind with [`MonitorServer::bind`]
/// (usually via [`TelemetrySink::serve`](crate::export::TelemetrySink::serve)),
/// stop with [`shutdown`](MonitorServer::shutdown); dropping the handle
/// shuts down too.
pub struct MonitorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl MonitorServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread plus `WORKERS` handler threads.
    pub fn bind(addr: &str, state: MonitorState) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        // std's Receiver is single-consumer; the mutex turns the worker
        // pool into take-turns consumers without any external crate.
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..WORKERS)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("serscale-monitor-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while waiting, not handling.
                        let conn = rx.lock().expect("monitor queue poisoned").recv();
                        match conn {
                            Ok(stream) => handle_connection(stream, &state),
                            Err(_) => break, // sender gone: shutdown
                        }
                    })
                    .expect("spawn monitor worker")
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serscale-monitor-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break; // the shutdown nudge or any later conn
                        }
                        match conn {
                            Ok(stream) => {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                // Transient accept errors (EMFILE, reset
                                // before accept) should not kill the
                                // monitoring plane.
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    }
                    // Dropping `tx` here wakes every idle worker.
                })
                .expect("spawn monitor accept thread")
        };
        Ok(MonitorServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address — the real port when bound to `:0`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop: `incoming()` has no timeout, so poke
        // it with a throwaway loopback connection. If even that fails the
        // listener is already dead and the loop has exited on the error.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for MonitorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One blocking `GET` against a [`MonitorServer`], returning the status
/// code and body. This is the crate's own scrape client — the
/// consistency tests, the CI monitoring job's reconciler and the
/// scrape-storm benchmark all poll through it.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, SOCKET_TIMEOUT)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: serscale\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response missing header/body separator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line in {head:?}")))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{TelemetryOptions, TelemetrySink};
    use crate::json::JsonValue;

    fn sink_with_server() -> (TelemetrySink, MonitorServer) {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let server = sink.serve("127.0.0.1:0").expect("bind");
        (sink, server)
    }

    #[test]
    fn index_lists_every_endpoint() {
        let (_sink, server) = sink_with_server();
        let (status, body) = http_get(server.addr(), "/").expect("GET /");
        assert_eq!(status, 200);
        for endpoint in ["/metrics", "/healthz", "/progress", "/spans", "/campaign"] {
            assert!(body.contains(endpoint), "index missing {endpoint}: {body}");
        }
    }

    #[test]
    fn metrics_endpoint_serves_live_series() {
        let (sink, server) = sink_with_server();
        sink.add_counter("edac_events", &[("voltage", "870mV@2.4 GHz")], 7);
        let (status, body) = http_get(server.addr(), "/metrics").expect("GET /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE edac_events counter"), "{body}");
        assert!(
            body.contains("edac_events{voltage=\"870mV@2.4 GHz\"} 7"),
            "{body}"
        );
    }

    #[test]
    fn healthz_reports_probe_and_quarantines() {
        let (sink, server) = sink_with_server();
        let (_, body) = http_get(server.addr(), "/healthz").expect("GET /healthz");
        let doc = json::parse(&body).expect("healthz parses");
        assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(doc.get("journal_syncs"), Some(&JsonValue::Null));
        // Attach a probe: syncs surface as a number.
        sink.attach_sync_probe(SyncProbe::new());
        let (_, body) = http_get(server.addr(), "/healthz").expect("GET /healthz");
        let doc = json::parse(&body).expect("healthz parses");
        assert_eq!(
            doc.get("journal_syncs").and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.get("quarantined_trials").and_then(JsonValue::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn progress_endpoint_matches_reporter_state() {
        let (sink, server) = sink_with_server();
        sink.set_progress_target_sim_secs(1000.0);
        let (_, body) = http_get(server.addr(), "/progress").expect("GET /progress");
        let doc = json::parse(&body).expect("progress parses");
        assert_eq!(doc.get("trials").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(
            doc.get("target_sim_seconds").and_then(JsonValue::as_f64),
            Some(1000.0)
        );
    }

    #[test]
    fn campaign_endpoint_reflects_driver_status() {
        let (sink, server) = sink_with_server();
        sink.set_campaign_status(|status| {
            status.config_fingerprint = Some(0xdead_beef);
            status.journal = Some("runs/journal.serj".to_string());
            status.resumed_trials = 42;
        });
        let (_, body) = http_get(server.addr(), "/campaign").expect("GET /campaign");
        let doc = json::parse(&body).expect("campaign parses");
        assert_eq!(
            doc.get("config_fingerprint").and_then(JsonValue::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            doc.get("journal").and_then(JsonValue::as_str),
            Some("runs/journal.serj")
        );
        assert_eq!(
            doc.get("resumed_trials").and_then(JsonValue::as_f64),
            Some(42.0)
        );
        assert_eq!(doc.get("done"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn spans_endpoint_serves_recent_jsonl() {
        let (sink, server) = sink_with_server();
        for i in 0..100 {
            sink.tracer().in_span(
                crate::span::SpanLevel::Wave,
                &format!("wave@{i}"),
                crate::span::SpanId::ROOT,
                || (),
            );
        }
        let (status, body) = http_get(server.addr(), "/spans").expect("GET /spans");
        assert_eq!(status, 200);
        let docs = json::parse_lines(&body).expect("spans parse");
        assert_eq!(docs.len(), SPAN_WINDOW, "window caps the span dump");
        let last = docs.last().expect("nonempty");
        assert_eq!(
            last.get("name").and_then(JsonValue::as_str),
            Some("wave@99"),
            "newest span last"
        );
    }

    #[test]
    fn unknown_paths_and_methods_get_http_errors() {
        let (_sink, server) = sink_with_server();
        let (status, _) = http_get(server.addr(), "/nope").expect("GET /nope");
        assert_eq!(status, 404);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        // A malformed request line gets a 400, not a hang or a panic.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"garbage\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    }

    #[test]
    fn query_strings_are_ignored() {
        let (_sink, server) = sink_with_server();
        let (status, _) = http_get(server.addr(), "/progress?verbose=1").expect("GET");
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_joins_cleanly_and_is_idempotent() {
        let (_sink, mut server) = sink_with_server();
        let addr = server.addr();
        http_get(addr, "/healthz").expect("server up");
        server.shutdown();
        server.shutdown(); // second call is a no-op
        assert!(
            http_get(addr, "/healthz").is_err(),
            "server must be down after shutdown"
        );
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let (sink, server) = sink_with_server();
        sink.add_counter("runs_total", &[("voltage", "nominal")], 5);
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let path = ["/metrics", "/healthz", "/progress", "/campaign"][i % 4];
                    http_get(addr, path).expect("scrape")
                })
            })
            .collect();
        for handle in handles {
            let (status, body) = handle.join().expect("join scraper");
            assert_eq!(status, 200);
            assert!(!body.is_empty());
        }
    }
}
