//! A live progress line for interactive campaign runs.
//!
//! When enabled, the reporter prints a single stderr status line at a
//! bounded cadence: trials completed, the current upset-rate estimate
//! (the σ̂ proxy the paper's Table 5 is built from), simulated progress
//! and a wall-clock ETA. It is **disabled by default** and must stay off
//! in CI and golden runs: stdout artifacts are diffed byte-for-byte, and
//! even stderr noise makes hermetic logs harder to compare.
//!
//! Like everything in this crate the reporter is observe-only — it
//! consumes numbers the observer already recorded and can never feed
//! anything back into the simulation.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Minimum wall time between emitted lines.
const EMIT_EVERY: Duration = Duration::from_millis(250);

/// Accumulates run state and periodically prints it to stderr.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    started: Instant,
    last_emit: Option<Instant>,
    /// Total simulated seconds the run intends to cover, if known
    /// (drives percent-done and the ETA).
    target_sim_secs: Option<f64>,
    voltage: String,
    trials: u64,
    upsets: u64,
    sim_secs: f64,
    emitted: bool,
}

impl Progress {
    /// A reporter; pass `enabled = false` for a silent no-op collector.
    pub fn new(enabled: bool) -> Self {
        Progress {
            enabled,
            started: Instant::now(),
            last_emit: None,
            target_sim_secs: None,
            voltage: String::new(),
            trials: 0,
            upsets: 0,
            sim_secs: 0.0,
            emitted: false,
        }
    }

    /// Declares the run's total simulated duration, enabling ETA output.
    pub fn set_target_sim_secs(&mut self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.target_sim_secs = Some(secs);
        }
    }

    /// A session at `voltage` began.
    pub fn session_started(&mut self, voltage: &str) {
        self.voltage = voltage.to_string();
        self.maybe_emit(false);
    }

    /// One trial finished; `sim_secs` is cumulative across sessions and
    /// `session_upsets` counts the current session only.
    pub fn trial_done(&mut self, sim_secs: f64, session_upsets: u64) {
        self.sim_secs = sim_secs;
        self.trials += 1;
        self.upsets = self.upsets.max(session_upsets);
        self.maybe_emit(false);
    }

    /// A session finished; `completed_sim_secs` is the cumulative total.
    pub fn session_ended(&mut self, completed_sim_secs: f64) {
        self.sim_secs = completed_sim_secs;
        self.upsets = 0;
        self.maybe_emit(true);
    }

    /// Prints a terminal newline if any progress line was emitted, so the
    /// next stderr write starts clean. Call once at end of run.
    pub fn finish(&mut self) {
        if self.enabled && self.emitted {
            eprintln!();
            self.emitted = false;
        }
    }

    /// The status line as a string (also what gets printed).
    pub fn line(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let minutes = self.sim_secs / 60.0;
        let rate = if minutes > 0.0 {
            self.upsets as f64 / minutes
        } else {
            0.0
        };
        let mut line = format!(
            "[telemetry] {} | {} trials | sigma~{rate:.2} upsets/min | {:.0}s sim",
            if self.voltage.is_empty() {
                "--"
            } else {
                &self.voltage
            },
            self.trials,
            self.sim_secs,
        );
        if let Some(target) = self.target_sim_secs {
            let frac = (self.sim_secs / target).clamp(0.0, 1.0);
            line.push_str(&format!(" ({:.0}%)", frac * 100.0));
            if frac > 0.0 && frac < 1.0 && elapsed > 0.5 {
                let eta = elapsed / frac - elapsed;
                line.push_str(&format!(" | ETA {eta:.0}s"));
            }
        }
        line
    }

    fn maybe_emit(&mut self, force: bool) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = match self.last_emit {
            None => true,
            Some(last) => now.duration_since(last) >= EMIT_EVERY,
        };
        if !(due || force) {
            return;
        }
        self.last_emit = Some(now);
        self.emitted = true;
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r\x1b[2K{}", self.line());
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_collects_but_never_prints() {
        let mut p = Progress::new(false);
        p.session_started("920mV@2.4 GHz");
        p.trial_done(60.0, 3);
        assert!(!p.emitted, "disabled reporter must not write");
        assert!(p.line().contains("920mV@2.4 GHz"));
        assert!(p.line().contains("1 trials"));
        assert!(p.line().contains("sigma~3.00"), "{}", p.line());
    }

    #[test]
    fn eta_appears_once_a_target_is_known() {
        let mut p = Progress::new(false);
        p.set_target_sim_secs(1200.0);
        std::thread::sleep(Duration::from_millis(600));
        p.trial_done(600.0, 0);
        let line = p.line();
        assert!(line.contains("(50%)"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn nonsense_targets_are_ignored() {
        let mut p = Progress::new(false);
        p.set_target_sim_secs(f64::NAN);
        p.set_target_sim_secs(-3.0);
        assert!(p.target_sim_secs.is_none());
    }
}
