//! A live progress reporter for campaign runs.
//!
//! When enabled, the reporter emits a stderr status line at a bounded
//! cadence: trials completed, the current upset-rate estimate (the σ̂
//! proxy the paper's Table 5 is built from), simulated progress and a
//! wall-clock ETA. Two styles exist:
//!
//! * [`ProgressMode::Interactive`] rewrites a single line in place with
//!   `\r` + erase — the right thing on a live terminal.
//! * [`ProgressMode::Plain`] prints a whole line at a slower cadence with
//!   no control characters — the fallback for non-TTY stderr, `CI=1` and
//!   `NO_COLOR` environments, where carriage-return rewrites turn logs
//!   into soup.
//!
//! The reporter is **disabled by default** and stays off in golden runs:
//! stdout artifacts are diffed byte-for-byte, and even stderr noise makes
//! hermetic logs harder to compare. The `repro` binary picks the mode
//! from the environment and honors an explicit `--no-progress`.
//!
//! Like everything in this crate the reporter is observe-only — it
//! consumes numbers the observer already recorded and can never feed
//! anything back into the simulation. The same accounting backs the
//! monitoring plane's `/progress` endpoint via [`Progress::snapshot`].

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Minimum wall time between emitted lines in interactive mode.
const EMIT_EVERY: Duration = Duration::from_millis(250);

/// Minimum wall time between emitted lines in plain (non-TTY) mode —
/// slower, because every emission is a fresh log line.
const EMIT_EVERY_PLAIN: Duration = Duration::from_secs(2);

/// How an enabled reporter writes to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// Rewrite one status line in place (`\r` + erase). For live TTYs.
    #[default]
    Interactive,
    /// Append plain lines at a slow cadence. For non-TTY stderr, `CI=1`
    /// and `NO_COLOR` environments.
    Plain,
}

/// A point-in-time view of the run's progress — the numbers behind both
/// the stderr line and the `/progress` monitoring endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Operating-point label of the current session (empty before the
    /// first session starts).
    pub voltage: String,
    /// Trials completed so far, across sessions.
    pub trials: u64,
    /// Upsets observed in the current session.
    pub session_upsets: u64,
    /// The σ̂ proxy: current-session upsets per simulated minute.
    pub upsets_per_minute: f64,
    /// Simulated seconds covered so far, across sessions.
    pub sim_seconds: f64,
    /// Total simulated seconds the run intends to cover, if declared.
    pub target_sim_seconds: Option<f64>,
    /// Completed fraction in `[0, 1]`, if a target is known.
    pub fraction: Option<f64>,
    /// Host seconds since the reporter was built.
    pub elapsed_seconds: f64,
    /// Estimated host seconds to completion. Always finite and
    /// nonnegative when present — shrinking targets clamp rather than
    /// going negative.
    pub eta_seconds: Option<f64>,
    /// Convergence-plane cells resolved at the target precision, if the
    /// convergence layer has reported.
    pub cells_resolved: Option<u64>,
    /// Total convergence-plane cells, if reported.
    pub cells_total: Option<u64>,
    /// The widest-CI cell's name (`"920mV@2.4 GHz PMD/L1D"`), when some
    /// cell has events.
    pub widest_cell: Option<String>,
    /// That cell's relative CI half-width, when finite.
    pub widest_rel_halfwidth: Option<f64>,
    /// Projected additional live sim-seconds for that cell to reach the
    /// precision target. Clamped like `eta_seconds`: finite and
    /// nonnegative when present.
    pub widest_projected_sim_seconds: Option<f64>,
}

impl ProgressSnapshot {
    /// The snapshot as one JSON object (hand-rolled like the rest of the
    /// crate; verified by [`crate::json::parse`] in tests).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"voltage\":{}",
            crate::json::escape(&self.voltage)
        ));
        out.push_str(&format!(",\"trials\":{}", self.trials));
        out.push_str(&format!(",\"session_upsets\":{}", self.session_upsets));
        out.push_str(&format!(
            ",\"upsets_per_minute\":{}",
            crate::json::number(self.upsets_per_minute)
        ));
        out.push_str(&format!(
            ",\"sim_seconds\":{}",
            crate::json::number(self.sim_seconds)
        ));
        match self.target_sim_seconds {
            Some(t) => out.push_str(&format!(
                ",\"target_sim_seconds\":{}",
                crate::json::number(t)
            )),
            None => out.push_str(",\"target_sim_seconds\":null"),
        }
        match self.fraction {
            Some(f) => out.push_str(&format!(",\"fraction\":{}", crate::json::number(f))),
            None => out.push_str(",\"fraction\":null"),
        }
        out.push_str(&format!(
            ",\"elapsed_seconds\":{}",
            crate::json::number(self.elapsed_seconds)
        ));
        match self.eta_seconds {
            Some(e) => out.push_str(&format!(",\"eta_seconds\":{}", crate::json::number(e))),
            None => out.push_str(",\"eta_seconds\":null"),
        }
        match self.cells_resolved {
            Some(n) => out.push_str(&format!(",\"cells_resolved\":{n}")),
            None => out.push_str(",\"cells_resolved\":null"),
        }
        match self.cells_total {
            Some(n) => out.push_str(&format!(",\"cells_total\":{n}")),
            None => out.push_str(",\"cells_total\":null"),
        }
        match &self.widest_cell {
            Some(name) => out.push_str(&format!(
                ",\"widest_cell\":{}",
                crate::json::escape(name)
            )),
            None => out.push_str(",\"widest_cell\":null"),
        }
        match self.widest_rel_halfwidth {
            Some(w) => out.push_str(&format!(
                ",\"widest_rel_halfwidth\":{}",
                crate::json::number(w)
            )),
            None => out.push_str(",\"widest_rel_halfwidth\":null"),
        }
        match self.widest_projected_sim_seconds {
            Some(s) => out.push_str(&format!(
                ",\"widest_projected_sim_seconds\":{}",
                crate::json::number(s)
            )),
            None => out.push_str(",\"widest_projected_sim_seconds\":null"),
        }
        out.push('}');
        out
    }
}

/// Accumulates run state and periodically prints it to stderr.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    mode: ProgressMode,
    started: Instant,
    last_emit: Option<Instant>,
    /// Total simulated seconds the run intends to cover, if known
    /// (drives percent-done and the ETA).
    target_sim_secs: Option<f64>,
    voltage: String,
    trials: u64,
    upsets: u64,
    sim_secs: f64,
    emitted: bool,
    /// Latest convergence headline, if the convergence layer reported:
    /// `(resolved, total)` cells plus the widest-CI cell's name,
    /// half-width and projected sim-seconds to the precision target.
    convergence: Option<ConvergenceHeadline>,
}

/// The convergence plane's contribution to the progress line.
#[derive(Debug, Clone)]
struct ConvergenceHeadline {
    resolved: u64,
    total: u64,
    widest_cell: Option<String>,
    widest_rel_halfwidth: Option<f64>,
    widest_projected_sim_seconds: Option<f64>,
}

impl Progress {
    /// A reporter; pass `enabled = false` for a silent no-op collector.
    /// Defaults to [`ProgressMode::Interactive`].
    pub fn new(enabled: bool) -> Self {
        Self::with_mode(enabled, ProgressMode::Interactive)
    }

    /// A reporter with an explicit output style.
    pub fn with_mode(enabled: bool, mode: ProgressMode) -> Self {
        Progress {
            enabled,
            mode,
            started: Instant::now(),
            last_emit: None,
            target_sim_secs: None,
            voltage: String::new(),
            trials: 0,
            upsets: 0,
            sim_secs: 0.0,
            emitted: false,
            convergence: None,
        }
    }

    /// Declares the run's total simulated duration, enabling ETA output.
    pub fn set_target_sim_secs(&mut self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.target_sim_secs = Some(secs);
        }
    }

    /// A session at `voltage` began.
    pub fn session_started(&mut self, voltage: &str) {
        self.voltage = voltage.to_string();
        self.maybe_emit(false);
    }

    /// One trial finished; `sim_secs` is cumulative across sessions and
    /// `session_upsets` counts the current session only.
    pub fn trial_done(&mut self, sim_secs: f64, session_upsets: u64) {
        self.sim_secs = sim_secs;
        self.trials += 1;
        self.upsets = self.upsets.max(session_upsets);
        self.maybe_emit(false);
    }

    /// Publishes the convergence plane's headline: resolved/total cells
    /// plus the widest-CI cell as `(name, rel_halfwidth,
    /// projected_sim_seconds)`. Non-finite or negative half-widths and
    /// projections clamp away (the ETA convention), so the line and the
    /// `/progress` document never show NaN, infinity or negative time.
    pub fn set_convergence(
        &mut self,
        resolved: u64,
        total: u64,
        widest: Option<(String, f64, Option<f64>)>,
    ) {
        let clamp = |x: f64| (x.is_finite() && x >= 0.0).then_some(x);
        let (widest_cell, widest_rel_halfwidth, widest_projected_sim_seconds) = match widest {
            Some((name, rel, projected)) => {
                (Some(name), clamp(rel), projected.and_then(clamp))
            }
            None => (None, None, None),
        };
        self.convergence = Some(ConvergenceHeadline {
            resolved,
            total,
            widest_cell,
            widest_rel_halfwidth,
            widest_projected_sim_seconds,
        });
    }

    /// A session finished; `completed_sim_secs` is the cumulative total.
    pub fn session_ended(&mut self, completed_sim_secs: f64) {
        self.sim_secs = completed_sim_secs;
        self.upsets = 0;
        self.maybe_emit(true);
    }

    /// Prints a terminal newline if any in-place progress line was
    /// emitted, so the next stderr write starts clean. Call once at end
    /// of run. Plain mode needs no cleanup — its lines are complete.
    pub fn finish(&mut self) {
        if self.enabled && self.emitted && self.mode == ProgressMode::Interactive {
            eprintln!();
            self.emitted = false;
        }
    }

    /// The current progress numbers, with the ETA math shared by the
    /// stderr line and the `/progress` endpoint. The ETA is clamped to
    /// finite, nonnegative values: a target that shrinks below the work
    /// already done reads as 100% with no ETA, never a negative one.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64();
        let minutes = self.sim_secs / 60.0;
        let rate = if minutes > 0.0 {
            self.upsets as f64 / minutes
        } else {
            0.0
        };
        let fraction = self
            .target_sim_secs
            .map(|target| (self.sim_secs / target).clamp(0.0, 1.0));
        let eta_seconds = fraction.and_then(|frac| {
            if frac > 0.0 && frac < 1.0 && elapsed > 0.5 {
                let eta = elapsed / frac - elapsed;
                (eta.is_finite() && eta >= 0.0).then_some(eta)
            } else {
                None
            }
        });
        let convergence = self.convergence.as_ref();
        ProgressSnapshot {
            voltage: self.voltage.clone(),
            trials: self.trials,
            session_upsets: self.upsets,
            upsets_per_minute: rate,
            sim_seconds: self.sim_secs,
            target_sim_seconds: self.target_sim_secs,
            fraction,
            elapsed_seconds: elapsed,
            eta_seconds,
            cells_resolved: convergence.map(|c| c.resolved),
            cells_total: convergence.map(|c| c.total),
            widest_cell: convergence.and_then(|c| c.widest_cell.clone()),
            widest_rel_halfwidth: convergence.and_then(|c| c.widest_rel_halfwidth),
            widest_projected_sim_seconds: convergence
                .and_then(|c| c.widest_projected_sim_seconds),
        }
    }

    /// The status line as a string (also what gets printed).
    pub fn line(&self) -> String {
        let snap = self.snapshot();
        let mut line = format!(
            "[telemetry] {} | {} trials | sigma~{:.2} upsets/min | {:.0}s sim",
            if snap.voltage.is_empty() {
                "--"
            } else {
                &snap.voltage
            },
            snap.trials,
            snap.upsets_per_minute,
            snap.sim_seconds,
        );
        if let Some(frac) = snap.fraction {
            line.push_str(&format!(" ({:.0}%)", frac * 100.0));
        }
        if let Some(eta) = snap.eta_seconds {
            line.push_str(&format!(" | ETA {eta:.0}s"));
        }
        if let (Some(resolved), Some(total)) = (snap.cells_resolved, snap.cells_total) {
            line.push_str(&format!(" | CI {resolved}/{total} cells"));
            if let Some(name) = &snap.widest_cell {
                line.push_str(&format!(" (widest {name}"));
                if let Some(rel) = snap.widest_rel_halfwidth {
                    line.push_str(&format!(" +-{:.0}%", rel * 100.0));
                }
                if let Some(secs) = snap.widest_projected_sim_seconds {
                    line.push_str(&format!(", ~{secs:.0}s sim to target"));
                }
                line.push(')');
            }
        }
        line
    }

    fn maybe_emit(&mut self, force: bool) {
        if !self.enabled {
            return;
        }
        let cadence = match self.mode {
            ProgressMode::Interactive => EMIT_EVERY,
            ProgressMode::Plain => EMIT_EVERY_PLAIN,
        };
        let now = Instant::now();
        let due = match self.last_emit {
            None => true,
            Some(last) => now.duration_since(last) >= cadence,
        };
        if !(due || force) {
            return;
        }
        self.last_emit = Some(now);
        self.emitted = true;
        match self.mode {
            ProgressMode::Interactive => {
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[2K{}", self.line());
                let _ = err.flush();
            }
            ProgressMode::Plain => {
                eprintln!("{}", self.line());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    #[test]
    fn disabled_reporter_collects_but_never_prints() {
        let mut p = Progress::new(false);
        p.session_started("920mV@2.4 GHz");
        p.trial_done(60.0, 3);
        assert!(!p.emitted, "disabled reporter must not write");
        assert!(p.line().contains("920mV@2.4 GHz"));
        assert!(p.line().contains("1 trials"));
        assert!(p.line().contains("sigma~3.00"), "{}", p.line());
    }

    #[test]
    fn eta_appears_once_a_target_is_known() {
        let mut p = Progress::new(false);
        p.set_target_sim_secs(1200.0);
        std::thread::sleep(Duration::from_millis(600));
        p.trial_done(600.0, 0);
        let line = p.line();
        assert!(line.contains("(50%)"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn nonsense_targets_are_ignored() {
        let mut p = Progress::new(false);
        p.set_target_sim_secs(f64::NAN);
        p.set_target_sim_secs(-3.0);
        assert!(p.target_sim_secs.is_none());
    }

    /// A target that shrinks below the work already done must read as
    /// 100% complete — the ETA disappears and never goes negative or
    /// non-finite, and the line stays printable.
    #[test]
    fn shrinking_target_never_yields_negative_or_nonfinite_eta() {
        let mut p = Progress::with_mode(false, ProgressMode::Plain);
        p.set_target_sim_secs(10_000.0);
        std::thread::sleep(Duration::from_millis(600));
        p.trial_done(600.0, 1);
        assert!(p.snapshot().eta_seconds.is_some());
        // The run is re-targeted below what is already complete.
        p.set_target_sim_secs(300.0);
        let snap = p.snapshot();
        assert_eq!(snap.fraction, Some(1.0));
        assert_eq!(snap.eta_seconds, None, "{snap:?}");
        let line = p.line();
        assert!(line.contains("(100%)"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        // And with pathological zero-elapsed fractions the ETA guard
        // still only admits finite nonnegative values.
        for target in [f64::MIN_POSITIVE, 1e-300, 600.0] {
            p.set_target_sim_secs(target);
            if let Some(eta) = p.snapshot().eta_seconds {
                assert!(eta.is_finite() && eta >= 0.0, "target {target}: {eta}");
            }
        }
    }

    #[test]
    fn plain_mode_lines_carry_no_control_characters() {
        let mut p = Progress::with_mode(false, ProgressMode::Plain);
        p.set_convergence(
            3,
            14,
            Some(("920mV@2.4 GHz PMD/L1D".to_string(), 0.42, Some(1800.0))),
        );
        let line = p.line();
        assert!(!line.contains('\r') && !line.contains('\x1b'), "{line}");
        assert!(line.is_ascii(), "{line}");
    }

    /// Satellite: the convergence headline obeys the same clamping
    /// convention as the ETA — a zero-rate cell's infinite half-width
    /// and projection must never surface as NaN/inf/negative.
    #[test]
    fn convergence_headline_clamps_nonfinite_projections() {
        let mut p = Progress::with_mode(false, ProgressMode::Plain);
        p.set_convergence(
            0,
            14,
            Some((
                "920mV@2.4 GHz SoC/L3".to_string(),
                f64::INFINITY,
                Some(f64::NAN),
            )),
        );
        let snap = p.snapshot();
        assert_eq!(snap.cells_resolved, Some(0));
        assert_eq!(snap.cells_total, Some(14));
        assert_eq!(snap.widest_cell.as_deref(), Some("920mV@2.4 GHz SoC/L3"));
        assert_eq!(snap.widest_rel_halfwidth, None);
        assert_eq!(snap.widest_projected_sim_seconds, None);
        let line = p.line();
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        // Negative projections clamp too.
        p.set_convergence(1, 14, Some(("x".to_string(), -0.2, Some(-5.0))));
        let snap = p.snapshot();
        assert_eq!(snap.widest_rel_halfwidth, None);
        assert_eq!(snap.widest_projected_sim_seconds, None);
    }

    #[test]
    fn convergence_headline_shows_in_line_and_json() {
        let mut p = Progress::with_mode(false, ProgressMode::Plain);
        p.set_convergence(
            5,
            14,
            Some(("790mV@900 MHz PMD/L2".to_string(), 0.25, Some(120.0))),
        );
        let line = p.line();
        assert!(line.contains("CI 5/14 cells"), "{line}");
        assert!(line.contains("790mV@900 MHz PMD/L2"), "{line}");
        assert!(line.contains("+-25%"), "{line}");
        let doc = json::parse(&p.snapshot().to_json()).expect("parses");
        assert_eq!(
            doc.get("cells_resolved").and_then(JsonValue::as_f64),
            Some(5.0)
        );
        assert_eq!(
            doc.get("widest_cell").and_then(JsonValue::as_str),
            Some("790mV@900 MHz PMD/L2")
        );
        assert_eq!(
            doc.get("widest_projected_sim_seconds").and_then(JsonValue::as_f64),
            Some(120.0)
        );
    }

    #[test]
    fn snapshot_serializes_as_valid_json() {
        let mut p = Progress::new(false);
        p.set_target_sim_secs(1200.0);
        p.session_started("980mV@2.4 GHz");
        p.trial_done(240.0, 2);
        let doc = json::parse(&p.snapshot().to_json()).expect("progress JSON parses");
        assert_eq!(
            doc.get("voltage").and_then(JsonValue::as_str),
            Some("980mV@2.4 GHz")
        );
        assert_eq!(doc.get("trials").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(
            doc.get("target_sim_seconds").and_then(JsonValue::as_f64),
            Some(1200.0)
        );
        assert_eq!(doc.get("fraction").and_then(JsonValue::as_f64), Some(0.2));
    }
}
