//! Observability for serscale campaigns: metrics, spans, event streams
//! and live progress — all strictly observe-only.
//!
//! The paper's beam campaigns produce two kinds of numbers. The
//! *simulation's* numbers (upset counts, σ, failure classes) are the
//! science and must be bit-reproducible. The *run's* numbers (events per
//! second, wave merge latency, worker utilization, wall-clock ETA) are
//! operations, and they change every run. This crate carries the second
//! kind without ever contaminating the first:
//!
//! - [`metrics`] — a sharded, lock-free-on-the-hot-path registry of
//!   counters, gauges and log-scale histograms with labeled series
//!   (`edac_events{domain="PMD",voltage="870mV@2.4 GHz"}`), merged into a
//!   consistent [`MetricsSnapshot`] on demand.
//! - [`span`] — a tracing layer over the campaign → sweep → session →
//!   wave → trial hierarchy with host-clock enter/exit timestamps and
//!   structured attributes.
//! - [`observer`] — the [`TelemetryObserver`], a
//!   [`SessionObserver`](serscale_core::trace::SessionObserver) that
//!   turns engine callbacks into all of the above.
//! - [`export`] — the [`TelemetrySink`] writing `events.jsonl`,
//!   `spans.jsonl`, `metrics.prom` and `summary.txt`, plus the
//!   report-vs-counters crosscheck.
//! - [`serve`] — the [`MonitorServer`], a dependency-free HTTP/1.1
//!   monitoring plane (`/metrics`, `/healthz`, `/progress`, `/spans`,
//!   `/campaign`) over the same registry/tracer/progress state, for
//!   `curl` and Prometheus scrapes of a live run.
//! - [`inspect`] — offline run forensics: replays `journal.jsonl`,
//!   `spans.jsonl` and `events.jsonl` into a critical-path / worker
//!   utilization / exact-quantile report (`repro inspect`), including a
//!   bit-exact reconstruction of the live busy-time metrics.
//! - [`convergence`] — the statistical convergence plane: live
//!   per-operating-point Garwood-CI estimators over every (voltage
//!   domain, array) cell, a byte-stable `/convergence` snapshot, and a
//!   journal replay (`repro inspect --convergence`) that reproduces the
//!   live endpoint's final snapshot bit-exactly.
//! - [`progress`] — a rate-limited stderr progress reporter for
//!   interactive runs (TTY-aware: in-place rewrites on terminals, plain
//!   periodic lines otherwise; off in CI and golden runs).
//! - [`json`] — a minimal JSON writer *and parser*; the exporters
//!   self-verify their streams because the vendored `serde` is a no-op
//!   stand-in.
//! - [`platform`] — the JSON wire format for
//!   [`PlatformSpec`](serscale_soc::PlatformSpec) documents, behind
//!   `repro --platform <file>`: strict unknown-field rejection on the way
//!   in, a normalized round-trippable rendering on the way out.
//!
//! # The observe-only contract
//!
//! Attaching telemetry must never change a report or a
//! [`Logbook`](serscale_core::trace::Logbook) trace, at any `--jobs`
//! count. Observers receive values, return nothing, and have no channel
//! back into the engine; `tests/determinism.rs` enforces the contract
//! end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod convergence;
pub mod export;
pub mod inspect;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod platform;
pub mod progress;
pub mod serve;
pub mod span;

pub use control::{ControlPlane, ControlPlaneOptions};
pub use convergence::{ConvergenceSnapshot, ConvergenceTracker};
pub use export::{TelemetryOptions, TelemetrySink};
pub use inspect::{inspect_dir, InspectReport};
pub use metrics::{MetricsSnapshot, Registry};
pub use observer::TelemetryObserver;
pub use platform::{parse_platform, platform_to_json};
pub use progress::{Progress, ProgressMode, ProgressSnapshot};
pub use serve::{CampaignStatus, MonitorServer};
pub use span::{SpanLevel, Tracer};
