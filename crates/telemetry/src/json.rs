//! Minimal JSON support for the telemetry exporters.
//!
//! The workspace's vendored `serde` is a no-op marker-trait stand-in, so
//! the JSONL event stream is written by hand (the schema is flat) and
//! *verified* by a small real parser: [`parse`] implements enough of
//! RFC 8259 for the exporter's self-check and the CI job to prove the
//! stream is well-formed, without trusting the writer that produced it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order discarded; duplicate keys keep the last).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes a string into a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a valid JSON number (full precision; integral
/// values keep a `.0` so the token stays float-typed downstream).
pub fn number(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; telemetry values that overflow render null.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Parses one JSON document. Errors carry a byte offset and reason.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

/// Parses a JSONL stream: one document per non-empty line.
pub fn parse_lines(input: &str) -> Result<Vec<JsonValue>, String> {
    input
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex}"))?;
                            self.pos += 4;
                            // Surrogates (paired or lone) are out of scope
                            // for the telemetry schema; reject them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unharmed: the
                    // input is &str, so byte-wise copy of non-ASCII is safe
                    // as long as we only split at ASCII delimiters.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 run".to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_objects() {
        let v = parse(r#"{"event":"edac","t_s":12.5,"domain":"PMD","ok":true,"x":null}"#)
            .expect("parse");
        assert_eq!(v.get("event").and_then(JsonValue::as_str), Some("edac"));
        assert_eq!(v.get("t_s").and_then(JsonValue::as_f64), Some(12.5));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_nesting_and_arrays() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).expect("parse");
        match v.get("a") {
            Some(JsonValue::Array(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b").and_then(JsonValue::as_str), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t unit\u{1} π";
        let doc = format!("{{\"k\":{}}}", escape(nasty));
        let v = parse(&doc).expect("parse");
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn number_formatting_round_trips() {
        for x in [0.0, 1.0, -3.5, 1.5e-9, 6.022e23, 1e15, 123456.789] {
            let doc = format!("{{\"x\":{}}}", number(x));
            let v = parse(&doc).expect("parse");
            assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(x), "{x}");
        }
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"s\":\"\\q\"}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_lines_reports_the_failing_line() {
        let good = "{\"a\":1}\n\n{\"b\":2}\n";
        assert_eq!(parse_lines(good).expect("jsonl").len(), 2);
        let bad = "{\"a\":1}\nnot json\n";
        let err = parse_lines(bad).expect_err("must fail");
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
