//! Structured tracing spans for the campaign hierarchy.
//!
//! A run decomposes as campaign → sweep → session → wave → trial; the
//! [`Tracer`] records one [`SpanRecord`] per completed level with host
//! enter/exit timestamps (nanoseconds since the tracer was built, so a
//! stream is self-relative and machine-comparable) plus structured
//! attributes — the voltage point for a session, speculation efficiency
//! for a wave, the verdict for a trial. Records export as JSONL through
//! [`Tracer::to_jsonl`].
//!
//! Spans are *host* telemetry: their timestamps come from the wall clock
//! and differ run to run. They live in a separate stream from the
//! simulation's [`Logbook`](serscale_core::trace::Logbook) trace, whose
//! bit-stability CI enforces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json;

/// The level of a span in the campaign hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanLevel {
    /// One whole campaign invocation.
    Campaign,
    /// A voltage sweep or other cross-session analysis.
    Sweep,
    /// One beam session at a fixed operating point.
    Session,
    /// One speculative wave of the parallel engine.
    Wave,
    /// One benchmark trial.
    Trial,
}

impl SpanLevel {
    /// The level's lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanLevel::Campaign => "campaign",
            SpanLevel::Sweep => "sweep",
            SpanLevel::Session => "session",
            SpanLevel::Wave => "wave",
            SpanLevel::Trial => "trial",
        }
    }
}

/// An opaque span handle returned by [`Tracer::enter`]. Id 0 means "no
/// parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The root sentinel: a span with this parent is top-level.
    pub const ROOT: SpanId = SpanId(0);
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id (unique within the tracer).
    pub id: u64,
    /// The enclosing span's id (0 = top-level).
    pub parent: u64,
    /// Hierarchy level.
    pub level: SpanLevel,
    /// Human name, e.g. `"session 920mV@2.4 GHz"`.
    pub name: String,
    /// Host nanoseconds from tracer construction to span entry.
    pub enter_ns: u64,
    /// Host nanoseconds from tracer construction to span exit.
    pub exit_ns: u64,
    /// Structured attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's host duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.exit_ns.saturating_sub(self.enter_ns)
    }

    /// One JSON object describing the span.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"span\":\"{}\",\"id\":{},\"parent\":{},\"name\":{},\"enter_ns\":{},\
             \"exit_ns\":{}",
            self.level.as_str(),
            self.id,
            self.parent,
            json::escape(&self.name),
            self.enter_ns,
            self.exit_ns
        );
        for (key, value) in &self.attrs {
            out.push_str(&format!(",{}:{}", json::escape(key), json::escape(value)));
        }
        out.push('}');
        out
    }
}

/// An open span awaiting exit.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    level: SpanLevel,
    name: String,
    enter_ns: u64,
    attrs: Vec<(String, String)>,
}

/// Collects spans. Thread-safe and cheap to share behind a reference; the
/// single mutex is uncontended in the engine because all observer
/// callbacks arrive from the single-threaded merge.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU64,
    inner: Mutex<TracerInner>,
}

#[derive(Debug, Default)]
struct TracerInner {
    open: Vec<OpenSpan>,
    closed: Vec<SpanRecord>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer whose clock starts now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// Host nanoseconds since the tracer was built.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span. `parent` is usually the enclosing span's handle
    /// ([`SpanId::ROOT`] for top-level).
    pub fn enter(
        &self,
        level: SpanLevel,
        name: &str,
        parent: SpanId,
        attrs: &[(&str, &str)],
    ) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let span = OpenSpan {
            id,
            parent: parent.0,
            level,
            name: name.to_string(),
            enter_ns: self.now_ns(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        self.inner.lock().expect("tracer poisoned").open.push(span);
        SpanId(id)
    }

    /// Appends attributes to an open span (no-op if already closed).
    pub fn annotate(&self, span: SpanId, attrs: &[(&str, &str)]) {
        let mut inner = self.inner.lock().expect("tracer poisoned");
        if let Some(open) = inner.open.iter_mut().find(|s| s.id == span.0) {
            open.attrs
                .extend(attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())));
        }
    }

    /// Closes a span, recording its exit timestamp. Closing an unknown or
    /// already-closed span is a no-op (the stream must never panic the
    /// experiment it observes).
    pub fn exit(&self, span: SpanId) {
        let exit_ns = self.now_ns();
        let mut inner = self.inner.lock().expect("tracer poisoned");
        if let Some(pos) = inner.open.iter().position(|s| s.id == span.0) {
            let open = inner.open.swap_remove(pos);
            inner.closed.push(SpanRecord {
                id: open.id,
                parent: open.parent,
                level: open.level,
                name: open.name,
                enter_ns: open.enter_ns,
                exit_ns,
                attrs: open.attrs,
            });
        }
    }

    /// Records a span that already finished, with caller-supplied
    /// timestamps. The wave observer uses this: the engine reports a
    /// wave's host duration *after* the merge, so the span is
    /// reconstructed rather than bracketed live.
    pub fn record_complete(
        &self,
        level: SpanLevel,
        name: &str,
        parent: SpanId,
        enter_ns: u64,
        exit_ns: u64,
        attrs: &[(&str, &str)],
    ) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            id,
            parent: parent.0,
            level,
            name: name.to_string(),
            enter_ns,
            exit_ns: exit_ns.max(enter_ns),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        self.inner
            .lock()
            .expect("tracer poisoned")
            .closed
            .push(record);
        SpanId(id)
    }

    /// Convenience: run `body` inside a span.
    pub fn in_span<T>(
        &self,
        level: SpanLevel,
        name: &str,
        parent: SpanId,
        body: impl FnOnce() -> T,
    ) -> T {
        let span = self.enter(level, name, parent, &[]);
        let out = body();
        self.exit(span);
        out
    }

    /// Snapshot of all *closed* spans, in close order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().expect("tracer poisoned").closed.clone()
    }

    /// Number of spans still open (0 after a well-nested run).
    pub fn open_count(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").open.len()
    }

    /// Serializes every closed span as JSONL, sorted by enter time so the
    /// stream reads chronologically.
    pub fn to_jsonl(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| (r.enter_ns, r.id));
        let mut out = String::new();
        for record in &records {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    #[test]
    fn spans_nest_and_close() {
        let tracer = Tracer::new();
        let campaign = tracer.enter(SpanLevel::Campaign, "campaign", SpanId::ROOT, &[]);
        let session = tracer.enter(
            SpanLevel::Session,
            "session 920mV",
            campaign,
            &[("pmd_mv", "920")],
        );
        tracer.annotate(session, &[("stop", "BeamTime")]);
        tracer.exit(session);
        tracer.exit(campaign);
        assert_eq!(tracer.open_count(), 0);
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        let session = &records[0];
        let campaign = &records[1];
        assert_eq!(session.level, SpanLevel::Session);
        assert_eq!(session.parent, campaign.id);
        assert!(session.enter_ns >= campaign.enter_ns);
        assert!(session.exit_ns <= campaign.exit_ns);
        assert!(session
            .attrs
            .iter()
            .any(|(k, v)| k == "stop" && v == "BeamTime"));
    }

    #[test]
    fn double_exit_and_unknown_exit_are_noops() {
        let tracer = Tracer::new();
        let span = tracer.enter(SpanLevel::Trial, "t", SpanId::ROOT, &[]);
        tracer.exit(span);
        tracer.exit(span);
        tracer.exit(SpanId::ROOT);
        assert_eq!(tracer.records().len(), 1);
    }

    #[test]
    fn jsonl_is_parseable_and_chronological() {
        let tracer = Tracer::new();
        tracer.in_span(SpanLevel::Sweep, "sweep", SpanId::ROOT, || {
            tracer.in_span(SpanLevel::Session, "inner \"quoted\"", SpanId::ROOT, || {})
        });
        let jsonl = tracer.to_jsonl();
        let docs = json::parse_lines(&jsonl).expect("spans parse");
        assert_eq!(docs.len(), 2);
        assert_eq!(
            docs[0].get("span").and_then(JsonValue::as_str),
            Some("sweep"),
            "outer span entered first"
        );
        let enters: Vec<f64> = docs
            .iter()
            .map(|d| d.get("enter_ns").and_then(JsonValue::as_f64).unwrap())
            .collect();
        assert!(enters.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn in_span_returns_the_body_value() {
        let tracer = Tracer::new();
        let out = tracer.in_span(SpanLevel::Wave, "w", SpanId::ROOT, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(tracer.records()[0].level, SpanLevel::Wave);
    }
}
